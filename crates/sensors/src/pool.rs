//! Multi-person stream generation for fleet-scale serving.
//!
//! The serving runtime (`magneto-fleet`) ingests sensor windows from many
//! users at once. A [`StreamPool`] simulates that population: N
//! concurrent [`SensorStream`]s, each with its own sampled
//! [`PersonProfile`] and assigned activity, emitting complete
//! channel-major windows ready for inference. Everything is deterministic
//! given the pool seed, so fleet tests can replay identical traffic
//! against different scheduler configurations.

use crate::activity::ActivityKind;
use crate::channels::SensorFrame;
use crate::dataset::LabeledWindow;
use crate::person::PersonProfile;
use crate::stream::{SensorStream, StreamConfig};
use magneto_tensor::SeededRng;

/// One simulated user: a live stream plus its frame accumulator.
struct PooledUser {
    stream: SensorStream,
    person: PersonProfile,
    activity: ActivityKind,
    buf: Vec<SensorFrame>,
}

/// A population of N concurrently streaming users.
pub struct StreamPool {
    users: Vec<PooledUser>,
    window_len: usize,
}

impl StreamPool {
    /// Spawn `users` streams, cycling activities from `activities` and
    /// sampling a distinct person style per user. Deterministic given
    /// `seed`: the same pool replays the same traffic window for window.
    ///
    /// # Panics
    /// When `users == 0`, `activities` is empty, or `window_len == 0`.
    pub fn new(
        users: usize,
        activities: &[ActivityKind],
        window_len: usize,
        stream: StreamConfig,
        seed: u64,
    ) -> Self {
        assert!(users > 0, "a stream pool needs at least one user");
        assert!(!activities.is_empty(), "a stream pool needs activities");
        assert!(window_len > 0, "windows need at least one sample");
        let mut rng = SeededRng::new(seed);
        let users = (0..users)
            .map(|u| {
                let person = PersonProfile::sample(&mut rng);
                let activity = activities[u % activities.len()];
                PooledUser {
                    stream: SensorStream::new(
                        activity.profile(),
                        person,
                        stream,
                        rng.split("user-stream"),
                    ),
                    person,
                    activity,
                    buf: Vec::with_capacity(window_len),
                }
            })
            .collect();
        StreamPool { users, window_len }
    }

    /// Number of users in the pool.
    pub fn users(&self) -> usize {
        self.users.len()
    }

    /// Samples per emitted window.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// The sampled style of one user.
    pub fn person(&self, user: usize) -> &PersonProfile {
        &self.users[user].person
    }

    /// The activity one user is performing.
    pub fn activity(&self, user: usize) -> ActivityKind {
        self.users[user].activity
    }

    /// Stream the next complete channel-major window for one user,
    /// pulling frames until the window fills (dropped samples are skipped
    /// by the stream, so windows are always full length).
    pub fn next_window(&mut self, user: usize) -> Vec<Vec<f32>> {
        let u = &mut self.users[user];
        while u.buf.len() < self.window_len {
            if let Some(f) = u.stream.next() {
                u.buf.push(f);
            }
        }
        let window = LabeledWindow::from_frames(u.activity.label(), &u.buf).channels;
        u.buf.clear();
        window
    }

    /// One round of traffic: the next window from every user, in user
    /// order — the "all phones report in" tick fleet benchmarks replay.
    pub fn next_round(&mut self) -> Vec<Vec<Vec<f32>>> {
        (0..self.users.len()).map(|u| self.next_window(u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::NUM_CHANNELS;

    fn pool(seed: u64) -> StreamPool {
        StreamPool::new(
            6,
            &ActivityKind::BASE_FIVE,
            120,
            StreamConfig::ideal(),
            seed,
        )
    }

    #[test]
    fn windows_are_channel_major_and_full_length() {
        let mut p = pool(1);
        assert_eq!(p.users(), 6);
        assert_eq!(p.window_len(), 120);
        for u in 0..p.users() {
            let w = p.next_window(u);
            assert_eq!(w.len(), NUM_CHANNELS);
            assert!(w.iter().all(|ch| ch.len() == 120));
            assert!(w.iter().flatten().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn users_have_distinct_styles_and_cycled_activities() {
        let p = pool(2);
        // Activities cycle through the base five, then wrap.
        assert_eq!(p.activity(0), ActivityKind::BASE_FIVE[0]);
        assert_eq!(p.activity(5), ActivityKind::BASE_FIVE[0]);
        assert_eq!(p.activity(3), ActivityKind::BASE_FIVE[3]);
        // Sampled persons differ pairwise (same sampler, advancing RNG).
        for a in 0..p.users() {
            for b in (a + 1)..p.users() {
                assert_ne!(p.person(a), p.person(b), "users {a} and {b}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = pool(7);
        let mut b = pool(7);
        for _ in 0..3 {
            assert_eq!(a.next_round(), b.next_round());
        }
        // A different seed produces different traffic.
        let mut c = pool(8);
        assert_ne!(a.next_window(0), c.next_window(0));
    }

    #[test]
    fn per_user_streams_are_independent() {
        // Draining one user's stream must not perturb another's.
        let mut solo = pool(9);
        let expected: Vec<_> = (0..4).map(|_| solo.next_window(3)).collect();
        let mut interleaved = pool(9);
        let mut got = Vec::new();
        for round in 0..4 {
            for u in 0..interleaved.users() {
                let w = interleaved.next_window(u);
                if u == 3 {
                    got.push(w);
                }
            }
            assert_eq!(got[round], expected[round], "round {round}");
        }
    }

    #[test]
    fn lossy_streams_still_fill_windows() {
        let cfg = StreamConfig {
            dropout_prob: 0.3,
            ..StreamConfig::default()
        };
        let mut p = StreamPool::new(2, &[ActivityKind::Walk], 120, cfg, 11);
        let w = p.next_window(0);
        assert_eq!(w.len(), NUM_CHANNELS);
        assert!(w.iter().all(|ch| ch.len() == 120));
    }
}
