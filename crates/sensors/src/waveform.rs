//! Waveform primitives for motion synthesis.
//!
//! Human and vehicle motion as seen by a phone decomposes well into a small
//! sum of harmonics plus impacts: walking is a ~2 Hz fundamental with a
//! strong second harmonic (two foot strikes per stride), running adds sharp
//! heel-strike impulses, engines and scooter motors contribute
//! high-frequency vibration bands. These primitives are combined by the
//! per-activity motion models in [`crate::activity`].

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// One sinusoidal component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Harmonic {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Peak amplitude (unit of the target signal).
    pub amplitude: f64,
    /// Phase offset in radians.
    pub phase: f64,
}

impl Harmonic {
    /// Convenience constructor.
    pub fn new(freq_hz: f64, amplitude: f64, phase: f64) -> Self {
        Harmonic {
            freq_hz,
            amplitude,
            phase,
        }
    }

    /// Evaluate at time `t` seconds.
    #[inline]
    pub fn eval(&self, t: f64) -> f64 {
        self.amplitude * (2.0 * PI * self.freq_hz * t + self.phase).sin()
    }
}

/// A sum of harmonics — the basic periodic motion building block.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HarmonicStack {
    components: Vec<Harmonic>,
}

impl HarmonicStack {
    /// Empty stack (evaluates to 0 everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style push.
    pub fn with(mut self, h: Harmonic) -> Self {
        self.components.push(h);
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when no components are present.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Evaluate the sum at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.components.iter().map(|h| h.eval(t)).sum()
    }

    /// Build a gait waveform: fundamental at `step_freq_hz` plus a second
    /// harmonic (`ratio2`) and third harmonic (`ratio3`) of the given
    /// fractional amplitudes, which produces the characteristic double-bump
    /// vertical acceleration of walking/running.
    pub fn gait(step_freq_hz: f64, amplitude: f64, ratio2: f64, ratio3: f64, phase: f64) -> Self {
        HarmonicStack::new()
            .with(Harmonic::new(step_freq_hz, amplitude, phase))
            .with(Harmonic::new(
                2.0 * step_freq_hz,
                amplitude * ratio2,
                phase * 1.7,
            ))
            .with(Harmonic::new(
                3.0 * step_freq_hz,
                amplitude * ratio3,
                phase * 0.6,
            ))
    }

    /// Build a vibration band: `n` components spread uniformly over
    /// `[lo_hz, hi_hz]` with amplitudes decaying linearly, modelling engine
    /// or motor buzz plus road texture.
    pub fn vibration_band(lo_hz: f64, hi_hz: f64, amplitude: f64, n: usize) -> Self {
        let mut stack = HarmonicStack::new();
        if n == 0 {
            return stack;
        }
        for i in 0..n {
            let frac = if n == 1 { 0.5 } else { i as f64 / (n - 1) as f64 };
            let f = lo_hz + frac * (hi_hz - lo_hz);
            let a = amplitude * (1.0 - 0.5 * frac);
            // Deterministic pseudo-random phases decorrelate the band.
            let phase = (i as f64 * 2.399_963).rem_euclid(2.0 * PI);
            stack.components.push(Harmonic::new(f, a, phase));
        }
        stack
    }
}

/// Periodic impulse train modelling impacts (heel strikes, jumps, road
/// bumps): a narrow raised-cosine burst once per period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpulseTrain {
    /// Impacts per second.
    pub rate_hz: f64,
    /// Peak amplitude of each impulse.
    pub amplitude: f64,
    /// Fraction of the period occupied by the impulse (0..1).
    pub duty: f64,
}

impl ImpulseTrain {
    /// Convenience constructor; `duty` is clamped to `(0, 1]`.
    pub fn new(rate_hz: f64, amplitude: f64, duty: f64) -> Self {
        ImpulseTrain {
            rate_hz,
            amplitude,
            duty: duty.clamp(1e-3, 1.0),
        }
    }

    /// Evaluate at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        if self.rate_hz <= 0.0 {
            return 0.0;
        }
        let period = 1.0 / self.rate_hz;
        let phase = (t.rem_euclid(period)) / period; // 0..1 within the period
        if phase < self.duty {
            // Raised cosine from 0 -> peak -> 0 across the duty window.
            let x = phase / self.duty; // 0..1
            self.amplitude * 0.5 * (1.0 - (2.0 * PI * x).cos())
        } else {
            0.0
        }
    }
}

/// Smooth bounded pseudo-random drift: a slow sum of incommensurate sines.
/// Used for orientation wander, steering sway and baseline drift without
/// needing stateful noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Drift {
    /// Overall amplitude.
    pub amplitude: f64,
    /// Base frequency in Hz (kept well below gait frequencies).
    pub freq_hz: f64,
    /// Phase seed decorrelating different drift instances.
    pub seed_phase: f64,
}

impl Drift {
    /// Convenience constructor.
    pub fn new(amplitude: f64, freq_hz: f64, seed_phase: f64) -> Self {
        Drift {
            amplitude,
            freq_hz,
            seed_phase,
        }
    }

    /// Evaluate at time `t`; bounded by `±1.75 * amplitude`.
    pub fn eval(&self, t: f64) -> f64 {
        let w = 2.0 * PI * self.freq_hz;
        self.amplitude
            * ((w * t + self.seed_phase).sin()
                + 0.5 * (w * 2.71 * t + 2.0 * self.seed_phase).sin()
                + 0.25 * (w * 5.13 * t + 3.0 * self.seed_phase).sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_period() {
        let h = Harmonic::new(2.0, 1.0, 0.0);
        assert!(h.eval(0.0).abs() < 1e-9);
        assert!((h.eval(0.125) - 1.0).abs() < 1e-9); // quarter period of 2 Hz
        assert!((h.eval(0.5) - h.eval(0.0)).abs() < 1e-9); // periodic
    }

    #[test]
    fn stack_superposition() {
        let s = HarmonicStack::new()
            .with(Harmonic::new(1.0, 1.0, 0.0))
            .with(Harmonic::new(1.0, 2.0, 0.0));
        assert!((s.eval(0.25) - 3.0).abs() < 1e-9);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(HarmonicStack::new().is_empty());
        assert_eq!(HarmonicStack::new().eval(0.3), 0.0);
    }

    #[test]
    fn gait_contains_three_harmonics() {
        let g = HarmonicStack::gait(2.0, 1.0, 0.5, 0.2, 0.0);
        assert_eq!(g.len(), 3);
        // Peak amplitude bounded by sum of component amplitudes.
        let peak = (0..1000)
            .map(|i| g.eval(i as f64 / 1000.0).abs())
            .fold(0.0, f64::max);
        assert!(peak <= 1.7 + 1e-6);
        assert!(peak > 0.8);
    }

    #[test]
    fn vibration_band_frequencies_within_band() {
        let v = HarmonicStack::vibration_band(20.0, 40.0, 0.5, 8);
        assert_eq!(v.len(), 8);
        // RMS over a second should be well below the sum of amplitudes
        // (decorrelated phases) but clearly nonzero.
        let n = 1200;
        let rms = ((0..n)
            .map(|i| v.eval(i as f64 / 1200.0).powi(2))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        assert!(rms > 0.1 && rms < 2.0, "rms {rms}");
        assert!(HarmonicStack::vibration_band(1.0, 2.0, 1.0, 0).is_empty());
        assert_eq!(HarmonicStack::vibration_band(1.0, 2.0, 1.0, 1).len(), 1);
    }

    #[test]
    fn impulse_train_shape() {
        let imp = ImpulseTrain::new(2.0, 10.0, 0.2);
        // Zero outside the duty window.
        assert_eq!(imp.eval(0.3), 0.0);
        // Peak near the middle of the duty window (duty 0.2 of a 0.5 s
        // period -> peak near t = 0.05).
        assert!((imp.eval(0.05) - 10.0).abs() < 0.1);
        // Periodic.
        assert!((imp.eval(0.05) - imp.eval(0.55)).abs() < 1e-9);
        // Degenerate rate yields silence.
        assert_eq!(ImpulseTrain::new(0.0, 5.0, 0.2).eval(1.0), 0.0);
    }

    #[test]
    fn impulse_train_nonnegative() {
        let imp = ImpulseTrain::new(3.0, 5.0, 0.15);
        for i in 0..2000 {
            assert!(imp.eval(i as f64 / 500.0) >= -1e-12);
        }
    }

    #[test]
    fn drift_bounded_and_slow() {
        let d = Drift::new(2.0, 0.1, 1.0);
        let mut max_abs: f64 = 0.0;
        let mut max_step: f64 = 0.0;
        let mut prev = d.eval(0.0);
        for i in 1..5000 {
            let v = d.eval(i as f64 / 100.0);
            max_abs = max_abs.max(v.abs());
            max_step = max_step.max((v - prev).abs());
            prev = v;
        }
        assert!(max_abs <= 3.5 + 1e-9);
        // Slow: 10 ms steps change the value only slightly.
        assert!(max_step < 0.3, "max step {max_step}");
    }

    #[test]
    fn drift_seed_phase_decorrelates() {
        let a = Drift::new(1.0, 0.2, 0.0);
        let b = Drift::new(1.0, 0.2, 2.0);
        let diff: f64 = (0..100)
            .map(|i| (a.eval(i as f64 / 10.0) - b.eval(i as f64 / 10.0)).abs())
            .sum();
        assert!(diff > 1.0);
    }
}
