//! Sensor imperfection models.
//!
//! Real MEMS sensors are noisy in structured ways that matter for HAR
//! features: broadband white noise (raises feature variance floors), pink
//! (1/f) noise and bias random walk (low-frequency drift that denoising
//! must handle), and occasional spike artefacts (contact bounces, sensor
//! hiccups) that stress the median filter in `magneto-dsp`.

use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Configuration of the per-channel noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Standard deviation of white Gaussian noise.
    pub white_std: f32,
    /// Amplitude of pink (1/f-ish) noise.
    pub pink_std: f32,
    /// Per-step standard deviation of the bias random walk.
    pub bias_walk_std: f32,
    /// Probability per sample of a spike artefact.
    pub spike_prob: f64,
    /// Spike magnitude (multiplied by a random sign and scale).
    pub spike_magnitude: f32,
}

impl NoiseConfig {
    /// Noise profile for a consumer-grade accelerometer axis.
    pub fn accelerometer() -> Self {
        NoiseConfig {
            white_std: 0.09,
            pink_std: 0.04,
            bias_walk_std: 0.0005,
            spike_prob: 0.0015,
            spike_magnitude: 0.8,
        }
    }

    /// Noise profile for a consumer-grade gyroscope axis.
    pub fn gyroscope() -> Self {
        NoiseConfig {
            white_std: 0.02,
            pink_std: 0.008,
            bias_walk_std: 0.0002,
            spike_prob: 0.001,
            spike_magnitude: 0.2,
        }
    }

    /// Noise profile for a magnetometer axis (noisier, more drift).
    pub fn magnetometer() -> Self {
        NoiseConfig {
            white_std: 0.4,
            pink_std: 0.3,
            bias_walk_std: 0.01,
            spike_prob: 0.002,
            spike_magnitude: 5.0,
        }
    }

    /// Noise profile for the barometer (very slow drift dominates).
    pub fn barometer() -> Self {
        NoiseConfig {
            white_std: 0.02,
            pink_std: 0.05,
            bias_walk_std: 0.001,
            spike_prob: 0.0005,
            spike_magnitude: 0.3,
        }
    }

    /// Silent configuration (tests, ideal-sensor ablations).
    pub fn none() -> Self {
        NoiseConfig {
            white_std: 0.0,
            pink_std: 0.0,
            bias_walk_std: 0.0,
            spike_prob: 0.0,
            spike_magnitude: 0.0,
        }
    }

    /// Scale every stochastic component by `factor` (per-user tremor /
    /// device-quality knob).
    pub fn scaled(mut self, factor: f32) -> Self {
        self.white_std *= factor;
        self.pink_std *= factor;
        self.bias_walk_std *= factor;
        self.spike_magnitude *= factor;
        self
    }
}

/// Stateful noise generator for one channel.
///
/// Pink noise uses the Voss–McCartney multi-row update (octave-spaced
/// resampling) which yields an approximately 1/f spectrum; the bias walk
/// is a plain Gaussian random walk.
#[derive(Debug, Clone)]
pub struct NoiseGenerator {
    config: NoiseConfig,
    pink_rows: [f32; 8],
    pink_counter: u32,
    bias: f32,
}

impl NoiseGenerator {
    /// Create a generator with zeroed internal state.
    pub fn new(config: NoiseConfig) -> Self {
        NoiseGenerator {
            config,
            pink_rows: [0.0; 8],
            pink_counter: 0,
            bias: 0.0,
        }
    }

    /// Current accumulated bias (useful for assertions/diagnostics).
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Draw the next noise sample.
    pub fn next(&mut self, rng: &mut SeededRng) -> f32 {
        let c = &self.config;
        let mut v = 0.0f32;
        if c.white_std > 0.0 {
            v += rng.normal_with(0.0, c.white_std);
        }
        if c.pink_std > 0.0 {
            // Voss–McCartney: row k updates every 2^k samples.
            self.pink_counter = self.pink_counter.wrapping_add(1);
            let trailing = self.pink_counter.trailing_zeros().min(7) as usize;
            self.pink_rows[trailing] = rng.normal_with(0.0, c.pink_std);
            v += self.pink_rows.iter().sum::<f32>() / (self.pink_rows.len() as f32).sqrt();
        }
        if c.bias_walk_std > 0.0 {
            self.bias += rng.normal_with(0.0, c.bias_walk_std);
            v += self.bias;
        }
        if c.spike_prob > 0.0 && rng.chance(c.spike_prob) {
            let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
            v += sign * c.spike_magnitude * rng.uniform(0.5, 1.5);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_silent() {
        let mut gen = NoiseGenerator::new(NoiseConfig::none());
        let mut rng = SeededRng::new(1);
        for _ in 0..100 {
            assert_eq!(gen.next(&mut rng), 0.0);
        }
        assert_eq!(gen.bias(), 0.0);
    }

    #[test]
    fn white_noise_std_matches_config() {
        let cfg = NoiseConfig {
            white_std: 0.5,
            ..NoiseConfig::none()
        };
        let mut gen = NoiseGenerator::new(cfg);
        let mut rng = SeededRng::new(2);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gen.next(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let std =
            (samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32).sqrt();
        assert!((std - 0.5).abs() < 0.03, "std {std}");
        assert!(mean.abs() < 0.02);
    }

    #[test]
    fn bias_walk_accumulates() {
        let cfg = NoiseConfig {
            bias_walk_std: 0.1,
            ..NoiseConfig::none()
        };
        let mut gen = NoiseGenerator::new(cfg);
        let mut rng = SeededRng::new(3);
        for _ in 0..5000 {
            gen.next(&mut rng);
        }
        // After 5000 steps of std 0.1, |bias| is ~0.1*sqrt(5000) ≈ 7;
        // overwhelmingly nonzero.
        assert!(gen.bias().abs() > 0.5);
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let cfg = NoiseConfig {
            spike_prob: 0.05,
            spike_magnitude: 100.0,
            ..NoiseConfig::none()
        };
        let mut gen = NoiseGenerator::new(cfg);
        let mut rng = SeededRng::new(4);
        let n = 10_000;
        let spikes = (0..n)
            .filter(|_| gen.next(&mut rng).abs() > 10.0)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn pink_noise_is_low_frequency_heavy() {
        let cfg = NoiseConfig {
            pink_std: 1.0,
            ..NoiseConfig::none()
        };
        let mut gen = NoiseGenerator::new(cfg);
        let mut rng = SeededRng::new(5);
        let n = 8192;
        let xs: Vec<f32> = (0..n).map(|_| gen.next(&mut rng)).collect();
        // Lag-1 autocorrelation of pink noise is strongly positive, unlike
        // white noise (~0).
        let ac1 = magneto_tensor::stats::autocorrelation(&xs, 1);
        assert!(ac1 > 0.3, "lag-1 autocorr {ac1}");
    }

    #[test]
    fn scaled_scales_all_components() {
        let s = NoiseConfig::accelerometer().scaled(2.0);
        let base = NoiseConfig::accelerometer();
        assert_eq!(s.white_std, base.white_std * 2.0);
        assert_eq!(s.pink_std, base.pink_std * 2.0);
        assert_eq!(s.bias_walk_std, base.bias_walk_std * 2.0);
        assert_eq!(s.spike_magnitude, base.spike_magnitude * 2.0);
        assert_eq!(s.spike_prob, base.spike_prob);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g1 = NoiseGenerator::new(NoiseConfig::accelerometer());
        let mut g2 = NoiseGenerator::new(NoiseConfig::accelerometer());
        let mut r1 = SeededRng::new(7);
        let mut r2 = SeededRng::new(7);
        for _ in 0..200 {
            assert_eq!(g1.next(&mut r1), g2.next(&mut r2));
        }
    }

    #[test]
    fn sensor_presets_are_distinct() {
        assert_ne!(NoiseConfig::accelerometer(), NoiseConfig::gyroscope());
        assert_ne!(NoiseConfig::gyroscope(), NoiseConfig::magnetometer());
        assert_ne!(NoiseConfig::magnetometer(), NoiseConfig::barometer());
    }
}
