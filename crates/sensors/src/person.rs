//! Per-user style parameters.
//!
//! Personalisation is half of the paper's pitch: users differ in cadence,
//! movement amplitude, where they carry the phone and how steady their
//! hands are. A [`PersonProfile`] perturbs the activity motion profiles so
//! that (a) pre-training data can be drawn from a *population* of users and
//! (b) the calibration experiment (A3 in DESIGN.md) can create a user whose
//! style sits far from the population mean and show that on-device
//! calibration recovers the lost accuracy.

use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// How one user's movement style deviates from the nominal activity
/// profiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersonProfile {
    /// Multiplier on gait/gesture frequency (1.0 = nominal).
    pub gait_freq_scale: f64,
    /// Multiplier on motion amplitudes.
    pub amplitude_scale: f64,
    /// Extra phone pitch relative to the activity's typical carry (rad).
    pub pitch_offset_rad: f64,
    /// Extra phone roll (rad).
    pub roll_offset_rad: f64,
    /// Extra phone yaw (rad) — also rotates the magnetometer signature.
    pub yaw_offset_rad: f64,
    /// Multiplier on sensor noise (hand tremor, cheap device).
    pub tremor_scale: f32,
    /// Per-user phase offset decorrelating gait cycles between users.
    pub phase_offset: f64,
}

impl PersonProfile {
    /// The nominal user: exactly the activity profiles as written.
    pub fn nominal() -> Self {
        PersonProfile {
            gait_freq_scale: 1.0,
            amplitude_scale: 1.0,
            pitch_offset_rad: 0.0,
            roll_offset_rad: 0.0,
            yaw_offset_rad: 0.0,
            tremor_scale: 1.0,
            phase_offset: 0.0,
        }
    }

    /// Sample a user from the population the Cloud pre-trains on:
    /// mild, centred variation.
    pub fn sample(rng: &mut SeededRng) -> Self {
        PersonProfile {
            gait_freq_scale: f64::from(rng.normal_with(1.0, 0.13).clamp(0.7, 1.35)),
            amplitude_scale: f64::from(rng.normal_with(1.0, 0.28).clamp(0.4, 1.9)),
            pitch_offset_rad: f64::from(rng.normal_with(0.0, 0.28)),
            roll_offset_rad: f64::from(rng.normal_with(0.0, 0.28)),
            yaw_offset_rad: f64::from(rng.uniform(-1.2, 1.2)),
            tremor_scale: rng.normal_with(1.2, 0.4).clamp(0.5, 2.8),
            phase_offset: rng.uniform(0.0, std::f32::consts::TAU) as f64,
        }
    }

    /// Sample an *atypical* user whose style sits in the tail of the
    /// population: slower-or-faster cadence, unusual carry orientation,
    /// shaky hands. Pre-trained models degrade on such users; the paper's
    /// calibration loop is meant to win it back.
    pub fn sample_atypical(rng: &mut SeededRng) -> Self {
        // Push cadence 20–35% away from nominal, in a random direction.
        let dir = if rng.chance(0.5) { 1.0 } else { -1.0 };
        PersonProfile {
            gait_freq_scale: 1.0 + dir * rng.uniform(0.20, 0.35) as f64,
            amplitude_scale: (1.0 + dir * rng.uniform(0.25, 0.45) as f64).max(0.3),
            pitch_offset_rad: rng.uniform(0.35, 0.7) as f64 * dir,
            roll_offset_rad: rng.uniform(0.25, 0.5) as f64,
            yaw_offset_rad: rng.uniform(-1.5, 1.5) as f64,
            tremor_scale: rng.uniform(1.5, 2.5),
            phase_offset: rng.uniform(0.0, std::f32::consts::TAU) as f64,
        }
    }

    /// A rough scalar measure of how far this user is from nominal
    /// (0 = nominal). Useful in experiment reports.
    pub fn atypicality(&self) -> f64 {
        (self.gait_freq_scale - 1.0).abs()
            + (self.amplitude_scale - 1.0).abs()
            + self.pitch_offset_rad.abs()
            + self.roll_offset_rad.abs()
            + 0.25 * self.yaw_offset_rad.abs()
            + (f64::from(self.tremor_scale) - 1.0).abs() * 0.5
    }
}

impl Default for PersonProfile {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let p = PersonProfile::nominal();
        assert_eq!(p.gait_freq_scale, 1.0);
        assert_eq!(p.amplitude_scale, 1.0);
        assert_eq!(p.tremor_scale, 1.0);
        assert_eq!(p.atypicality(), 0.0);
        assert_eq!(PersonProfile::default(), p);
    }

    #[test]
    fn sampled_population_is_mild() {
        let mut rng = SeededRng::new(42);
        for _ in 0..200 {
            let p = PersonProfile::sample(&mut rng);
            // Clamp bounds are f32; allow an ULP of slack after the
            // f32 → f64 widening.
            assert!((0.7 - 1e-6..=1.35 + 1e-6).contains(&p.gait_freq_scale));
            assert!((0.4 - 1e-6..=1.9 + 1e-6).contains(&p.amplitude_scale));
            assert!((0.5..=2.8).contains(&p.tremor_scale));
        }
    }

    #[test]
    fn atypical_users_are_more_atypical_than_population() {
        let mut rng = SeededRng::new(7);
        let n = 400;
        let pop_mean: f64 = (0..n)
            .map(|_| PersonProfile::sample(&mut rng).atypicality())
            .sum::<f64>()
            / n as f64;
        let aty_mean: f64 = (0..n)
            .map(|_| PersonProfile::sample_atypical(&mut rng).atypicality())
            .sum::<f64>()
            / n as f64;
        // Clear separation, not an exact ratio: the sample means wobble
        // with the seed, so assert a comfortable 1.5x gap.
        assert!(
            aty_mean > pop_mean * 1.5,
            "atypical {aty_mean} vs population {pop_mean}"
        );
    }

    #[test]
    fn atypical_cadence_is_displaced() {
        let mut rng = SeededRng::new(9);
        for _ in 0..50 {
            let p = PersonProfile::sample_atypical(&mut rng);
            assert!((p.gait_freq_scale - 1.0).abs() >= 0.20 - 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = SeededRng::new(5);
        let mut b = SeededRng::new(5);
        assert_eq!(PersonProfile::sample(&mut a), PersonProfile::sample(&mut b));
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = SeededRng::new(3);
        let p = PersonProfile::sample(&mut rng);
        let json = serde_json::to_string(&p).unwrap();
        let back: PersonProfile = serde_json::from_str(&json).unwrap();
        // serde_json's default float parser may be 1 ULP off; compare
        // approximately.
        assert!((p.gait_freq_scale - back.gait_freq_scale).abs() < 1e-12);
        assert!((p.amplitude_scale - back.amplitude_scale).abs() < 1e-12);
        assert!((p.phase_offset - back.phase_offset).abs() < 1e-12);
        assert_eq!(p.tremor_scale, back.tremor_scale);
    }
}
