//! Scripted multi-activity sessions.
//!
//! Real usage is not one activity per recording: a user is still, walks
//! to the car, drives, walks again. A [`SessionScript`] produces a single
//! continuous sensor stream that switches motion models at scripted
//! times (with a short cross-fade so transitions are physically smooth,
//! not teleports), together with the ground-truth segment list — exactly
//! what is needed to evaluate streaming inference and the timeline
//! aggregator end-to-end.

use crate::activity::ActivityKind;
use crate::channels::{SensorFrame, NUM_CHANNELS, SAMPLE_RATE_HZ};
use crate::imu::SignalSynthesizer;
use crate::person::PersonProfile;
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// One scripted step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptStep {
    /// Activity during this step.
    pub activity: ActivityKind,
    /// Step duration in seconds.
    pub seconds: f64,
}

/// Ground truth for one scripted segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthSegment {
    /// Activity label.
    pub label: String,
    /// Segment start (seconds from session start).
    pub start_s: f64,
    /// Segment end.
    pub end_s: f64,
}

/// A scripted session for one user.
#[derive(Debug, Clone)]
pub struct SessionScript {
    steps: Vec<ScriptStep>,
    person: PersonProfile,
    /// Cross-fade duration at each transition (seconds).
    crossfade_s: f64,
}

impl SessionScript {
    /// Create a script. `crossfade_s` blends the outgoing and incoming
    /// motion models at each boundary (0 disables).
    pub fn new(steps: Vec<ScriptStep>, person: PersonProfile, crossfade_s: f64) -> Self {
        SessionScript {
            steps,
            person,
            crossfade_s: crossfade_s.max(0.0),
        }
    }

    /// The classic demo errand: still → walk → drive → walk → still.
    pub fn errand(person: PersonProfile) -> Self {
        SessionScript::new(
            vec![
                ScriptStep { activity: ActivityKind::Still, seconds: 10.0 },
                ScriptStep { activity: ActivityKind::Walk, seconds: 20.0 },
                ScriptStep { activity: ActivityKind::Drive, seconds: 30.0 },
                ScriptStep { activity: ActivityKind::Walk, seconds: 15.0 },
                ScriptStep { activity: ActivityKind::Still, seconds: 10.0 },
            ],
            person,
            1.0,
        )
    }

    /// Total scripted duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.steps.iter().map(|s| s.seconds).sum()
    }

    /// Ground-truth segments.
    pub fn truth(&self) -> Vec<TruthSegment> {
        let mut out = Vec::with_capacity(self.steps.len());
        let mut t = 0.0;
        for s in &self.steps {
            out.push(TruthSegment {
                label: s.activity.label().to_string(),
                start_s: t,
                end_s: t + s.seconds,
            });
            t += s.seconds;
        }
        out
    }

    /// Synthesise the full session at 120 Hz.
    ///
    /// Each step gets its own synthesiser (seeded from `rng`); inside the
    /// cross-fade window after a boundary, frames are a linear blend of
    /// the outgoing and incoming models so accelerometer traces stay
    /// continuous.
    pub fn synthesize(&self, rng: &mut SeededRng) -> Vec<SensorFrame> {
        let mut synths: Vec<SignalSynthesizer> = self
            .steps
            .iter()
            .map(|s| {
                SignalSynthesizer::new(s.activity.profile(), self.person, rng.split("step"))
            })
            .collect();
        let total_frames = (self.duration_s() * SAMPLE_RATE_HZ).round() as usize;
        let mut boundaries = Vec::with_capacity(self.steps.len());
        let mut acc = 0.0;
        for s in &self.steps {
            boundaries.push(acc);
            acc += s.seconds;
        }

        let mut frames = Vec::with_capacity(total_frames);
        for i in 0..total_frames {
            let t = i as f64 / SAMPLE_RATE_HZ;
            // Which step are we in?
            let idx = boundaries
                .iter()
                .rposition(|&b| t >= b)
                .unwrap_or(0);
            let into_step = t - boundaries[idx];
            let mut frame = {
                let (_, tail) = synths.split_at_mut(idx);
                tail[0].frame(t)
            };
            // Cross-fade from the previous step's model.
            if idx > 0 && self.crossfade_s > 0.0 && into_step < self.crossfade_s {
                let alpha = (into_step / self.crossfade_s) as f32; // 0 -> 1
                let prev = {
                    let (head, _) = synths.split_at_mut(idx);
                    head[idx - 1].frame(t)
                };
                for c in 0..NUM_CHANNELS {
                    frame.values[c] = alpha * frame.values[c] + (1.0 - alpha) * prev.values[c];
                }
            }
            frames.push(frame);
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::SensorChannel;

    fn two_step() -> SessionScript {
        SessionScript::new(
            vec![
                ScriptStep { activity: ActivityKind::Still, seconds: 2.0 },
                ScriptStep { activity: ActivityKind::Run, seconds: 2.0 },
            ],
            PersonProfile::nominal(),
            0.5,
        )
    }

    #[test]
    fn duration_and_truth() {
        let s = two_step();
        assert_eq!(s.duration_s(), 4.0);
        let truth = s.truth();
        assert_eq!(truth.len(), 2);
        assert_eq!(truth[0].label, "still");
        assert_eq!(truth[0].end_s, 2.0);
        assert_eq!(truth[1].start_s, 2.0);
        assert_eq!(truth[1].end_s, 4.0);
    }

    #[test]
    fn frame_count_matches_duration() {
        let s = two_step();
        let frames = s.synthesize(&mut SeededRng::new(1));
        assert_eq!(frames.len(), 480);
        // Timestamps are monotone.
        for w in frames.windows(2) {
            assert!(w[1].timestamp > w[0].timestamp);
        }
    }

    #[test]
    fn activity_change_changes_signal_energy() {
        let s = two_step();
        let frames = s.synthesize(&mut SeededRng::new(2));
        let energy = |range: std::ops::Range<usize>| {
            let xs: Vec<f32> = frames[range]
                .iter()
                .map(|f| f.get(SensorChannel::LinAccZ))
                .collect();
            magneto_tensor::stats::energy(&xs)
        };
        let still = energy(60..180); // inside the still step
        let run = energy(360..470); // inside the run step
        assert!(run > still * 10.0, "run {run} vs still {still}");
    }

    #[test]
    fn crossfade_is_continuous() {
        let s = two_step();
        let frames = s.synthesize(&mut SeededRng::new(3));
        // Max per-sample jump in accel_z around the boundary (frame 240)
        // should not be grossly larger than elsewhere in the run segment.
        let jump = |i: usize| {
            (frames[i + 1].get(SensorChannel::AccelZ) - frames[i].get(SensorChannel::AccelZ))
                .abs()
        };
        let boundary_jump = jump(239).max(jump(240));
        let steady_max = (300..460).map(jump).fold(0.0f32, f32::max);
        assert!(
            boundary_jump < steady_max * 3.0 + 1.0,
            "discontinuity at boundary: {boundary_jump} vs steady {steady_max}"
        );
    }

    #[test]
    fn no_crossfade_mode_works() {
        let s = SessionScript::new(
            vec![
                ScriptStep { activity: ActivityKind::Still, seconds: 1.0 },
                ScriptStep { activity: ActivityKind::Walk, seconds: 1.0 },
            ],
            PersonProfile::nominal(),
            0.0,
        );
        assert_eq!(s.synthesize(&mut SeededRng::new(4)).len(), 240);
    }

    #[test]
    fn errand_script_shape() {
        let s = SessionScript::errand(PersonProfile::nominal());
        assert_eq!(s.duration_s(), 85.0);
        assert_eq!(s.truth().len(), 5);
        assert_eq!(s.truth()[2].label, "drive");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = two_step();
        let a = s.synthesize(&mut SeededRng::new(5));
        let b = s.synthesize(&mut SeededRng::new(5));
        assert_eq!(a, b);
    }
}
