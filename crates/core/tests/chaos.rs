//! Chaos tests: the edge runtime under deterministic sensor faults and
//! hostile training inputs.
//!
//! Three guarantees are property-tested here:
//!
//! 1. **No faulted stream crashes the device.** A seeded [`FaultPlan`]
//!    (drops, frozen channels, NaN bursts, saturation rails, timestamp
//!    jitter) pushed through the full streaming path never panics and
//!    never produces a non-finite distance or confidence.
//! 2. **Chaos is replayable.** The same plan over the same input yields
//!    bit-identical predictions on every run, so any chaos failure
//!    reproduces from its seed alone.
//! 3. **Rollbacks are exact.** An update rejected by validation — or a
//!    training run that diverges outright — leaves the device's
//!    serialized bundle byte-identical and its predictions bit-identical
//!    to never having attempted the update.

use magneto_core::drift::DriftStatus;
use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, EdgeConfig, EdgeDevice, SelfHealingConfig,
    UpdateOutcome,
};
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{
    ActivityKind, BurstConfig, DriftPlan, FaultPlan, GeneratorConfig, LabeledWindow,
    PersonProfile, SensorDataset, SensorFrame, SensorStream, NUM_CHANNELS, SAMPLE_RATE_HZ,
};
use magneto_tensor::SeededRng;
use proptest::prelude::*;
use std::sync::OnceLock;

fn bundle() -> &'static EdgeBundle {
    static BUNDLE: OnceLock<EdgeBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap()
            .0
    })
}

fn device() -> EdgeDevice {
    EdgeDevice::deploy(bundle().clone(), EdgeConfig::default()).unwrap()
}

/// Transpose a `channels x samples` window back into a frame sequence,
/// so the fault injector (which operates on frames) can perturb it.
fn window_to_frames(channels: &[Vec<f32>]) -> Vec<SensorFrame> {
    let samples = channels.first().map_or(0, Vec::len);
    (0..samples)
        .map(|t| {
            let mut values = [0.0f32; NUM_CHANNELS];
            for (c, ch) in channels.iter().enumerate() {
                values[c] = ch[t];
            }
            SensorFrame {
                timestamp: t as f64 / SAMPLE_RATE_HZ,
                values,
            }
        })
        .collect()
}

/// A clean synthetic walk stream to perturb.
fn frames(n: usize, seed: u64) -> Vec<SensorFrame> {
    let mut s = SensorStream::new(
        ActivityKind::Walk.profile(),
        PersonProfile::nominal(),
        StreamConfig::ideal(),
        SeededRng::new(seed),
    );
    (0..n).map(|_| s.next().unwrap()).collect()
}

/// Run a faulted stream through a fresh device; return the prediction
/// fingerprint (label, smoothed label, and the exact bits of every float
/// output) plus the device's sensor-health report.
fn serve(faulted: &[SensorFrame]) -> (Vec<(String, String, u32, Vec<u32>, u32)>, u64) {
    let mut dev = device();
    let preds = dev.push_frames(faulted).unwrap();
    let fingerprint = preds
        .iter()
        .map(|p| {
            (
                p.raw.label.clone(),
                p.smoothed_label.clone(),
                p.raw.confidence.to_bits(),
                p.raw.distances.iter().map(|d| d.to_bits()).collect(),
                p.agreement.to_bits(),
            )
        })
        .collect();
    (fingerprint, dev.sensor_health().repaired_samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Guarantees 1 + 2, property-tested over the fault-seed space: an
    /// aggressive all-faults plan never panics the streaming path, never
    /// yields a non-finite output, and replays bit-identically.
    #[test]
    fn faulted_streams_never_panic_and_replay_bit_identically(seed in 0u64..1_000_000) {
        let input = frames(720, seed ^ 0x5EED_F00D);
        let plan = FaultPlan::nasty(seed);
        let faulted = plan.injector().apply(&input);
        let (a, _) = serve(&faulted);
        for (label, smoothed, conf, dists, agree) in &a {
            prop_assert!(!label.is_empty());
            prop_assert!(!smoothed.is_empty());
            prop_assert!(f32::from_bits(*conf).is_finite());
            prop_assert!(f32::from_bits(*agree).is_finite());
            for d in dists {
                prop_assert!(f32::from_bits(*d).is_finite(), "non-finite distance");
            }
        }
        // Replay: same plan, same input, fresh injector and device.
        let (b, _) = serve(&plan.injector().apply(&input));
        prop_assert_eq!(a, b, "chaos run did not replay bit-identically");
    }

    /// Sensor faults AND concept drift composed through the self-healing
    /// streaming path: never a panic, never a non-finite output, never an
    /// uplink byte — and the whole run (predictions, drift statuses,
    /// healing counters) replays bit-identically from its seeds, whatever
    /// the recalibration policy decided.
    #[test]
    fn faulted_and_drifted_streams_heal_deterministically(seed in 0u64..1_000_000) {
        let input = frames(120 * 8, seed ^ 0x0D12_F7ED);
        let faults = FaultPlan::nasty(seed);
        let drift = DriftPlan::gait_change(seed ^ 0xD21F7, 1.6, 400);
        // Faults first (the sensor path), then drift (the user).
        let perturb = || drift.injector().apply(&faults.injector().apply(&input));
        let serve_healing = |frames: &[SensorFrame]| {
            let config = EdgeConfig {
                healing: Some(SelfHealingConfig {
                    min_confidence: 0.05,
                    ..SelfHealingConfig::default()
                }),
                ..EdgeConfig::default()
            };
            let mut dev = EdgeDevice::deploy(bundle().clone(), config).unwrap();
            let preds = dev.push_frames(frames).unwrap();
            let fingerprint: Vec<_> = preds
                .iter()
                .map(|p| {
                    let drift_bits = match p.raw.drift {
                        None => (0u8, 0u32),
                        Some(DriftStatus::WarmingUp) => (1, 0),
                        Some(DriftStatus::Stable) => (2, 0),
                        Some(DriftStatus::Drifted { severity }) => (3, severity.to_bits()),
                    };
                    (
                        p.raw.label.clone(),
                        p.raw.confidence.to_bits(),
                        p.raw.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                        drift_bits,
                    )
                })
                .collect();
            dev.privacy_ledger().assert_no_uplink();
            (fingerprint, dev.healing_stats().unwrap())
        };
        let (a, stats_a) = serve_healing(&perturb());
        for (label, conf, dists, drift_bits) in &a {
            prop_assert!(!label.is_empty());
            prop_assert!(f32::from_bits(*conf).is_finite());
            for d in dists {
                prop_assert!(f32::from_bits(*d).is_finite(), "non-finite distance");
            }
            prop_assert!(drift_bits.0 > 0, "streamed prediction lost its drift status");
        }
        let (b, stats_b) = serve_healing(&perturb());
        prop_assert_eq!(a, b, "fault+drift chaos did not replay bit-identically");
        prop_assert_eq!(stats_a, stats_b, "healing counters did not replay");
    }
}

/// A stream hammered with NaN and saturation bursts still classifies
/// every completed window with finite outputs, the entry guard repairs
/// the poisoned samples, and the degradation is disclosed per-window
/// through `Prediction::quality` and the health counters.
#[test]
fn heavy_nan_saturation_stream_is_served_and_disclosed() {
    let plan = FaultPlan {
        nan: BurstConfig {
            prob: 0.02,
            min_len: 4,
            max_len: 40,
        },
        saturate: BurstConfig {
            prob: 0.02,
            min_len: 4,
            max_len: 40,
        },
        ..FaultPlan::none(33)
    };
    let input = frames(120 * 20, 12);
    let faulted = plan.injector().apply(&input);

    let mut dev = device();
    let preds = dev.push_frames(&faulted).unwrap();
    assert!(!preds.is_empty());
    for p in &preds {
        assert!(p.raw.confidence.is_finite());
        assert!(p.raw.distances.iter().all(|d| d.is_finite()));
    }
    assert!(preds.iter().any(|p| p.raw.quality.is_degraded()));

    let health = dev.sensor_health();
    assert!(health.repaired_samples > 0, "guard repaired nothing");
    assert!(health.degraded_windows > 0);
    assert!(health.worst_channel.is_some());
}

/// Frame drops shorten the stream but never corrupt it: the windowed
/// inference path over a 20 %-drop stream matches a clean device fed the
/// same surviving frames.
#[test]
fn frame_drops_change_timing_not_correctness() {
    let input = frames(120 * 20, 14);
    let faulted = FaultPlan::drops(5, 0.2).injector().apply(&input);
    assert!(faulted.len() < input.len());

    // The surviving frames are untouched: windows built from them are
    // plain clean windows, so two devices must agree bit-for-bit.
    let windows: Vec<LabeledWindow> = faulted
        .chunks_exact(120)
        .map(|c| LabeledWindow::from_frames("walk", c))
        .collect();
    let mut a = device();
    let mut b = device();
    for w in &windows {
        let pa = a.infer_window(&w.channels).unwrap();
        let pb = b.infer_window(&w.channels).unwrap();
        assert_eq!(pa.label, pb.label);
        assert_eq!(pa.confidence.to_bits(), pb.confidence.to_bits());
        assert!(pa.distances.iter().all(|d| d.is_finite()));
    }
}

/// Guarantee 3, validation-gate path: an update rejected by an
/// impossible self-accuracy floor reports the typed rollback outcome,
/// leaves the serialized bundle byte-identical, and the device's
/// post-rollback predictions agree 100 % (bit-for-bit) with a device
/// that never attempted the update.
#[test]
fn rolled_back_update_is_byte_and_prediction_exact() {
    let mut config = EdgeConfig::default();
    config.incremental.validation.self_accuracy_floor = 1.5; // unattainable
    let mut dev = EdgeDevice::deploy(bundle().clone(), config.clone()).unwrap();
    let before = dev.as_bundle().to_bytes(false);

    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        10.0,
        21,
    );
    let outcome = dev.learn_new_activity("gesture_hi", &recording).unwrap();
    assert!(
        matches!(outcome, UpdateOutcome::RolledBack { .. }),
        "expected rollback, got {outcome:?}"
    );
    assert!(outcome.committed().is_err(), "committed() must surface a typed error");

    assert_eq!(
        before,
        dev.as_bundle().to_bytes(false),
        "rollback must leave the bundle byte-identical"
    );
    assert!(!dev.classes().contains(&"gesture_hi".to_string()));

    // 100 % post-rollback inference agreement with an untouched device.
    let mut fresh = EdgeDevice::deploy(bundle().clone(), config).unwrap();
    let probe = SensorDataset::generate(&GeneratorConfig::tiny(), 77);
    for w in &probe.windows {
        let pa = dev.infer_window(&w.channels).unwrap();
        let pb = fresh.infer_window(&w.channels).unwrap();
        assert_eq!(pa.label, pb.label);
        assert_eq!(pa.confidence.to_bits(), pb.confidence.to_bits());
        assert_eq!(
            pa.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            pb.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }
}

/// Guarantee 3, divergence path: a training run whose loss explodes to
/// non-finite values errors out — and the error path restores the exact
/// pre-update state just like a validation rollback does.
#[test]
fn divergent_training_error_restores_exact_state() {
    let mut config = EdgeConfig::default();
    config.incremental.trainer.learning_rate = 1.0e9; // guaranteed blow-up
    let mut dev = EdgeDevice::deploy(bundle().clone(), config).unwrap();
    let before = dev.as_bundle().to_bytes(false);

    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        10.0,
        22,
    );
    let err = dev.learn_new_activity("gesture_hi", &recording);
    assert!(err.is_err(), "1e9 learning rate should diverge");

    assert_eq!(
        before,
        dev.as_bundle().to_bytes(false),
        "training error must leave the bundle byte-identical"
    );
    assert!(!dev.classes().contains(&"gesture_hi".to_string()));
}

/// Learning from a chaos-faulted recording either commits cleanly or
/// rolls back exactly — never a panic, never a silently corrupted model.
/// Either way the device keeps serving finite predictions afterwards.
#[test]
fn learning_from_faulted_recording_commits_or_rolls_back_cleanly() {
    for seed in [3u64, 4, 5] {
        let mut dev = device();
        let before = dev.as_bundle().to_bytes(false);

        let raw = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            15.0,
            seed,
        );
        let mut injector = FaultPlan::nasty(seed).injector();
        let windows: Vec<LabeledWindow> = raw
            .windows
            .iter()
            .filter_map(|w| {
                let kept = injector.apply(&window_to_frames(&w.channels));
                (kept.len() == w.len()).then(|| LabeledWindow::from_frames("gesture_hi", &kept))
            })
            .collect();
        if windows.is_empty() {
            continue;
        }
        let recording = SensorDataset { windows };

        match dev.learn_new_activity("gesture_hi", &recording) {
            Ok(UpdateOutcome::Committed(report)) => {
                assert!(report.training.epoch_losses.iter().all(|l| l.is_finite()));
                assert!(dev.classes().contains(&"gesture_hi".to_string()));
            }
            Ok(UpdateOutcome::RolledBack { .. }) | Err(_) => {
                assert_eq!(before, dev.as_bundle().to_bytes(false));
            }
        }
        let probe = frames(120 * 3, seed + 100);
        for p in dev.push_frames(&probe).unwrap() {
            assert!(p.raw.distances.iter().all(|d| d.is_finite()));
        }
    }
}
