//! Geometry and search-equivalence properties of the NCM classifier's
//! quantized two-stage index (DESIGN.md §16).
//!
//! The load-bearing invariants:
//!
//! * two-stage search with `top_k >= num_rows` is **bit-identical** to
//!   the dense exact scan, across metrics, dims, and class counts;
//! * at the default knobs, prediction agreement with the dense scan is
//!   ≥ 0.99 over seeded clustered workloads;
//! * incremental mutation (upsert / remove / exemplar churn) never
//!   corrupts the index — classification after any mutation sequence
//!   matches a freshly built classifier.

use magneto_core::{NcmClassifier, NcmDecision, NcmScratch};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::{Matrix, SeededRng};

fn random_vec(rng: &mut SeededRng, dim: usize, span: f32) -> Vec<f32> {
    (0..dim).map(|_| rng.uniform(-span, span)).collect()
}

/// A classifier with `classes` clustered classes of `dim` dims and
/// `exemplars` exemplar rows each (rows near their class prototype).
fn clustered(
    metric: DistanceMetric,
    classes: usize,
    dim: usize,
    exemplars: usize,
    seed: u64,
) -> NcmClassifier {
    let mut rng = SeededRng::new(seed);
    let protos: Vec<(String, Vec<f32>)> = (0..classes)
        .map(|c| (format!("class_{c}"), random_vec(&mut rng, dim, 4.0)))
        .collect();
    let mut ncm = NcmClassifier::new(metric, protos.clone()).unwrap();
    if exemplars > 0 {
        for (label, proto) in &protos {
            let mut rows = Matrix::zeros(exemplars, dim);
            for r in 0..exemplars {
                for (d, out) in rows.row_mut(r).iter_mut().enumerate() {
                    *out = proto[d] + rng.uniform(-0.5, 0.5);
                }
            }
            ncm.set_class_exemplars(label, &rows).unwrap();
        }
    }
    ncm
}

#[test]
fn two_stage_with_full_top_k_is_bit_identical_to_dense() {
    // Across metrics, dims, and class/exemplar counts: force the
    // two-stage path (coarse_min_rows = 1) with top_k >= num_rows and
    // every distance, label, and confidence must equal the dense scan
    // bitwise.
    let metrics = [
        DistanceMetric::Euclidean,
        DistanceMetric::SquaredEuclidean,
        DistanceMetric::Cosine,
    ];
    let mut scratch = NcmScratch::new();
    let (mut two, mut dense) = (NcmDecision::default(), NcmDecision::default());
    for (mi, metric) in metrics.into_iter().enumerate() {
        for (classes, dim, exemplars) in
            [(1usize, 1usize, 0usize), (2, 1, 3), (3, 7, 5), (8, 16, 4), (5, 33, 0)]
        {
            let mut ncm = clustered(metric, classes, dim, exemplars, 40 + mi as u64);
            ncm.set_search_params(1, ncm.num_rows());
            let mut rng = SeededRng::new(90 + mi as u64);
            for probe_i in 0..40 {
                let probe = random_vec(&mut rng, dim, 5.0);
                ncm.classify_into(&probe, &mut scratch, &mut two).unwrap();
                ncm.classify_dense_into(&probe, &mut scratch, &mut dense)
                    .unwrap();
                assert_eq!(
                    two, dense,
                    "{metric:?} {classes}x{dim}x{exemplars} probe {probe_i}"
                );
            }
        }
    }
}

#[test]
fn default_knobs_agree_with_dense_on_clustered_workloads() {
    // Default coarse_min_rows/top_k, classifiers big enough that the
    // two-stage path actually engages: ≥ 99% prediction agreement with
    // the dense scan on probes drawn near the class clusters.
    let mut scratch = NcmScratch::new();
    let (mut two, mut dense) = (NcmDecision::default(), NcmDecision::default());
    for metric in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
        let ncm = clustered(metric, 16, 24, 8, 7);
        assert!(ncm.num_rows() >= 64, "two-stage path must engage");
        let labels = ncm.labels().to_vec();
        let mut rng = SeededRng::new(11);
        let (mut total, mut agree) = (0u32, 0u32);
        for _ in 0..300 {
            let c = (rng.next_u32() as usize) % labels.len();
            let mut probe = ncm.prototype(&labels[c]).unwrap().to_vec();
            for v in &mut probe {
                *v += rng.uniform(-1.0, 1.0);
            }
            ncm.classify_into(&probe, &mut scratch, &mut two).unwrap();
            ncm.classify_dense_into(&probe, &mut scratch, &mut dense)
                .unwrap();
            total += 1;
            agree += u32::from(two.label == dense.label);
        }
        let rate = f64::from(agree) / f64::from(total);
        assert!(rate >= 0.99, "{metric:?}: agreement {rate} < 0.99");
    }
}

#[test]
fn manhattan_always_uses_dense_scan() {
    // Manhattan has no coarse int8 form; even a large classifier must
    // classify exactly.
    let ncm = clustered(DistanceMetric::Manhattan, 16, 24, 8, 3);
    let mut ncm_forced = ncm.clone();
    ncm_forced.set_search_params(1, 4); // would be lossy if it applied
    let mut rng = SeededRng::new(5);
    for _ in 0..20 {
        let probe = random_vec(&mut rng, 24, 5.0);
        assert_eq!(
            ncm.classify(&probe).unwrap(),
            ncm_forced.classify(&probe).unwrap()
        );
    }
}

#[test]
fn upsert_then_remove_preserves_ordering_invariants() {
    // Interleaved upserts and removes must keep label order, lookup, and
    // classification consistent with a freshly built classifier.
    let dim = 6;
    let mut rng = SeededRng::new(21);
    let mut ncm = clustered(DistanceMetric::Euclidean, 4, dim, 3, 21);
    // Remove a middle class, upsert a new one, replace an old one.
    assert!(ncm.remove("class_1"));
    assert_eq!(ncm.labels(), &["class_0", "class_2", "class_3"]);
    let novel = random_vec(&mut rng, dim, 4.0);
    ncm.upsert_prototype("novel", novel.clone()).unwrap();
    let replacement = random_vec(&mut rng, dim, 4.0);
    ncm.upsert_prototype("class_2", replacement.clone()).unwrap();
    assert_eq!(
        ncm.labels(),
        &["class_0", "class_2", "class_3", "novel"]
    );
    assert_eq!(ncm.prototype("class_2").unwrap(), replacement.as_slice());
    assert_eq!(ncm.prototype("novel").unwrap(), novel.as_slice());
    assert!(ncm.prototype("class_1").is_none());
    // Exemplars of removed classes are gone; survivors keep theirs.
    assert_eq!(ncm.exemplar_count("class_1"), None);
    assert_eq!(ncm.exemplar_count("class_0"), Some(3));
    assert_eq!(ncm.num_rows(), 4 + 3 * 3); // novel has no exemplars
    // Classification agrees with a classifier built directly in the
    // final state (same labels, same prototypes, no exemplars — compare
    // on prototype-only copies to isolate the bookkeeping).
    let mut bare = ncm.clone();
    bare.clear_exemplars();
    let rebuilt = NcmClassifier::new(
        DistanceMetric::Euclidean,
        bare.labels()
            .iter()
            .map(|l| (l.clone(), bare.prototype(l).unwrap().to_vec()))
            .collect(),
    )
    .unwrap();
    for _ in 0..25 {
        let probe = random_vec(&mut rng, dim, 5.0);
        assert_eq!(
            bare.classify(&probe).unwrap(),
            rebuilt.classify(&probe).unwrap()
        );
    }
}

#[test]
fn duplicate_label_upsert_replaces_not_appends() {
    let mut ncm = NcmClassifier::new(
        DistanceMetric::Euclidean,
        vec![("a".into(), vec![0.0, 0.0]), ("b".into(), vec![4.0, 0.0])],
    )
    .unwrap();
    for i in 0..5 {
        ncm.upsert_prototype("a", vec![i as f32, 1.0]).unwrap();
        assert_eq!(ncm.num_classes(), 2);
        assert_eq!(ncm.num_rows(), 2);
        assert_eq!(ncm.prototype("a").unwrap(), &[i as f32, 1.0]);
    }
    // Duplicate labels at construction: first occurrence wins the
    // lookup, mirroring the linear-scan behavior the map replaced.
    let dup = NcmClassifier::new(
        DistanceMetric::Euclidean,
        vec![
            ("x".into(), vec![1.0, 0.0]),
            ("x".into(), vec![9.0, 9.0]),
        ],
    )
    .unwrap();
    assert_eq!(dup.prototype("x").unwrap(), &[1.0, 0.0]);
}

#[test]
fn one_class_and_dim_one_classifiers() {
    // 1-class: everything classifies to it with confidence 1.
    let one = NcmClassifier::new(DistanceMetric::Euclidean, vec![("only".into(), vec![0.0; 3])])
        .unwrap();
    let d = one.classify(&[5.0, 5.0, 5.0]).unwrap();
    assert_eq!(d.label, "only");
    assert_eq!(d.confidence, 1.0);
    assert_eq!(d.distances.len(), 1);

    // dim-1 with exemplars, forced through the two-stage path.
    let mut thin = NcmClassifier::new(
        DistanceMetric::SquaredEuclidean,
        vec![("lo".into(), vec![-2.0]), ("hi".into(), vec![2.0])],
    )
    .unwrap();
    let mut rows = Matrix::zeros(2, 1);
    rows.row_mut(0)[0] = -1.0;
    rows.row_mut(1)[0] = -3.0;
    thin.set_class_exemplars("lo", &rows).unwrap();
    thin.set_search_params(1, thin.num_rows());
    let mut scratch = NcmScratch::new();
    let (mut two, mut dense) = (NcmDecision::default(), NcmDecision::default());
    for probe in [-4.0f32, -0.9, 0.1, 3.5] {
        thin.classify_into(&[probe], &mut scratch, &mut two).unwrap();
        thin.classify_dense_into(&[probe], &mut scratch, &mut dense)
            .unwrap();
        assert_eq!(two, dense, "probe {probe}");
    }
    assert_eq!(thin.classify(&[-0.9]).unwrap().label, "lo");
}

#[test]
fn exemplar_churn_stays_consistent_with_fresh_build() {
    // Repeatedly replacing exemplar sets (the rebuild_overlay pattern)
    // must classify identically to attaching the final set once.
    let dim = 5;
    let mut rng = SeededRng::new(77);
    let protos: Vec<(String, Vec<f32>)> = (0..3)
        .map(|c| (format!("c{c}"), random_vec(&mut rng, dim, 3.0)))
        .collect();
    let mut churned = NcmClassifier::new(DistanceMetric::Euclidean, protos.clone()).unwrap();
    let mut final_rows = Vec::new();
    for round in 0..4 {
        final_rows.clear();
        for (label, _) in &protos {
            let mut rows = Matrix::zeros(2 + round, dim);
            for r in 0..rows.rows() {
                let row = random_vec(&mut rng, dim, 3.0);
                rows.row_mut(r).copy_from_slice(&row);
            }
            churned.set_class_exemplars(label, &rows).unwrap();
            final_rows.push(rows);
        }
    }
    let mut fresh = NcmClassifier::new(DistanceMetric::Euclidean, protos.clone()).unwrap();
    for ((label, _), rows) in protos.iter().zip(&final_rows) {
        fresh.set_class_exemplars(label, rows).unwrap();
    }
    assert_eq!(churned, fresh);
    for _ in 0..25 {
        let probe = random_vec(&mut rng, dim, 4.0);
        assert_eq!(
            churned.classify(&probe).unwrap(),
            fresh.classify(&probe).unwrap()
        );
    }
}

#[test]
fn open_set_rejection_runs_through_the_index() {
    // With exemplars attached, an embedding near a *user exemplar* (but
    // far from the class mean) must pass open-set acceptance.
    let mut ncm = NcmClassifier::new(
        DistanceMetric::Euclidean,
        vec![("a".into(), vec![0.0, 0.0]), ("b".into(), vec![20.0, 0.0])],
    )
    .unwrap();
    let mut rows = Matrix::zeros(1, 2);
    rows.row_mut(0).copy_from_slice(&[0.0, 10.0]);
    ncm.set_class_exemplars("a", &rows).unwrap();
    let probe = [0.3, 9.8];
    // Near the exemplar: accepted at a tight threshold.
    let hit = ncm.classify_open_set(&probe, 1.0).unwrap();
    assert_eq!(hit.unwrap().label, "a");
    // Without the exemplar the same probe is rejected.
    ncm.clear_exemplars();
    assert!(ncm.classify_open_set(&probe, 1.0).unwrap().is_none());
}

#[test]
fn legacy_three_field_json_still_decodes() {
    // Wire format produced before the index existed: exactly the three
    // derived fields. Must decode into an exemplar-free classifier and
    // re-encode byte-identically.
    let legacy = r#"{"metric":"Euclidean","labels":["walk","run"],"prototypes":[[0.25,-1.5],[3.0,0.125]]}"#;
    let ncm: NcmClassifier = serde_json::from_str(legacy).unwrap();
    assert_eq!(ncm.num_classes(), 2);
    assert_eq!(ncm.num_rows(), 2);
    assert_eq!(ncm.prototype("run").unwrap(), &[3.0, 0.125]);
    assert_eq!(serde_json::to_string(&ncm).unwrap(), legacy);
}
