//! The Edge device runtime (the paper's online step).
//!
//! [`EdgeDevice`] owns everything that lives on the phone after
//! deployment: the pre-processing pipeline, the model state (Siamese
//! backbone + support set + registry + NCM), the privacy ledger, and the
//! latency recorder. Its API mirrors the demo scenarios of §4.2:
//! real-time inference, recording a new activity, on-device learning, and
//! calibration — all without a byte of uplink.

use crate::bundle::{BundleSizeReport, EdgeBundle};
use crate::drift::{DriftMonitor, DriftStatus};
use crate::embed::BatchEmbedder;
use crate::error::CoreError;
use crate::incremental::{IncrementalConfig, ModelState, UpdateMode, UpdateOutcome};
use crate::inference::{
    infer_window, infer_windows, InferenceView, LatencyRecorder, LatencyStats, Prediction,
    SmoothedPrediction, StreamingSession,
};
use crate::precision::{Precision, QuantizedSupportSet, ResidentSupport};
use crate::privacy::PrivacyLedger;
use crate::recalibrate::{HealingStats, Recalibrator, SelfHealingConfig};
use crate::version::{Lineage, ModelVersion};
use crate::Result;
use magneto_dsp::PreprocessingPipeline;
use magneto_sensors::{SensorDataset, SensorFrame, NUM_CHANNELS};
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Edge runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Samples per inference window (paper: ~120 = 1 s).
    pub window_len: usize,
    /// Majority-vote smoothing horizon, in windows.
    pub smoothing_window: usize,
    /// Incremental-learning configuration.
    pub incremental: IncrementalConfig,
    /// Seed for on-device randomness (exemplar selection, pair sampling).
    pub seed: u64,
    /// Resident precision policy: `Int8` keeps the quantised weights and
    /// support set resident (no f32 rehydration), `F32` is the
    /// pre-refactor behaviour.
    #[serde(default)]
    pub precision: Precision,
    /// Self-healing under concept drift: when set, the device runs a
    /// [`DriftMonitor`] over the streaming path and automatically
    /// recalibrates through the transactional update gates (see
    /// [`crate::recalibrate`]). `None` (the default) preserves the
    /// drift-blind behaviour.
    #[serde(default)]
    pub healing: Option<SelfHealingConfig>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            window_len: 120,
            smoothing_window: 3,
            incremental: IncrementalConfig::default(),
            seed: 0,
            precision: Precision::F32,
            healing: None,
        }
    }
}

/// Runtime state of the self-healing loop: the streaming drift detector
/// plus the recalibration policy that drives transactional repairs.
///
/// The support-set percentile from deploy time only floors the baseline:
/// live streaming windows sit at a different distance scale than the
/// curated support exemplars, so the first `warmup` windows of the
/// stream (assumed nominal) re-calibrate the baseline to the observed
/// mean before alerting is armed.
#[derive(Debug)]
struct HealingLoop {
    monitor: DriftMonitor,
    recal: Recalibrator,
    calibrated: bool,
    calib_sum: f64,
    calib_n: u64,
}

impl HealingLoop {
    /// Feed one nearest-prototype distance into the live baseline
    /// estimate; once enough windows are seen, re-baseline the monitor
    /// (floored by the deploy-time baseline) and re-enter warmup.
    fn calibrate(&mut self, nearest: f32) {
        if self.calibrated || !nearest.is_finite() {
            return;
        }
        self.calib_sum += f64::from(nearest);
        self.calib_n += 1;
        if self.calib_n >= self.recal.config().warmup.max(1) {
            let mean = (self.calib_sum / self.calib_n as f64) as f32;
            let floor = self.monitor.baseline();
            self.monitor.reset(mean.max(floor));
            self.calibrated = true;
        }
    }

    /// Restart live-baseline estimation (after a committed
    /// recalibration changed the support set under the monitor).
    fn recalibrate_baseline(&mut self) {
        let b = self.monitor.baseline();
        self.monitor.reset(b);
        self.calibrated = false;
        self.calib_sum = 0.0;
        self.calib_n = 0;
    }
}

/// A deployed MAGNETO Edge device.
#[derive(Debug)]
pub struct EdgeDevice {
    pipeline: PreprocessingPipeline,
    state: ModelState,
    config: EdgeConfig,
    ledger: PrivacyLedger,
    latency: LatencyRecorder,
    session: StreamingSession,
    embedder: BatchEmbedder,
    rng: SeededRng,
    lineage: Option<Lineage>,
    healing: Option<HealingLoop>,
}

impl EdgeDevice {
    /// Deploy a bundle onto a fresh device. The bundle download is the
    /// only Cloud interaction the device will ever have; it is recorded
    /// in the privacy ledger.
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] if the bundle fails validation.
    pub fn deploy(bundle: EdgeBundle, config: EdgeConfig) -> Result<Self> {
        bundle.validate()?;
        let mut ledger = PrivacyLedger::edge_only();
        ledger.record_download(bundle.total_bytes(), "edge bundle (pipeline+model+support)");
        // Convert to the policy precision before assembly: an int8 deploy
        // keeps quantised weights AND a quantised support set resident
        // (a quantised bundle model passes through untouched).
        let model = bundle.model.into_precision(config.precision)?;
        let support: ResidentSupport = match config.precision {
            Precision::F32 => bundle.support_set.into(),
            Precision::Int8 => QuantizedSupportSet::quantize(&bundle.support_set).into(),
        };
        let state = ModelState::assemble(
            model,
            support,
            bundle.registry,
            config.incremental.metric,
        )?;
        // The streaming session's entry guard repairs with the same
        // thresholds the pipeline's window guard uses, so the streaming
        // and batch paths degrade identically.
        let guard = bundle.pipeline.config().guard;
        let lineage = bundle.lineage;
        let mut device = EdgeDevice {
            pipeline: bundle.pipeline,
            lineage,
            session: StreamingSession::with_guard(
                NUM_CHANNELS,
                config.window_len,
                config.smoothing_window,
                guard,
            ),
            state,
            ledger,
            latency: LatencyRecorder::new(),
            embedder: BatchEmbedder::new(),
            rng: SeededRng::new(config.seed),
            healing: None,
            config,
        };
        if let Some(healing) = config.healing {
            device.enable_self_healing(healing)?;
        }
        Ok(device)
    }

    /// Switch on the self-healing loop: a [`DriftMonitor`] baselined on
    /// the current support set watches every streaming window, and the
    /// [`Recalibrator`] policy turns sustained drift into transactional
    /// calibration attempts (committed only through the validation
    /// gates; byte-exact rollback otherwise). Re-enabling replaces any
    /// previous loop and re-baselines against the current support set.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when the config fails validation;
    /// [`CoreError::InsufficientData`] when no support samples exist to
    /// baseline the monitor.
    pub fn enable_self_healing(&mut self, config: SelfHealingConfig) -> Result<()> {
        config.validate()?;
        let baseline = self
            .state
            .rejection_threshold(config.baseline_percentile, 1.0)?;
        let monitor = DriftMonitor::new(
            baseline.max(1e-6),
            config.alert_ratio,
            config.alpha,
            config.warmup,
        )?;
        let recal = Recalibrator::new(config)?;
        self.session.set_retain_windows(true);
        self.healing = Some(HealingLoop {
            monitor,
            recal,
            calibrated: false,
            calib_sum: 0.0,
            calib_n: 0,
        });
        Ok(())
    }

    /// Switch the self-healing loop off (drift status stops riding on
    /// predictions; no further automatic recalibration).
    pub fn disable_self_healing(&mut self) {
        self.healing = None;
        self.session.set_retain_windows(false);
    }

    /// Current drift status, when self-healing is enabled.
    pub fn drift_status(&self) -> Option<DriftStatus> {
        self.healing.as_ref().map(|h| h.monitor.status())
    }

    /// Self-healing counters (alerts, committed recalibrations,
    /// rollbacks, strikes), when the loop is enabled.
    pub fn healing_stats(&self) -> Option<HealingStats> {
        self.healing.as_ref().map(|h| h.recal.stats())
    }

    /// Activities the device currently recognises.
    pub fn classes(&self) -> Vec<String> {
        self.state.registry.labels().to_vec()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &EdgeConfig {
        &self.config
    }

    /// The precision the resident model executes at.
    pub fn precision(&self) -> Precision {
        self.state.model.precision()
    }

    /// The micro-kernel backend this device's GEMMs dispatch to —
    /// the workspace captured at construction, so it reflects the plan
    /// that was globally installed when the device deployed.
    pub fn compute_backend(&self) -> magneto_tensor::Backend {
        self.embedder.backend()
    }

    /// Bytes held resident for the model parameters plus the support
    /// set at their deployed precision — the quantity the int8 policy
    /// shrinks (prototypes, registry and pipeline are noise next to it).
    pub fn resident_bytes(&self) -> usize {
        self.state.model.resident_bytes() + self.state.support_set.bytes()
    }

    /// Classify one channel-major raw window (22 × ~120 samples).
    ///
    /// # Errors
    /// Propagates pre-processing/classification errors.
    pub fn infer_window(&mut self, channels: &[Vec<f32>]) -> Result<Prediction> {
        let pred = infer_window(&self.pipeline, &self.state.model, &self.state.ncm, channels)?;
        self.latency.record(pred.latency);
        Ok(pred)
    }

    /// Classify a backlog of raw windows as **one batch**: every window
    /// is featurised into a shared feature matrix and the whole batch
    /// runs through the backbone in a single forward pass. Per-window
    /// latency is the amortised batch cost.
    ///
    /// # Errors
    /// Propagates pre-processing/classification errors.
    pub fn infer_windows(&mut self, windows: &[Vec<Vec<f32>>]) -> Result<Vec<Prediction>> {
        let preds = infer_windows(
            &self.pipeline,
            &self.state.model,
            &self.state.ncm,
            windows,
            &mut self.embedder,
        )?;
        for p in &preds {
            self.latency.record(p.latency);
        }
        Ok(preds)
    }

    /// Open-set classification: `None` means "unknown activity" — the
    /// window is farther than `threshold` from every known prototype.
    /// Calibrate the threshold with
    /// [`rejection_threshold`](Self::rejection_threshold).
    ///
    /// # Errors
    /// Propagates pre-processing/classification errors.
    pub fn infer_window_open_set(
        &mut self,
        channels: &[Vec<f32>],
        threshold: f32,
    ) -> Result<Option<Prediction>> {
        let pred = self.infer_window(channels)?;
        let min_dist = pred
            .distances
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        Ok((min_dist <= threshold).then_some(pred))
    }

    /// Calibrate an open-set rejection threshold from the support set
    /// (see [`ModelState::rejection_threshold`]). Percentile ~99 with a
    /// margin of 4–7 keeps false rejections of known activities rare
    /// under user drift.
    ///
    /// # Errors
    /// See [`ModelState::rejection_threshold`].
    pub fn rejection_threshold(&self, percentile: f32, margin: f32) -> Result<f32> {
        self.state.rejection_threshold(percentile, margin)
    }

    /// Index the device's support exemplars on the classifier's
    /// quantized row index so every inference scores classes by their
    /// nearest exemplar, not just the class mean (see
    /// [`ModelState::attach_support_exemplars`]). Returns the number of
    /// exemplar rows indexed.
    ///
    /// # Errors
    /// Propagates embedding failures.
    pub fn attach_support_exemplars(&mut self) -> Result<usize> {
        self.state.attach_support_exemplars()
    }

    /// Push one live sensor frame into the streaming session. Returns a
    /// smoothed prediction whenever a window completes.
    ///
    /// # Errors
    /// Propagates inference errors on completed windows.
    pub fn push_frame(&mut self, frame: &SensorFrame) -> Result<Option<SmoothedPrediction>> {
        let mut out = self.session.push_sample(
            &frame.values,
            &self.pipeline,
            &self.state.model,
            &self.state.ncm,
        )?;
        if let Some(p) = &mut out {
            self.latency.record(p.raw.latency);
            self.self_heal(std::slice::from_mut(p))?;
        }
        Ok(out)
    }

    /// Push a backlog of live sensor frames at once — the catch-up path
    /// after the app was suspended while the sensors kept buffering. All
    /// windows completed by the backlog are embedded in one batched
    /// forward pass (see [`StreamingSession::push_samples`]).
    ///
    /// # Errors
    /// Propagates inference errors on completed windows.
    pub fn push_frames(&mut self, frames: &[SensorFrame]) -> Result<Vec<SmoothedPrediction>> {
        let rows: Vec<&[f32]> = frames.iter().map(|f| f.values.as_slice()).collect();
        let mut out = self.session.push_samples(
            &rows,
            &self.pipeline,
            &self.state.model,
            &self.state.ncm,
        )?;
        for p in &out {
            self.latency.record(p.raw.latency);
        }
        self.self_heal(&mut out)?;
        Ok(out)
    }

    /// The self-healing step behind the streaming path: observe each
    /// completed window's nearest-prototype distance, stamp the drift
    /// status onto the prediction, harvest confident nominal windows as
    /// calibration evidence, and — on sustained drift past hysteresis
    /// and cooldown — attempt a transactional recalibration.
    fn self_heal(&mut self, preds: &mut [SmoothedPrediction]) -> Result<()> {
        if self.healing.is_none() {
            return Ok(());
        }
        let windows = self.session.take_retained();
        let dim = self.pipeline.output_dim();
        let mut row = vec![0.0f32; dim];
        let mut fire = false;
        for (p, window) in preds.iter_mut().zip(&windows) {
            let healing = self.healing.as_mut().expect("checked above");
            let nearest = p
                .raw
                .distances
                .iter()
                .cloned()
                .fold(f32::INFINITY, f32::min);
            healing.calibrate(nearest);
            let status = healing.monitor.observe(nearest);
            p.raw.drift = Some(status);
            // Harvest evidence: the policy filters on confidence and
            // quality; featurisation is only paid for eligible windows.
            if p.raw.confidence >= healing.recal.config().min_confidence
                && !p.raw.quality.is_degraded()
            {
                self.pipeline.process_into(window, &mut row)?;
                let healing = self.healing.as_mut().expect("checked above");
                healing
                    .recal
                    .offer(&p.raw.label, &row, p.raw.confidence, p.raw.quality);
            }
            let healing = self.healing.as_mut().expect("checked above");
            fire |= healing.recal.observe(status);
        }
        if fire {
            self.attempt_recalibration();
        }
        Ok(())
    }

    /// Execute one automatic recalibration attempt through the same
    /// transactional gates as user-triggered learning. Failures never
    /// propagate into the serving path: a rejected or errored update is
    /// rolled back byte-exactly by the transactional machinery and
    /// counted as a strike.
    fn attempt_recalibration(&mut self) {
        let Some(candidate) = self.healing.as_ref().and_then(|h| h.recal.candidate()) else {
            return;
        };
        let (label, rows) = candidate;
        let config = self.config.incremental;
        let outcome =
            self.state
                .update_transactional(&label, &rows, UpdateMode::Calibration, &config, &mut self.rng);
        match outcome {
            Ok(UpdateOutcome::Committed(_)) => {
                // The refreshed support set shifts the distance scale, so
                // re-estimate the live baseline from the post-commit
                // stream (old baseline stays as the floor).
                if let Some(healing) = self.healing.as_mut() {
                    healing.recal.note_commit();
                    healing.recalibrate_baseline();
                }
            }
            Ok(UpdateOutcome::RolledBack { .. }) | Err(_) => {
                if let Some(healing) = self.healing.as_mut() {
                    healing.recal.note_rollback();
                }
            }
        }
    }

    /// Reset the streaming session (activity boundary in the UI).
    pub fn reset_session(&mut self) {
        self.session.reset();
    }

    /// Cumulative sensor-health picture of the streaming path: frames
    /// scrubbed, samples repaired, the least healthy channel, and how
    /// many emitted windows were degraded.
    pub fn sensor_health(&self) -> crate::inference::SensorHealth {
        self.session.sensor_health()
    }

    /// §4.2.2: learn a brand-new activity from a recorded session. The
    /// recording never leaves the device.
    ///
    /// Runs transactionally: the trained state must pass validation
    /// (finite losses/weights, bounded loss growth, old-class
    /// self-accuracy floor) or the device is restored to its exact
    /// pre-update state and [`UpdateOutcome::RolledBack`] is returned.
    ///
    /// # Errors
    /// See [`ModelState::update_transactional`].
    pub fn learn_new_activity(
        &mut self,
        label: &str,
        recording: &SensorDataset,
    ) -> Result<UpdateOutcome> {
        let features = self.featurize_recording(recording)?;
        let config = self.config.incremental;
        self.state.update_transactional(
            label,
            &features,
            UpdateMode::NewActivity,
            &config,
            &mut self.rng,
        )
    }

    /// Calibrate an existing activity to the user's personal style: the
    /// class's support data is replaced by the new recording, then the
    /// model re-trains. Transactional, like
    /// [`learn_new_activity`](Self::learn_new_activity).
    ///
    /// # Errors
    /// See [`ModelState::update_transactional`].
    pub fn calibrate_activity(
        &mut self,
        label: &str,
        recording: &SensorDataset,
    ) -> Result<UpdateOutcome> {
        let features = self.featurize_recording(recording)?;
        let config = self.config.incremental;
        self.state.update_transactional(
            label,
            &features,
            UpdateMode::Calibration,
            &config,
            &mut self.rng,
        )
    }

    fn featurize_recording(&self, recording: &SensorDataset) -> Result<Vec<Vec<f32>>> {
        if recording.is_empty() {
            return Err(CoreError::InsufficientData("empty recording".into()));
        }
        let dim = self.pipeline.output_dim();
        let mut rows = Vec::with_capacity(recording.windows.len());
        for w in &recording.windows {
            let mut row = vec![0.0f32; dim];
            self.pipeline.process_into(&w.channels, &mut row)?;
            rows.push(row);
        }
        Ok(rows)
    }

    /// Export a learned activity as a portable [`crate::sharing::ClassPack`] for
    /// peer-to-peer sharing (Bluetooth/AirDrop — never via the Cloud).
    /// The pack carries pre-processed feature exemplars, not raw sensor
    /// data.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] when the device does not know `label`.
    pub fn export_class(&self, label: &str) -> Result<crate::sharing::ClassPack> {
        let samples = self
            .state
            .support_set
            .samples(label)
            .ok_or_else(|| CoreError::UnknownClass(label.to_string()))?;
        crate::sharing::ClassPack::new(label, samples)
    }

    /// Import a peer's [`crate::sharing::ClassPack`], learning the class exactly as if
    /// this device's user had recorded it (same incremental machinery,
    /// same forgetting protection).
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when the class already exists or the
    /// pack's feature dimension does not match the pipeline; training
    /// errors are propagated.
    pub fn import_class(
        &mut self,
        pack: &crate::sharing::ClassPack,
    ) -> Result<UpdateOutcome> {
        if pack.feature_dim != self.pipeline.output_dim() {
            return Err(CoreError::InvalidConfig(format!(
                "class pack has {}-d features, pipeline produces {}",
                pack.feature_dim,
                self.pipeline.output_dim()
            )));
        }
        let config = self.config.incremental;
        self.state.update_transactional(
            &pack.label,
            &pack.exemplars,
            UpdateMode::NewActivity,
            &config,
            &mut self.rng,
        )
    }

    /// Attempt to sync user data to the Cloud. Always fails on a MAGNETO
    /// device — this method exists so the demo can *show* Definition 1
    /// being enforced.
    ///
    /// # Errors
    /// Always [`CoreError::PrivacyViolation`].
    pub fn try_sync_to_cloud(&mut self, description: &str) -> Result<()> {
        let bytes = self.state.support_set.bytes();
        self.ledger.try_upload(bytes, description)
    }

    /// The privacy ledger (read-only).
    pub fn privacy_ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// Latency statistics across all inferences so far.
    pub fn latency_stats(&self) -> LatencyStats {
        self.latency.stats()
    }

    /// Current on-device footprint, serialised at the given precision —
    /// the quantity bounded by 5 MB in §4.2.
    pub fn memory_footprint(&self, quantized: bool) -> BundleSizeReport {
        self.as_bundle().size_report(quantized)
    }

    /// Snapshot the current device state as a bundle (e.g. for local
    /// persistence; never for upload). The model keeps its resident
    /// precision; the support-set section of the wire format is f32, so
    /// an int8 store is dequantised for the snapshot.
    pub fn as_bundle(&self) -> EdgeBundle {
        EdgeBundle {
            pipeline: self.pipeline.clone(),
            model: self.state.model.clone(),
            support_set: self
                .state
                .support_set
                .to_f32()
                .expect("resident support set is non-empty by construction"),
            registry: self.state.registry.clone(),
            lineage: self.lineage,
        }
    }

    /// The base-model version this device is serving
    /// ([`ModelVersion::LEGACY`] for pre-versioning bundles).
    pub fn model_version(&self) -> ModelVersion {
        self.lineage.map_or(ModelVersion::LEGACY, |l| l.version)
    }

    /// Direct access to the model state (experiments and diagnostics).
    pub fn state(&self) -> &ModelState {
        &self.state
    }

    /// Borrow everything a serving runtime needs to classify windows for
    /// this device without taking `&mut`: pipeline, backbone, NCM. A
    /// fleet scheduler stacks views from many sessions into one
    /// [`crate::inference::infer_batch`] call.
    pub fn inference_view(&self) -> InferenceView<'_> {
        InferenceView {
            pipeline: &self.pipeline,
            model: &self.state.model,
            ncm: &self.state.ncm,
        }
    }

    /// Record an externally measured inference latency — the hook a
    /// batching runtime uses to keep this device's latency statistics
    /// honest when the inference ran outside [`infer_window`](Self::infer_window)
    /// (e.g. amortised across a cross-session micro-batch).
    pub fn note_latency(&mut self, latency: std::time::Duration) {
        self.latency.record(latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{CloudConfig, CloudInitializer};
    use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile};

    fn deployed_device(seed: u64) -> EdgeDevice {
        deployed_device_at(seed, Precision::F32)
    }

    fn deployed_device_at(seed: u64, precision: Precision) -> EdgeDevice {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), seed);
        let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap();
        let config = EdgeConfig {
            precision,
            ..EdgeConfig::default()
        };
        EdgeDevice::deploy(bundle, config).unwrap()
    }

    #[test]
    fn deploy_records_the_download_and_nothing_else() {
        let device = deployed_device(1);
        let ledger = device.privacy_ledger();
        assert_eq!(ledger.records().len(), 1);
        assert!(ledger.downlink_bytes() > 0);
        assert_eq!(ledger.uplink_bytes(), 0);
        ledger.assert_no_uplink();
        assert_eq!(device.classes().len(), 5);
    }

    #[test]
    fn infer_window_works_and_records_latency() {
        let mut device = deployed_device(2);
        let probe = SensorDataset::generate(
            &GeneratorConfig {
                activities: vec![ActivityKind::Run],
                windows_per_class: 3,
                ..GeneratorConfig::tiny()
            },
            99,
        );
        for w in &probe.windows {
            let pred = device.infer_window(&w.channels).unwrap();
            assert!(device.classes().contains(&pred.label));
        }
        let stats = device.latency_stats();
        assert_eq!(stats.count, 3);
        assert!(stats.mean_us > 0.0);
    }

    #[test]
    fn streaming_frames_produce_predictions() {
        let mut device = deployed_device(3);
        let mut stream = magneto_sensors::SensorStream::new(
            ActivityKind::Walk.profile(),
            PersonProfile::nominal(),
            magneto_sensors::stream::StreamConfig::ideal(),
            SeededRng::new(4),
        );
        let mut outputs = 0;
        for _ in 0..360 {
            let frame = stream.next().unwrap();
            if device.push_frame(&frame).unwrap().is_some() {
                outputs += 1;
            }
        }
        assert_eq!(outputs, 3);
        device.reset_session();
    }

    #[test]
    fn batched_window_inference_matches_per_window() {
        let mut device = deployed_device(40);
        let probe = SensorDataset::generate(
            &GeneratorConfig {
                windows_per_class: 2,
                ..GeneratorConfig::tiny()
            },
            41,
        );
        let windows: Vec<Vec<Vec<f32>>> =
            probe.windows.iter().map(|w| w.channels.clone()).collect();
        let batched = device.infer_windows(&windows).unwrap();
        assert_eq!(batched.len(), windows.len());
        for (w, b) in windows.iter().zip(&batched) {
            let single = device.infer_window(w).unwrap();
            assert_eq!(single.label, b.label);
            assert_eq!(single.confidence, b.confidence);
            assert_eq!(single.distances, b.distances);
        }
        // Both paths fed the latency recorder.
        assert_eq!(device.latency_stats().count, 2 * windows.len());
        // An empty backlog is a no-op.
        assert!(device.infer_windows(&[]).unwrap().is_empty());
    }

    #[test]
    fn batched_frames_match_sequential_frames() {
        let mut seq_dev = deployed_device(42);
        let mut batch_dev = deployed_device(42);
        let mut stream = magneto_sensors::SensorStream::new(
            ActivityKind::Walk.profile(),
            PersonProfile::nominal(),
            magneto_sensors::stream::StreamConfig::ideal(),
            SeededRng::new(43),
        );
        let frames: Vec<SensorFrame> = (0..360).map(|_| stream.next().unwrap()).collect();

        let mut seq_out = Vec::new();
        for f in &frames {
            if let Some(p) = seq_dev.push_frame(f).unwrap() {
                seq_out.push(p);
            }
        }
        let batch_out = batch_dev.push_frames(&frames).unwrap();
        assert_eq!(batch_out.len(), seq_out.len());
        assert_eq!(batch_out.len(), 3);
        for (b, s) in batch_out.iter().zip(&seq_out) {
            assert_eq!(b.raw.label, s.raw.label);
            assert_eq!(b.smoothed_label, s.smoothed_label);
            assert_eq!(b.agreement, s.agreement);
        }
    }

    #[test]
    fn learn_new_activity_end_to_end() {
        let mut device = deployed_device(5);
        let recording = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            25.0,
            6,
        );
        let report = device
            .learn_new_activity("gesture_hi", &recording)
            .unwrap()
            .committed()
            .unwrap();
        assert!(report.classes_after.contains(&"gesture_hi".to_string()));
        assert_eq!(report.new_windows, 25);
        assert_eq!(device.classes().len(), 6);
        // Privacy invariant still holds after learning.
        device.privacy_ledger().assert_no_uplink();
    }

    #[test]
    fn learn_duplicate_class_fails() {
        let mut device = deployed_device(7);
        let recording = SensorDataset::record_session(
            "walk",
            ActivityKind::Walk,
            PersonProfile::nominal(),
            10.0,
            8,
        );
        assert!(matches!(
            device.learn_new_activity("walk", &recording),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn calibrate_existing_class() {
        let mut device = deployed_device(9);
        let mut rng = SeededRng::new(10);
        let person = PersonProfile::sample_atypical(&mut rng);
        let recording =
            SensorDataset::record_session("walk", ActivityKind::Walk, person, 20.0, 11);
        let report = device
            .calibrate_activity("walk", &recording)
            .unwrap()
            .committed()
            .unwrap();
        assert_eq!(report.classes_after.len(), 5); // no new class
        assert!(matches!(
            device.calibrate_activity("yoga", &recording),
            Err(CoreError::UnknownClass(_))
        ));
    }

    #[test]
    fn empty_recording_rejected() {
        let mut device = deployed_device(12);
        assert!(matches!(
            device.learn_new_activity("x", &SensorDataset::default()),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn sync_to_cloud_is_always_blocked() {
        let mut device = deployed_device(13);
        let err = device.try_sync_to_cloud("support set backup").unwrap_err();
        assert!(matches!(err, CoreError::PrivacyViolation { .. }));
        device.privacy_ledger().assert_no_uplink();
    }

    #[test]
    fn footprint_stays_under_budget_for_fast_demo() {
        let device = deployed_device(14);
        let report = device.memory_footprint(false);
        assert!(report.within_5mb(), "footprint {} MiB", report.total_mib());
        let quantized = device.memory_footprint(true);
        assert!(quantized.total_bytes < report.total_bytes);
    }

    #[test]
    fn class_sharing_between_devices() {
        // Device A learns a gesture; device B imports the exported pack
        // and recognises the gesture without ever seeing a recording.
        let mut device_a = deployed_device(30);
        let recording = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            25.0,
            31,
        );
        device_a
            .learn_new_activity("gesture_hi", &recording)
            .unwrap()
            .committed()
            .unwrap();
        let pack = device_a.export_class("gesture_hi").unwrap();
        let wire = pack.to_bytes();

        let mut device_b = deployed_device(30);
        assert_eq!(device_b.classes().len(), 5);
        let received = crate::sharing::ClassPack::from_bytes(&wire).unwrap();
        device_b.import_class(&received).unwrap().committed().unwrap();
        assert_eq!(device_b.classes().len(), 6);

        // B recognises the gesture from fresh windows.
        let probe = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            10.0,
            32,
        );
        let mut hits = 0;
        for w in &probe.windows {
            if device_b.infer_window(&w.channels).unwrap().label == "gesture_hi" {
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= probe.windows.len() * 7,
            "B recognised {hits}/{}",
            probe.windows.len()
        );
        // No Cloud involved anywhere.
        device_a.privacy_ledger().assert_no_uplink();
        device_b.privacy_ledger().assert_no_uplink();

        // Exporting an unknown class fails; importing a duplicate fails.
        assert!(matches!(
            device_a.export_class("yoga"),
            Err(CoreError::UnknownClass(_))
        ));
        assert!(device_b.import_class(&received).is_err());
    }

    #[test]
    fn open_set_rejects_unseen_gesture_before_learning() {
        let mut device = deployed_device(16);
        let threshold = device.rejection_threshold(100.0, 6.5).unwrap();
        assert!(threshold > 0.0);

        // Base-activity windows are mostly accepted…
        let base = SensorDataset::generate(&GeneratorConfig::tiny(), 17);
        let accepted = base
            .windows
            .iter()
            .filter(|w| {
                device
                    .infer_window_open_set(&w.channels, threshold)
                    .unwrap()
                    .is_some()
            })
            .count();
        assert!(
            accepted * 10 >= base.windows.len() * 5,
            "too many known windows rejected: {accepted}/{}",
            base.windows.len()
        );

        // …while an unseen gesture is rejected more often than base
        // activities are.
        let gesture = SensorDataset::record_session(
            "gesture_circle",
            ActivityKind::GestureCircle,
            PersonProfile::nominal(),
            20.0,
            18,
        );
        let gesture_accepted = gesture
            .windows
            .iter()
            .filter(|w| {
                device
                    .infer_window_open_set(&w.channels, threshold)
                    .unwrap()
                    .is_some()
            })
            .count();
        let base_rate = accepted as f64 / base.windows.len() as f64;
        let gesture_rate = gesture_accepted as f64 / gesture.windows.len() as f64;
        assert!(
            gesture_rate < base_rate,
            "unseen gesture accepted at {gesture_rate} vs base {base_rate}"
        );
    }

    #[test]
    fn int8_deploy_keeps_resident_footprint_under_035x() {
        let f32_dev = deployed_device_at(20, Precision::F32);
        let int8_dev = deployed_device_at(20, Precision::Int8);
        assert_eq!(f32_dev.precision(), Precision::F32);
        assert_eq!(int8_dev.precision(), Precision::Int8);
        let ratio = int8_dev.resident_bytes() as f64 / f32_dev.resident_bytes() as f64;
        assert!(
            ratio <= 0.35,
            "int8 resident {} bytes vs f32 {} bytes (ratio {ratio:.3})",
            int8_dev.resident_bytes(),
            f32_dev.resident_bytes()
        );
    }

    #[test]
    fn int8_predictions_agree_with_f32_above_99_percent() {
        let mut f32_dev = deployed_device_at(21, Precision::F32);
        let mut int8_dev = deployed_device_at(21, Precision::Int8);
        let eval = SensorDataset::generate(
            &GeneratorConfig {
                windows_per_class: 20,
                ..GeneratorConfig::tiny()
            },
            22,
        );
        let mut agree = 0;
        for w in &eval.windows {
            let a = f32_dev.infer_window(&w.channels).unwrap();
            let b = int8_dev.infer_window(&w.channels).unwrap();
            if a.label == b.label {
                agree += 1;
            }
        }
        let rate = agree as f64 / eval.windows.len() as f64;
        assert!(
            rate >= 0.99,
            "int8 agreed with f32 on {agree}/{} windows ({rate:.3})",
            eval.windows.len()
        );
    }

    #[test]
    fn int8_learn_new_activity_round_trip() {
        let mut device = deployed_device_at(23, Precision::Int8);
        let recording = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            25.0,
            24,
        );
        let report = device
            .learn_new_activity("gesture_hi", &recording)
            .unwrap()
            .committed()
            .unwrap();
        assert!(report.classes_after.contains(&"gesture_hi".to_string()));
        // The device recommitted to int8 after the f32 training pass,
        // support set included.
        assert_eq!(device.precision(), Precision::Int8);
        assert_eq!(
            device.state().support_set.precision(),
            Precision::Int8
        );
        device.privacy_ledger().assert_no_uplink();

        // The new gesture is recognised through the int8 path.
        let probe = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            10.0,
            25,
        );
        let mut hits = 0;
        for w in &probe.windows {
            if device.infer_window(&w.channels).unwrap().label == "gesture_hi" {
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= probe.windows.len() * 7,
            "recognised {hits}/{}",
            probe.windows.len()
        );
    }

    #[test]
    fn int8_snapshot_roundtrips_and_redeploys() {
        let device = deployed_device_at(26, Precision::Int8);
        let snapshot = device.as_bundle();
        let restored = EdgeBundle::from_bytes(&snapshot.to_bytes(true)).unwrap();
        assert_eq!(restored.model.precision(), Precision::Int8);
        let device2 = EdgeDevice::deploy(
            restored,
            EdgeConfig {
                precision: Precision::Int8,
                ..EdgeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(device2.classes(), device.classes());
        assert_eq!(device2.precision(), Precision::Int8);
    }

    fn walk_frames(n: usize, seed: u64) -> Vec<SensorFrame> {
        let mut stream = magneto_sensors::SensorStream::new(
            ActivityKind::Walk.profile(),
            PersonProfile::nominal(),
            magneto_sensors::stream::StreamConfig::ideal(),
            SeededRng::new(seed),
        );
        (0..n).map(|_| stream.next().unwrap()).collect()
    }

    #[test]
    fn self_healing_stays_quiet_on_clean_stream() {
        let mut device = deployed_device(50);
        device
            .enable_self_healing(SelfHealingConfig::default())
            .unwrap();
        assert!(device.drift_status().is_some());
        let preds = device.push_frames(&walk_frames(120 * 12, 51)).unwrap();
        assert_eq!(preds.len(), 12);
        // Every streaming prediction carries a drift status now.
        assert!(preds.iter().all(|p| p.raw.drift.is_some()));
        let stats = device.healing_stats().unwrap();
        assert_eq!(stats.drift_alerts, 0, "clean walk must not alert: {stats:?}");
        assert_eq!(stats.auto_recals, 0);
        assert!(!stats.degraded);
        // Self-healing adds zero uplink.
        device.privacy_ledger().assert_no_uplink();
    }

    #[test]
    fn self_healing_detects_drift_and_attempts_recalibration() {
        let mut device = deployed_device(52);
        device
            .enable_self_healing(SelfHealingConfig::default())
            .unwrap();
        // Warm the monitor up on clean data first (the first windows
        // also calibrate the live baseline).
        device.push_frames(&walk_frames(120 * 8, 53)).unwrap();
        // Then the user's gait changes: motion amplitude ramps up over
        // five seconds and stays there.
        let mut drift = magneto_sensors::DriftPlan::gait_change(54, 1.6, 600).injector();
        let drifted = drift.apply(&walk_frames(120 * 30, 55));
        let preds = device.push_frames(&drifted).unwrap();
        assert!(preds
            .iter()
            .any(|p| matches!(p.raw.drift, Some(DriftStatus::Drifted { .. }))));
        let stats = device.healing_stats().unwrap();
        assert!(stats.drift_alerts >= 1, "no alert fired: {stats:?}");
        assert!(
            stats.auto_recals + stats.recal_rollbacks >= 1,
            "sustained drift never triggered an attempt: {stats:?}"
        );
        device.privacy_ledger().assert_no_uplink();
    }

    #[test]
    fn rejected_recalibrations_strike_out_byte_exactly() {
        // An unattainable self-accuracy floor forces every automatic
        // attempt to roll back; the policy must degrade after
        // max_strikes and the model bytes must be exactly untouched.
        let mut config = EdgeConfig::default();
        config.incremental.validation.self_accuracy_floor = 1.5;
        config.healing = Some(SelfHealingConfig {
            max_strikes: 2,
            cooldown: 4,
            // Harvest even low-confidence windows so the evidence buffer
            // refills quickly between strikes.
            min_confidence: 0.05,
            ..SelfHealingConfig::default()
        });
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 56);
        let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap();
        let mut device = EdgeDevice::deploy(bundle, config).unwrap();
        let before = device.as_bundle().to_bytes(false);

        device.push_frames(&walk_frames(120 * 8, 57)).unwrap();
        let mut drift = magneto_sensors::DriftPlan::gait_change(58, 1.6, 600).injector();
        let drifted = drift.apply(&walk_frames(120 * 60, 59));
        device.push_frames(&drifted).unwrap();

        let stats = device.healing_stats().unwrap();
        assert_eq!(stats.auto_recals, 0, "impossible floor committed: {stats:?}");
        if stats.recal_rollbacks >= 2 {
            assert!(stats.degraded, "strikes exhausted but not degraded: {stats:?}");
            assert!(stats.advisory().is_some());
        }
        assert!(
            stats.recal_rollbacks == 0 || before == device.as_bundle().to_bytes(false),
            "rolled-back recalibration mutated the bundle"
        );
        device.privacy_ledger().assert_no_uplink();
    }

    #[test]
    fn healing_config_in_edge_config_enables_at_deploy() {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 60);
        let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap();
        let config = EdgeConfig {
            healing: Some(SelfHealingConfig::default()),
            ..EdgeConfig::default()
        };
        let device = EdgeDevice::deploy(bundle, config).unwrap();
        assert!(device.drift_status().is_some());
        assert_eq!(device.healing_stats().unwrap(), HealingStats::default());
        // Legacy configs (no healing key) still deserialize, defaulting
        // to drift-blind.
        let json = serde_json::to_string(&EdgeConfig::default()).unwrap();
        let stripped = json.replace(",\"healing\":null", "");
        assert_ne!(json, stripped);
        let back: EdgeConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.healing, None);
    }

    #[test]
    fn bundle_snapshot_roundtrips_through_bytes() {
        let device = deployed_device(15);
        let snapshot = device.as_bundle();
        let bytes = snapshot.to_bytes(false);
        let restored = EdgeBundle::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot, restored);
        // And a new device can be deployed from the snapshot.
        let device2 = EdgeDevice::deploy(restored, EdgeConfig::default()).unwrap();
        assert_eq!(device2.classes(), device.classes());
    }
}
