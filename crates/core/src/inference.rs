//! Real-time Edge inference.
//!
//! §3.3: "the Edge device is capable of performing the inference on the
//! fly by reading its sensors and passing the captured measurements
//! sequentially from the pre-processing function to the pre-trained
//! model"; §4.2.1 claims "imperceptible prediction latency, which is only
//! a few milliseconds". This module provides the per-window inference
//! path with latency instrumentation, plus a streaming session that
//! segments a live sensor stream and majority-vote-smooths the label
//! sequence for the UI.

use crate::drift::DriftStatus;
use crate::embed::BatchEmbedder;
use crate::ncm::NcmClassifier;
use crate::precision::ResidentModel;
use crate::Result;
use magneto_dsp::{
    segment::Segmenter, FrameGuard, GuardConfig, PreprocessingPipeline, SignalQuality,
};
use magneto_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// One inference outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Winning activity label.
    pub label: String,
    /// Confidence in `[0, 1]`.
    pub confidence: f32,
    /// Distance to each class prototype (classifier label order).
    pub distances: Vec<f32>,
    /// Wall-clock time of the full pre-process → embed → classify path.
    pub latency: Duration,
    /// Whether the window's signal was clean or repaired at pipeline
    /// entry ([`SignalQuality::Degraded`] output should not be trusted
    /// the way nominal output is).
    pub quality: SignalQuality,
    /// Concept-drift status at this window, when the serving path runs a
    /// [`crate::drift::DriftMonitor`] (`None` on paths without one —
    /// plain batch inference, or a device without self-healing enabled).
    pub drift: Option<DriftStatus>,
}

/// Cumulative sensor-health picture for one device's streaming session:
/// what the entry guard repaired and how many emitted windows were
/// affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SensorHealth {
    /// Frames that passed through the guard.
    pub frames: u64,
    /// Channel-samples repaired (non-finite or out-of-range).
    pub repaired_samples: u64,
    /// `(channel index, repair count)` of the least healthy channel, if
    /// any repairs happened.
    pub worst_channel: Option<(usize, u64)>,
    /// Windows emitted with [`SignalQuality::Degraded`].
    pub degraded_windows: u64,
}

/// Aggregated latency statistics (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Number of measurements.
    pub count: usize,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median (µs).
    pub p50_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// Maximum (µs).
    pub max_us: f64,
}

/// Records latencies and summarises them.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<f64>,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one measurement.
    pub fn record(&mut self, d: Duration) {
        self.samples_us.push(d.as_secs_f64() * 1e6);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Summarise. An empty recorder reports all-zero stats; a single
    /// measurement *is* every percentile (both cases are handled
    /// explicitly rather than trusting the rank arithmetic at the
    /// boundary).
    pub fn stats(&self) -> LatencyStats {
        if self.samples_us.is_empty() {
            return LatencyStats::default();
        }
        if let [only] = self.samples_us.as_slice() {
            return LatencyStats {
                count: 1,
                mean_us: *only,
                p50_us: *only,
                p95_us: *only,
                p99_us: *only,
                max_us: *only,
            };
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |p: f64| {
            let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank.min(sorted.len() - 1)]
        };
        LatencyStats {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// The per-window inference path: pipeline → embedding → NCM.
pub(crate) fn infer_window(
    pipeline: &PreprocessingPipeline,
    model: &ResidentModel,
    ncm: &NcmClassifier,
    channels: &[Vec<f32>],
) -> Result<Prediction> {
    let start = Instant::now();
    let (features, quality) = pipeline.process_checked(channels)?;
    let embedding = model.embed_one(&features)?;
    let decision = ncm.classify(&embedding)?;
    Ok(Prediction {
        label: decision.label,
        confidence: decision.confidence,
        distances: decision.distances,
        latency: start.elapsed(),
        quality,
        drift: None,
    })
}

/// A read-only borrow of everything one session needs to classify a
/// window: its pre-processing pipeline, its backbone, and its NCM
/// prototypes. The fleet scheduler holds many of these at once —
/// inference never needs `&mut` device state, so a serving runtime can
/// batch across sessions while each session keeps exclusive ownership of
/// its mutable state (support set, ledger, RNG).
#[derive(Debug, Clone, Copy)]
pub struct InferenceView<'a> {
    /// The session's fitted pre-processing function.
    pub pipeline: &'a PreprocessingPipeline,
    /// The session's backbone at its resident precision.
    pub model: &'a ResidentModel,
    /// The session's prototype classifier.
    pub ncm: &'a NcmClassifier,
}

/// One pending window in a cross-session micro-batch. The backbone is
/// shared by the whole batch (the caller guarantees every job's session
/// runs the same model weights); pre-processing and classification stay
/// per-job because those may differ per session even under one model.
#[derive(Debug)]
pub struct BatchJob<'a> {
    /// The owning session's pre-processing function.
    pub pipeline: &'a PreprocessingPipeline,
    /// The owning session's NCM prototypes.
    pub ncm: &'a NcmClassifier,
    /// Channel-major raw window to classify.
    pub window: &'a [Vec<f32>],
}

/// Cross-session micro-batched inference: featurise every job's window
/// with *its own* pipeline straight into the shared staging matrix, run
/// the whole batch through `model` as **one** forward pass, then classify
/// each embedding row with that job's own NCM. Outputs are bit-identical
/// to calling [`infer_window`] per job (the batched and per-sample kernel
/// paths are property-tested equal), so a scheduler may group jobs from
/// many sessions freely as long as they share model weights. Reported
/// per-window latency is the amortised batch cost.
///
/// # Errors
/// Propagates pre-processing/classification errors; shape errors on
/// pipelines with mismatched output dimensions.
pub fn infer_batch(
    model: &ResidentModel,
    jobs: &[BatchJob<'_>],
    embedder: &mut BatchEmbedder,
) -> Result<Vec<Prediction>> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let start = Instant::now();
    let staging = embedder.staging();
    staging.resize(jobs.len(), jobs[0].pipeline.output_dim());
    let mut qualities = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        qualities.push(
            job.pipeline
                .process_checked_into(job.window, staging.row_mut(i))?,
        );
    }
    let mut embeddings = Matrix::default();
    embedder.embed_staged(model, &mut embeddings)?;
    // Classify through the embedder's resident scratch (§9 `_into`
    // convention): the quantised-query/coarse-score/softmax buffers are
    // reused across every job of every batch this embedder serves.
    let (scratch, decision) = embedder.classify_parts();
    let mut predictions = Vec::with_capacity(jobs.len());
    for ((r, job), quality) in jobs.iter().enumerate().zip(qualities) {
        job.ncm.classify_into(embeddings.row(r), scratch, decision)?;
        predictions.push(Prediction {
            label: decision.label.clone(),
            confidence: decision.confidence,
            distances: decision.distances.clone(),
            latency: Duration::ZERO,
            quality,
            drift: None,
        });
    }
    let per_window = start.elapsed() / jobs.len() as u32;
    for p in &mut predictions {
        p.latency = per_window;
    }
    Ok(predictions)
}

/// Batched inference over a backlog of windows: every window is
/// featurised straight into one row of the embedder's staging matrix
/// (`process_into`), the whole batch goes through the backbone as a
/// single forward pass, and each embedding row is classified. Reported
/// per-window latency is the batch wall-clock divided by the batch size
/// — the amortised cost, which is the honest number for a batched path.
pub(crate) fn infer_windows(
    pipeline: &PreprocessingPipeline,
    model: &ResidentModel,
    ncm: &NcmClassifier,
    windows: &[Vec<Vec<f32>>],
    embedder: &mut BatchEmbedder,
) -> Result<Vec<Prediction>> {
    let jobs: Vec<BatchJob<'_>> = windows
        .iter()
        .map(|w| BatchJob {
            pipeline,
            ncm,
            window: w,
        })
        .collect();
    infer_batch(model, &jobs, embedder)
}

/// A live streaming session: feeds raw 22-channel samples into a
/// segmenter and smooths window predictions with a majority vote over the
/// last `k` windows (the GUI's stable label, Figure 3a–b).
#[derive(Debug)]
pub struct StreamingSession {
    segmenter: Segmenter,
    history: VecDeque<String>,
    smoothing_window: usize,
    embedder: BatchEmbedder,
    guard: FrameGuard,
    /// Scratch copy of the incoming sample so the guard can repair it
    /// without mutating the caller's buffer.
    scrub_buf: Vec<f32>,
    /// Samples repaired since the current window started filling.
    faults_in_window: usize,
    degraded_windows: u64,
    /// When enabled, completed (scrubbed) windows are kept until
    /// [`take_retained`](Self::take_retained) — the hook a self-healing
    /// policy uses to harvest evidence without re-segmenting the stream.
    retain_windows: bool,
    retained: Vec<Vec<Vec<f32>>>,
}

/// A smoothed streaming prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothedPrediction {
    /// The raw per-window prediction that triggered this output.
    pub raw: Prediction,
    /// Majority label over the smoothing window.
    pub smoothed_label: String,
    /// Fraction of recent windows agreeing with the smoothed label.
    pub agreement: f32,
}

impl StreamingSession {
    /// Create a session for `channels`-channel input with `window_len`
    /// samples per window and a vote over `smoothing_window` windows.
    /// The entry guard uses the default [`GuardConfig`]; see
    /// [`with_guard`](Self::with_guard) to match a pipeline's config.
    pub fn new(channels: usize, window_len: usize, smoothing_window: usize) -> Self {
        Self::with_guard(channels, window_len, smoothing_window, GuardConfig::default())
    }

    /// [`new`](Self::new) with an explicit entry-guard configuration
    /// (deployment wires the pipeline's own guard config here so the
    /// streaming path and the batch path repair identically).
    pub fn with_guard(
        channels: usize,
        window_len: usize,
        smoothing_window: usize,
        guard: GuardConfig,
    ) -> Self {
        StreamingSession {
            segmenter: Segmenter::new(channels, window_len, window_len),
            history: VecDeque::with_capacity(smoothing_window.max(1)),
            smoothing_window: smoothing_window.max(1),
            embedder: BatchEmbedder::new(),
            guard: FrameGuard::new(channels, guard),
            scrub_buf: Vec::with_capacity(channels),
            faults_in_window: 0,
            degraded_windows: 0,
            retain_windows: false,
            retained: Vec::new(),
        }
    }

    /// Enable or disable retention of completed windows (see
    /// [`take_retained`](Self::take_retained)). Disabling drops anything
    /// currently held.
    pub fn set_retain_windows(&mut self, retain: bool) {
        self.retain_windows = retain;
        if !retain {
            self.retained.clear();
        }
    }

    /// Drain the windows completed since the last call (emission order).
    /// Empty unless [`set_retain_windows`](Self::set_retain_windows) is
    /// on.
    pub fn take_retained(&mut self) -> Vec<Vec<Vec<f32>>> {
        std::mem::take(&mut self.retained)
    }

    /// Scrub one incoming sample through the guard (copy-on-write into
    /// the scratch buffer) and feed it to the segmenter. Returns the
    /// completed window, if any, and its entry quality.
    fn push_scrubbed(&mut self, sample: &[f32]) -> Option<(Vec<Vec<f32>>, SignalQuality)> {
        self.scrub_buf.clear();
        self.scrub_buf.extend_from_slice(sample);
        self.faults_in_window += self.guard.scrub(&mut self.scrub_buf);
        let window = self.segmenter.push(&self.scrub_buf)?;
        let quality = if self.faults_in_window > 0 {
            self.degraded_windows += 1;
            SignalQuality::Degraded
        } else {
            SignalQuality::Nominal
        };
        self.faults_in_window = 0;
        if self.retain_windows {
            self.retained.push(window.clone());
        }
        Some((window, quality))
    }

    /// Push one raw sample. When a window completes, runs inference and
    /// returns the smoothed prediction. Non-finite or out-of-range
    /// values are repaired at entry (last-good-value hold per channel);
    /// a window containing any repaired sample is flagged
    /// [`SignalQuality::Degraded`] on its prediction.
    ///
    /// # Errors
    /// Propagates inference errors on completed windows.
    pub fn push_sample(
        &mut self,
        sample: &[f32],
        pipeline: &PreprocessingPipeline,
        model: &ResidentModel,
        ncm: &NcmClassifier,
    ) -> Result<Option<SmoothedPrediction>> {
        let Some((window, quality)) = self.push_scrubbed(sample) else {
            return Ok(None);
        };
        let mut raw = infer_window(pipeline, model, ncm, &window)?;
        raw.quality = raw.quality.merge(quality);
        Ok(Some(self.smooth(raw)))
    }

    /// Push a backlog of raw samples at once — e.g. sensor data buffered
    /// while the app was suspended. Completed windows are featurised and
    /// embedded as **one batch** (a single forward pass through the
    /// backbone) instead of window-by-window, then smoothed in stream
    /// order exactly as [`push_sample`](Self::push_sample) would have.
    ///
    /// # Errors
    /// Propagates inference errors on completed windows.
    pub fn push_samples<S: AsRef<[f32]>>(
        &mut self,
        samples: &[S],
        pipeline: &PreprocessingPipeline,
        model: &ResidentModel,
        ncm: &NcmClassifier,
    ) -> Result<Vec<SmoothedPrediction>> {
        let mut windows = Vec::new();
        let mut qualities = Vec::new();
        for sample in samples {
            if let Some((window, quality)) = self.push_scrubbed(sample.as_ref()) {
                windows.push(window);
                qualities.push(quality);
            }
        }
        let raws = infer_windows(pipeline, model, ncm, &windows, &mut self.embedder)?;
        Ok(raws
            .into_iter()
            .zip(qualities)
            .map(|(mut raw, quality)| {
                raw.quality = raw.quality.merge(quality);
                self.smooth(raw)
            })
            .collect())
    }

    /// Fold one raw prediction into the majority-vote history.
    fn smooth(&mut self, raw: Prediction) -> SmoothedPrediction {
        if self.history.len() == self.smoothing_window {
            self.history.pop_front();
        }
        self.history.push_back(raw.label.clone());
        let mut best_label = raw.label.clone();
        let mut best_count = 0usize;
        for l in &self.history {
            let c = self.history.iter().filter(|x| *x == l).count();
            if c > best_count {
                best_count = c;
                best_label = l.clone();
            }
        }
        let agreement = best_count as f32 / self.history.len() as f32;
        SmoothedPrediction {
            raw,
            smoothed_label: best_label,
            agreement,
        }
    }

    /// Windows inferred so far.
    pub fn windows_seen(&self) -> u64 {
        self.segmenter.emitted()
    }

    /// Cumulative sensor-health picture (guard repairs + degraded
    /// window count) since the session was created.
    pub fn sensor_health(&self) -> SensorHealth {
        SensorHealth {
            frames: self.guard.frames(),
            repaired_samples: self.guard.repaired_total(),
            worst_channel: self.guard.worst_channel(),
            degraded_windows: self.degraded_windows,
        }
    }

    /// Clear segmentation and vote history (activity change). The
    /// guard's last-good hold is dropped too — values from the previous
    /// activity must not patch holes in the next one — but its health
    /// counters persist for the life of the session.
    pub fn reset(&mut self) {
        self.segmenter.reset();
        self.history.clear();
        self.guard.reset_hold();
        self.faults_in_window = 0;
        self.retained.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ncm::NcmClassifier;
    use crate::precision::Precision;
    use magneto_dsp::PipelineConfig;
    use magneto_nn::{Mlp, SiameseNetwork};
    use magneto_tensor::vector::DistanceMetric;
    use magneto_tensor::SeededRng;

    fn fixture() -> (PreprocessingPipeline, ResidentModel, NcmClassifier) {
        let pipeline = PreprocessingPipeline::new(PipelineConfig::default());
        let mut rng = SeededRng::new(1);
        let model =
            ResidentModel::from(SiameseNetwork::new(Mlp::new(&[80, 16, 4], &mut rng).unwrap(), 1.0));
        // Prototypes straddling the embedding of a zero-ish window.
        let ncm = NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![
                ("still".into(), vec![0.0; 4]),
                ("walk".into(), vec![100.0; 4]),
            ],
        )
        .unwrap();
        (pipeline, model, ncm)
    }

    fn window(value: f32) -> Vec<Vec<f32>> {
        vec![vec![value; 120]; 22]
    }

    #[test]
    fn cross_session_batch_matches_per_window_inference() {
        // Two "sessions" with the same backbone but different prototype
        // sets, micro-batched through one forward pass, must produce
        // bit-identical outputs to per-window inference on each session.
        let (pipeline, model, ncm_a) = fixture();
        let ncm_b = NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![
                ("still".into(), vec![1.0; 4]),
                ("walk".into(), vec![50.0; 4]),
                ("run".into(), vec![-20.0; 4]),
            ],
        )
        .unwrap();
        let windows: Vec<Vec<Vec<f32>>> = (0..6).map(|i| window(i as f32 * 0.03)).collect();
        let jobs: Vec<BatchJob<'_>> = windows
            .iter()
            .enumerate()
            .map(|(i, w)| BatchJob {
                pipeline: &pipeline,
                ncm: if i % 2 == 0 { &ncm_a } else { &ncm_b },
                window: w,
            })
            .collect();
        let mut embedder = BatchEmbedder::new();
        let batched = infer_batch(&model, &jobs, &mut embedder).unwrap();
        assert_eq!(batched.len(), 6);
        for (i, (w, b)) in windows.iter().zip(&batched).enumerate() {
            let ncm = if i % 2 == 0 { &ncm_a } else { &ncm_b };
            let single = infer_window(&pipeline, &model, ncm, w).unwrap();
            assert_eq!(single.label, b.label, "job {i}");
            assert_eq!(single.confidence, b.confidence, "job {i}");
            assert_eq!(single.distances, b.distances, "job {i}");
        }
        // Distances follow each job's own class count.
        assert_eq!(batched[0].distances.len(), 2);
        assert_eq!(batched[1].distances.len(), 3);
        // Empty batch is a no-op.
        assert!(infer_batch(&model, &[], &mut embedder).unwrap().is_empty());
    }

    #[test]
    fn int8_batch_matches_int8_per_window_inference() {
        let (pipeline, model, ncm) = fixture();
        let model = model.into_precision(Precision::Int8).unwrap();
        let windows: Vec<Vec<Vec<f32>>> = (0..5).map(|i| window(i as f32 * 0.04)).collect();
        let jobs: Vec<BatchJob<'_>> = windows
            .iter()
            .map(|w| BatchJob {
                pipeline: &pipeline,
                ncm: &ncm,
                window: w,
            })
            .collect();
        let mut embedder = BatchEmbedder::new();
        let batched = infer_batch(&model, &jobs, &mut embedder).unwrap();
        for (i, (w, b)) in windows.iter().zip(&batched).enumerate() {
            let single = infer_window(&pipeline, &model, &ncm, w).unwrap();
            assert_eq!(single.label, b.label, "window {i}");
            assert_eq!(single.confidence, b.confidence, "window {i}");
            assert_eq!(single.distances, b.distances, "window {i}");
        }
    }

    #[test]
    fn infer_window_produces_prediction() {
        let (pipeline, model, ncm) = fixture();
        let pred = infer_window(&pipeline, &model, &ncm, &window(0.1)).unwrap();
        assert!(["still", "walk"].contains(&pred.label.as_str()));
        assert!(pred.confidence > 0.0 && pred.confidence <= 1.0);
        assert_eq!(pred.distances.len(), 2);
        assert!(pred.latency > Duration::ZERO);
    }

    #[test]
    fn latency_recorder_percentiles() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.stats(), LatencyStats::default());
        for ms in 1..=100u64 {
            rec.record(Duration::from_millis(ms));
        }
        let stats = rec.stats();
        assert_eq!(stats.count, 100);
        assert_eq!(rec.len(), 100);
        assert!((stats.mean_us - 50_500.0).abs() < 1.0);
        assert!((stats.p50_us - 50_000.0).abs() < 2000.0);
        assert!(stats.p95_us >= 94_000.0 && stats.p95_us <= 96_000.0);
        assert!(stats.p99_us >= 98_000.0);
        assert_eq!(stats.max_us, 100_000.0);
    }

    #[test]
    fn latency_recorder_boundary_counts() {
        // Empty: all-zero stats, explicitly.
        assert_eq!(LatencyRecorder::new().stats(), LatencyStats::default());
        // One sample: that sample is the mean, the max, and every
        // percentile.
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_micros(1234));
        let stats = rec.stats();
        assert_eq!(stats.count, 1);
        assert_eq!(stats.mean_us, 1234.0);
        assert_eq!(stats.p50_us, 1234.0);
        assert_eq!(stats.p95_us, 1234.0);
        assert_eq!(stats.p99_us, 1234.0);
        assert_eq!(stats.max_us, 1234.0);
        // Two samples: percentiles still come from the sorted ranks.
        rec.record(Duration::from_micros(10));
        let stats = rec.stats();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.p50_us, 1234.0);
        assert_eq!(stats.max_us, 1234.0);
    }

    #[test]
    fn batched_push_matches_sequential_push() {
        let (pipeline, model, ncm) = fixture();
        let samples: Vec<Vec<f32>> = (0..360)
            .map(|i| vec![(i % 7) as f32 * 0.01; 22])
            .collect();

        let mut sequential = StreamingSession::new(22, 120, 3);
        let mut seq_out = Vec::new();
        for s in &samples {
            if let Some(p) = sequential.push_sample(s, &pipeline, &model, &ncm).unwrap() {
                seq_out.push(p);
            }
        }

        let mut batched = StreamingSession::new(22, 120, 3);
        let batch_out = batched
            .push_samples(&samples, &pipeline, &model, &ncm)
            .unwrap();

        assert_eq!(batch_out.len(), seq_out.len());
        assert_eq!(batched.windows_seen(), sequential.windows_seen());
        for (b, s) in batch_out.iter().zip(&seq_out) {
            assert_eq!(b.raw.label, s.raw.label);
            assert_eq!(b.raw.confidence, s.raw.confidence);
            assert_eq!(b.raw.distances, s.raw.distances);
            assert_eq!(b.smoothed_label, s.smoothed_label);
            assert_eq!(b.agreement, s.agreement);
        }
    }

    #[test]
    fn push_samples_with_no_completed_window_is_empty() {
        let (pipeline, model, ncm) = fixture();
        let mut session = StreamingSession::new(22, 120, 3);
        let samples = vec![vec![0.1; 22]; 50];
        let out = session
            .push_samples(&samples, &pipeline, &model, &ncm)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn streaming_session_emits_one_prediction_per_window() {
        let (pipeline, model, ncm) = fixture();
        let mut session = StreamingSession::new(22, 120, 3);
        let mut outputs = 0;
        for i in 0..360 {
            let sample = vec![(i % 7) as f32 * 0.01; 22];
            if session
                .push_sample(&sample, &pipeline, &model, &ncm)
                .unwrap()
                .is_some()
            {
                outputs += 1;
            }
        }
        assert_eq!(outputs, 3);
        assert_eq!(session.windows_seen(), 3);
    }

    #[test]
    fn smoothing_majority_vote() {
        let (pipeline, model, ncm) = fixture();
        let mut session = StreamingSession::new(22, 120, 5);
        let mut last = None;
        for i in 0..(120 * 5) {
            let sample = vec![0.05 + (i as f32 * 0.001).sin() * 0.01; 22];
            if let Some(p) = session
                .push_sample(&sample, &pipeline, &model, &ncm)
                .unwrap()
            {
                // Agreement is a valid fraction and the smoothed label is
                // one of the known classes.
                assert!((0.0..=1.0).contains(&p.agreement));
                assert!(["still", "walk"].contains(&p.smoothed_label.as_str()));
                last = Some(p);
            }
        }
        // With a stationary input the vote converges to full agreement.
        assert_eq!(last.unwrap().agreement, 1.0);
    }

    #[test]
    fn reset_clears_history() {
        let (pipeline, model, ncm) = fixture();
        let mut session = StreamingSession::new(22, 120, 3);
        for _ in 0..120 {
            session
                .push_sample(&[0.1; 22], &pipeline, &model, &ncm)
                .unwrap();
        }
        assert_eq!(session.windows_seen(), 1);
        session.reset();
        assert_eq!(session.windows_seen(), 0);
    }

    #[test]
    fn degraded_samples_flag_their_window_only() {
        let (pipeline, model, ncm) = fixture();
        let mut session = StreamingSession::new(22, 120, 3);
        let mut preds = Vec::new();
        for i in 0..360 {
            let mut sample = vec![0.1; 22];
            // Poison a few samples inside the SECOND window only.
            if (150..155).contains(&i) {
                sample[3] = f32::NAN;
                sample[7] = f32::INFINITY;
            }
            if let Some(p) = session
                .push_sample(&sample, &pipeline, &model, &ncm)
                .unwrap()
            {
                preds.push(p);
            }
        }
        assert_eq!(preds.len(), 3);
        assert_eq!(preds[0].raw.quality, SignalQuality::Nominal);
        assert_eq!(preds[1].raw.quality, SignalQuality::Degraded);
        assert_eq!(preds[2].raw.quality, SignalQuality::Nominal);
        assert!(preds.iter().all(|p| p.raw.distances.iter().all(|d| d.is_finite())));
        let health = session.sensor_health();
        assert_eq!(health.repaired_samples, 10);
        assert_eq!(health.degraded_windows, 1);
        assert!(matches!(health.worst_channel, Some((3 | 7, 5))));
    }

    #[test]
    fn batched_degraded_push_matches_sequential() {
        let (pipeline, model, ncm) = fixture();
        let mut samples: Vec<Vec<f32>> = (0..360)
            .map(|i| vec![(i % 7) as f32 * 0.01; 22])
            .collect();
        samples[40][0] = f32::NAN;
        samples[250][12] = f32::NEG_INFINITY;

        let mut sequential = StreamingSession::new(22, 120, 3);
        let mut seq_out = Vec::new();
        for s in &samples {
            if let Some(p) = sequential.push_sample(s, &pipeline, &model, &ncm).unwrap() {
                seq_out.push(p);
            }
        }
        let mut batched = StreamingSession::new(22, 120, 3);
        let batch_out = batched
            .push_samples(&samples, &pipeline, &model, &ncm)
            .unwrap();
        assert_eq!(batch_out.len(), seq_out.len());
        for (b, s) in batch_out.iter().zip(&seq_out) {
            assert_eq!(b.raw.quality, s.raw.quality);
            assert_eq!(b.raw.label, s.raw.label);
            assert_eq!(b.raw.distances, s.raw.distances);
        }
        assert_eq!(batch_out[0].raw.quality, SignalQuality::Degraded);
        assert_eq!(batch_out[1].raw.quality, SignalQuality::Nominal);
        assert_eq!(batch_out[2].raw.quality, SignalQuality::Degraded);
        assert_eq!(batched.sensor_health(), sequential.sensor_health());
    }

    #[test]
    fn malformed_sample_is_ignored() {
        let (pipeline, model, ncm) = fixture();
        let mut session = StreamingSession::new(22, 4, 1);
        // Wrong arity: ignored, no window forms.
        for _ in 0..10 {
            let out = session
                .push_sample(&[1.0, 2.0], &pipeline, &model, &ncm)
                .unwrap();
            assert!(out.is_none());
        }
    }
}
