//! Versioned model lineage.
//!
//! A base model is an **immutable, versioned artefact**, not an
//! anonymous byte blob: every [`crate::bundle::EdgeBundle`] the cloud
//! ships after the initial deploy carries a [`Lineage`] — a monotonic
//! [`ModelVersion`] plus the content hash of the parent bundle it was
//! derived from. The lineage threads through the bundle wire format
//! (`storage.rs` frames carry it, spool files validate it) and lets the
//! rollout driver prove that version N+1 really descends from the
//! version N a device is serving before it applies a delta diff.
//!
//! Bundles written before versioning existed have no lineage; they
//! decode as version 0 ([`ModelVersion::LEGACY`]) and re-serialize
//! byte-verbatim.

use crate::error::CoreError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonically increasing base-model version. `v0` is reserved for
/// legacy (pre-versioning) bundles.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ModelVersion(pub u32);

impl ModelVersion {
    /// The version assigned to bundles serialized before lineage
    /// existed.
    pub const LEGACY: ModelVersion = ModelVersion(0);

    /// The successor version.
    #[must_use]
    pub fn next(self) -> ModelVersion {
        ModelVersion(self.0 + 1)
    }

    /// Whether this is the pre-versioning sentinel.
    pub fn is_legacy(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Where a bundle sits in the version history: its own version and the
/// content hash of the bundle it was derived from (`None` for a root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lineage {
    /// This bundle's version. Must be ≥ 1: version 0 means "no
    /// lineage" and is never written to the wire.
    pub version: ModelVersion,
    /// FNV-1a hash of the parent bundle's full-precision wire bytes,
    /// or `None` for the first versioned release.
    pub parent: Option<u64>,
}

impl Lineage {
    /// A root lineage: the first versioned release, with no parent.
    pub fn root(version: u32) -> Lineage {
        Lineage {
            version: ModelVersion(version),
            parent: None,
        }
    }

    /// Check that `self` is a valid direct successor of a parent with
    /// the given version and content hash: strictly greater version and
    /// a matching parent hash.
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] naming the violated constraint.
    pub fn validate_succession(
        &self,
        parent_version: ModelVersion,
        parent_hash: u64,
    ) -> Result<()> {
        if self.version <= parent_version {
            return Err(CoreError::InvalidBundle(format!(
                "version {} does not advance past parent {parent_version}",
                self.version
            )));
        }
        match self.parent {
            Some(h) if h == parent_hash => Ok(()),
            Some(h) => Err(CoreError::InvalidBundle(format!(
                "lineage parent hash {h:016x} does not match parent bundle {parent_hash:016x}"
            ))),
            None => Err(CoreError::InvalidBundle(
                "lineage claims to be a root but a parent bundle exists".into(),
            )),
        }
    }
}

/// Streaming FNV-1a 64-bit digest as an [`std::io::Write`] sink, so a
/// bundle can be content-hashed without materialising its wire bytes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Fold bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl std::io::Write for Fnv64 {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_order_and_display() {
        assert!(ModelVersion::LEGACY.is_legacy());
        assert!(ModelVersion(1) > ModelVersion::LEGACY);
        assert_eq!(ModelVersion(3).next(), ModelVersion(4));
        assert_eq!(ModelVersion(7).to_string(), "v7");
    }

    #[test]
    fn succession_requires_monotonic_version_and_matching_hash() {
        let child = Lineage {
            version: ModelVersion(2),
            parent: Some(0xabcd),
        };
        assert!(child.validate_succession(ModelVersion(1), 0xabcd).is_ok());
        // Wrong parent hash.
        assert!(child.validate_succession(ModelVersion(1), 0xdcba).is_err());
        // Non-advancing version.
        assert!(child.validate_succession(ModelVersion(2), 0xabcd).is_err());
        // Root where a parent exists.
        assert!(Lineage::root(5)
            .validate_succession(ModelVersion(1), 0xabcd)
            .is_err());
    }

    #[test]
    fn fnv_digest_matches_reference() {
        // FNV-1a("a") and FNV-1a("") are published reference values.
        let empty = Fnv64::new();
        assert_eq!(empty.finish(), 0xcbf2_9ce4_8422_2325);
        let mut a = Fnv64::new();
        a.update(b"a");
        assert_eq!(a.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn lineage_serde_roundtrip() {
        let l = Lineage {
            version: ModelVersion(4),
            parent: Some(42),
        };
        let json = serde_json::to_string(&l).unwrap();
        let back: Lineage = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
