//! Per-user personalization deltas.
//!
//! MAGNETO personalizes per user, but what actually differs between a
//! personalized session and the shared base model is small: calibrated
//! class prototypes, a handful of support exemplars recorded on-device,
//! and last-layer adjustments (contrastive margin, open-set rejection
//! threshold). [`PersonalDelta`] captures exactly that — a compact,
//! serializable overlay a serving runtime applies to a *shared* base
//! classifier at serve time instead of forking the whole backbone per
//! user. A fleet keeps one refcounted base per model version and one
//! delta per user; resident bytes per user shrink from the full
//! model-plus-support footprint to the delta alone.
//!
//! Two properties the serving tier depends on (both tested here and
//! property-tested in `magneto-fleet`):
//!
//! * **Exact revert** — [`PersonalDelta::apply`] returns an
//!   [`AppliedDelta`] undo record; [`AppliedDelta::revert`] restores the
//!   classifier to a byte-identical pre-apply state. A delta therefore
//!   only *upserts* prototypes (replace-in-place or append) — removal
//!   would shift sibling prototype indices and break exactness.
//! * **Deterministic serialization** — [`PersonalDelta::to_bytes`] /
//!   [`PersonalDelta::from_bytes`] round-trip every `f32` exactly
//!   (shortest-round-trip decimal encoding, ordered maps), so a delta
//!   paged out to storage and rehydrated later rebuilds a bit-identical
//!   overlay and serves bit-identical predictions.

use crate::error::CoreError;
use crate::ncm::NcmClassifier;
use crate::version::ModelVersion;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A compact per-user overlay on a shared base model: calibrated
/// prototypes, private support exemplars, and last-layer adjustments.
/// Everything a personalized session owns that the shared base does not.
///
/// Maps are `BTreeMap`s so iteration (and therefore prototype append
/// order under [`apply`](Self::apply), and serialized bytes) is
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PersonalDelta {
    /// Per-class prototype overrides/additions, in the base embedding
    /// space.
    prototypes: BTreeMap<String, Vec<f32>>,
    /// Per-class support-set additions/replacements (feature rows), kept
    /// so a future re-calibration or export has the user's exemplars.
    support: BTreeMap<String, Vec<Vec<f32>>>,
    /// Contrastive-margin adjustment, if the user tuned it.
    margin: Option<f32>,
    /// Open-set rejection threshold, if calibrated for this user.
    threshold: Option<f32>,
    /// The base-model version this delta was calibrated against. A
    /// prototype lives in its base's embedding space, so a delta pinned
    /// to version N must be replayed (not blindly re-applied) when the
    /// base moves to N+1. Skipped when unset so pre-versioning deltas
    /// serialize byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    base_version: Option<ModelVersion>,
}

/// Undo record returned by [`PersonalDelta::apply`]: everything needed
/// to restore the classifier to its exact pre-apply state.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedDelta {
    /// Prototypes that existed before and were replaced: `(label,
    /// original prototype)`.
    replaced: Vec<(String, Vec<f32>)>,
    /// Labels the apply appended (they did not exist before).
    added: Vec<String>,
}

impl PersonalDelta {
    /// An empty delta (serves identically to the bare base model).
    pub fn new() -> Self {
        PersonalDelta::default()
    }

    /// `true` when applying this delta would change nothing.
    pub fn is_empty(&self) -> bool {
        self.prototypes.is_empty()
            && self.support.is_empty()
            && self.margin.is_none()
            && self.threshold.is_none()
    }

    /// Set (or replace) this user's prototype for `label`.
    pub fn set_prototype(&mut self, label: &str, prototype: Vec<f32>) {
        self.prototypes.insert(label.to_string(), prototype);
    }

    /// This user's prototype override for `label`, if any.
    pub fn prototype(&self, label: &str) -> Option<&[f32]> {
        self.prototypes.get(label).map(Vec::as_slice)
    }

    /// Labels with prototype overrides, in deterministic order.
    pub fn prototype_labels(&self) -> impl Iterator<Item = &str> {
        self.prototypes.keys().map(String::as_str)
    }

    /// Replace this user's support exemplars for `label`.
    pub fn set_support(&mut self, label: &str, rows: Vec<Vec<f32>>) {
        self.support.insert(label.to_string(), rows);
    }

    /// This user's support exemplars for `label`, if any.
    pub fn support(&self, label: &str) -> Option<&[Vec<f32>]> {
        self.support.get(label).map(Vec::as_slice)
    }

    /// Labels with support exemplars, in deterministic order (the
    /// overlay builder walks these to index each class's exemplars).
    pub fn support_labels(&self) -> impl Iterator<Item = &str> {
        self.support.keys().map(String::as_str)
    }

    /// Set the per-user contrastive-margin adjustment.
    pub fn set_margin(&mut self, margin: f32) {
        self.margin = Some(margin);
    }

    /// The per-user margin adjustment, if set.
    pub fn margin(&self) -> Option<f32> {
        self.margin
    }

    /// Set the per-user open-set rejection threshold.
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = Some(threshold);
    }

    /// The per-user rejection threshold, if set.
    pub fn threshold(&self) -> Option<f32> {
        self.threshold
    }

    /// Pin this delta to the base-model version it was calibrated
    /// against.
    pub fn pin_base(&mut self, version: ModelVersion) {
        self.base_version = Some(version);
    }

    /// The base version this delta is pinned to, if any. `None` means
    /// the delta predates versioning (treat as v0).
    pub fn base_version(&self) -> Option<ModelVersion> {
        self.base_version
    }

    /// Approximate bytes this delta holds resident (payload floats plus
    /// label strings — the quantity a tiered session store budgets).
    pub fn resident_bytes(&self) -> usize {
        let protos: usize = self
            .prototypes
            .iter()
            .map(|(l, p)| l.len() + p.len() * 4)
            .sum();
        let support: usize = self
            .support
            .iter()
            .map(|(l, rows)| l.len() + rows.iter().map(|r| r.len() * 4).sum::<usize>())
            .sum();
        protos + support + 8
    }

    /// Serialize for paging out to storage. JSON with shortest
    /// round-trip float encoding: decoding yields a bit-identical delta
    /// (tested), so rehydrated sessions serve bit-identical predictions.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("delta serialization cannot fail")
    }

    /// Decode a delta written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        serde_json::from_slice(bytes)
            .map_err(|e| CoreError::InvalidBundle(format!("personal delta: {e}")))
    }

    /// Apply this delta's prototype overrides to `ncm`, returning the
    /// undo record that restores the exact pre-apply state.
    ///
    /// Transactional: every prototype is dimension-checked against the
    /// classifier *before* any mutation, so a failed apply leaves `ncm`
    /// untouched. New labels are appended in deterministic (sorted)
    /// order, so the same delta applied to the same base always yields
    /// the same classifier — including across a page-out/rehydrate
    /// cycle.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on any prototype dimension mismatch
    /// (nothing applied).
    pub fn apply(&self, ncm: &mut NcmClassifier) -> Result<AppliedDelta> {
        let dim = ncm.dim();
        for (label, proto) in &self.prototypes {
            if proto.len() != dim {
                return Err(CoreError::InvalidConfig(format!(
                    "delta prototype `{label}` dim {} != classifier dim {dim}",
                    proto.len()
                )));
            }
        }
        let mut applied = AppliedDelta {
            replaced: Vec::new(),
            added: Vec::new(),
        };
        for (label, proto) in &self.prototypes {
            match ncm.prototype(label) {
                Some(old) => applied.replaced.push((label.clone(), old.to_vec())),
                None => applied.added.push(label.clone()),
            }
            ncm.upsert_prototype(label, proto.clone())
                .expect("dims pre-validated");
        }
        Ok(applied)
    }
}

impl AppliedDelta {
    /// Restore `ncm` to its exact pre-apply state. Valid only against
    /// the same classifier the apply mutated, with no other mutation in
    /// between (the contract a serving runtime upholds by construction:
    /// overlays are rebuilt from the base, never edited in place).
    pub fn revert(self, ncm: &mut NcmClassifier) {
        // Added labels were appended after every pre-existing prototype;
        // removing them back-to-front pops from the tail and never
        // shifts a surviving index.
        for label in self.added.iter().rev() {
            ncm.remove(label);
        }
        for (label, original) in self.replaced {
            ncm.upsert_prototype(&label, original)
                .expect("original prototype dims are valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::vector::DistanceMetric;

    fn base_ncm() -> NcmClassifier {
        NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![
                ("walk".into(), vec![0.25, -1.5, 3.0]),
                ("run".into(), vec![10.0, 0.125, -0.75]),
            ],
        )
        .unwrap()
    }

    fn ncm_bytes(ncm: &NcmClassifier) -> Vec<u8> {
        serde_json::to_vec(ncm).unwrap()
    }

    #[test]
    fn apply_then_revert_is_byte_identical() {
        let mut ncm = base_ncm();
        let before = ncm_bytes(&ncm);

        let mut delta = PersonalDelta::new();
        delta.set_prototype("walk", vec![0.1, 0.2, 0.3]); // replace
        delta.set_prototype("zumba", vec![7.0, 8.0, 9.0]); // append
        delta.set_prototype("aerial_yoga", vec![1.0, 2.0, 3.0]); // append
        let undo = delta.apply(&mut ncm).unwrap();
        assert_eq!(ncm.num_classes(), 4);
        assert_eq!(ncm.prototype("walk").unwrap(), &[0.1, 0.2, 0.3]);
        assert_ne!(ncm_bytes(&ncm), before);

        undo.revert(&mut ncm);
        assert_eq!(ncm_bytes(&ncm), before, "revert not byte-identical");
    }

    #[test]
    fn apply_is_transactional_on_dim_mismatch() {
        let mut ncm = base_ncm();
        let before = ncm_bytes(&ncm);
        let mut delta = PersonalDelta::new();
        delta.set_prototype("good", vec![1.0, 2.0, 3.0]);
        delta.set_prototype("bad", vec![1.0]); // wrong dim
        assert!(delta.apply(&mut ncm).is_err());
        assert_eq!(ncm_bytes(&ncm), before, "failed apply mutated the ncm");
    }

    #[test]
    fn apply_order_is_deterministic() {
        // Two deltas with the same content but different insertion order
        // produce identical classifiers (BTreeMap ordering).
        let mut a = PersonalDelta::new();
        a.set_prototype("b_cls", vec![1.0, 0.0, 0.0]);
        a.set_prototype("a_cls", vec![0.0, 1.0, 0.0]);
        let mut b = PersonalDelta::new();
        b.set_prototype("a_cls", vec![0.0, 1.0, 0.0]);
        b.set_prototype("b_cls", vec![1.0, 0.0, 0.0]);

        let mut ncm_a = base_ncm();
        let mut ncm_b = base_ncm();
        a.apply(&mut ncm_a).unwrap();
        b.apply(&mut ncm_b).unwrap();
        assert_eq!(ncm_bytes(&ncm_a), ncm_bytes(&ncm_b));
    }

    #[test]
    fn bytes_roundtrip_is_exact() {
        let mut delta = PersonalDelta::new();
        delta.set_prototype("walk", vec![0.1, f32::MIN_POSITIVE, -3.25e-7]);
        delta.set_support("walk", vec![vec![1.0e-30, 2.5], vec![0.3, 0.7]]);
        delta.set_margin(1.125);
        delta.set_threshold(0.004_217);
        let back = PersonalDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(back, delta);
        // Bit-exactness of every float, not just PartialEq.
        assert_eq!(
            back.prototype("walk").unwrap()[1].to_bits(),
            f32::MIN_POSITIVE.to_bits()
        );
        assert_eq!(back.to_bytes(), delta.to_bytes());
    }

    #[test]
    fn unpinned_delta_bytes_are_unchanged() {
        // Serialized bytes of a delta without a version pin must stay
        // identical to the pre-versioning layout, so paged-out legacy
        // spool files keep round-tripping byte-exactly.
        let mut delta = PersonalDelta::new();
        delta.set_prototype("walk", vec![1.0, 2.0]);
        delta.set_margin(0.5);
        let json = String::from_utf8(delta.to_bytes()).unwrap();
        assert!(!json.contains("base_version"), "{json}");
        let back = PersonalDelta::from_bytes(delta.to_bytes().as_slice()).unwrap();
        assert_eq!(back.base_version(), None);
        assert_eq!(back.to_bytes(), delta.to_bytes());
    }

    #[test]
    fn pinned_delta_roundtrips_its_base_version() {
        let mut delta = PersonalDelta::new();
        delta.set_prototype("walk", vec![1.0, 2.0]);
        delta.pin_base(ModelVersion(3));
        let back = PersonalDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(back.base_version(), Some(ModelVersion(3)));
        assert_eq!(back.to_bytes(), delta.to_bytes());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(PersonalDelta::from_bytes(b"not json").is_err());
        assert!(PersonalDelta::from_bytes(&[]).is_err());
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let delta = PersonalDelta::new();
        assert!(delta.is_empty());
        let mut ncm = base_ncm();
        let before = ncm_bytes(&ncm);
        let undo = delta.apply(&mut ncm).unwrap();
        assert_eq!(ncm_bytes(&ncm), before);
        undo.revert(&mut ncm);
        assert_eq!(ncm_bytes(&ncm), before);
    }

    #[test]
    fn accessors_and_resident_bytes() {
        let mut delta = PersonalDelta::new();
        assert!(delta.prototype("x").is_none());
        assert!(delta.support("x").is_none());
        assert_eq!(delta.margin(), None);
        assert_eq!(delta.threshold(), None);

        delta.set_prototype("x", vec![1.0; 8]);
        delta.set_support("x", vec![vec![0.0; 80]; 3]);
        delta.set_margin(2.0);
        delta.set_threshold(0.5);
        assert!(!delta.is_empty());
        assert_eq!(delta.prototype_labels().collect::<Vec<_>>(), ["x"]);
        assert_eq!(delta.support("x").unwrap().len(), 3);
        // 8 proto floats + 240 support floats ≈ 1 KB — and crucially two
        // orders of magnitude under a full resident model.
        let bytes = delta.resident_bytes();
        assert!(bytes >= 8 * 4 + 240 * 4, "{bytes}");
        assert!(bytes < 2048, "{bytes}");
    }
}
