//! Dynamic class registry.
//!
//! MAGNETO's class set is *open*: the device starts with the five
//! pre-trained activities and grows as the user teaches it new ones
//! (§3.3 "the learning process can be repeated to accommodate the
//! addition of multiple activities"). [`LabelRegistry`] maps stable label
//! strings to dense integer ids (insertion-ordered) so the learning code
//! can work with integer classes while the API surface stays string-based.

use serde::{Deserialize, Serialize};

/// Bidirectional label ↔ dense-id registry with stable insertion order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LabelRegistry {
    labels: Vec<String>,
}

impl LabelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of labels (first occurrence wins).
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut reg = LabelRegistry::new();
        for l in labels {
            reg.get_or_insert(l.as_ref());
        }
        reg
    }

    /// Id for `label`, inserting it if new.
    pub fn get_or_insert(&mut self, label: &str) -> usize {
        match self.id_of(label) {
            Some(id) => id,
            None => {
                self.labels.push(label.to_string());
                self.labels.len() - 1
            }
        }
    }

    /// Id of an existing label.
    pub fn id_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Label for an id.
    pub fn label_of(&self, id: usize) -> Option<&str> {
        self.labels.get(id).map(String::as_str)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All labels in id order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Whether the registry knows `label`.
    pub fn contains(&self, label: &str) -> bool {
        self.id_of(label).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_ids() {
        let mut reg = LabelRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.get_or_insert("walk"), 0);
        assert_eq!(reg.get_or_insert("run"), 1);
        assert_eq!(reg.get_or_insert("walk"), 0); // idempotent
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.label_of(1), Some("run"));
        assert_eq!(reg.label_of(2), None);
        assert_eq!(reg.id_of("run"), Some(1));
        assert_eq!(reg.id_of("swim"), None);
        assert!(reg.contains("walk"));
        assert!(!reg.contains("swim"));
    }

    #[test]
    fn from_labels_dedups() {
        let reg = LabelRegistry::from_labels(["a", "b", "a", "c"]);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.labels(), &["a", "b", "c"]);
    }

    #[test]
    fn growth_preserves_existing_ids() {
        // The crucial incremental-learning property: adding `gesture_hi`
        // must not renumber the base classes.
        let mut reg = LabelRegistry::from_labels(["drive", "e_scooter", "run", "still", "walk"]);
        let before: Vec<usize> = reg
            .labels()
            .to_vec()
            .iter()
            .map(|l| reg.id_of(l).unwrap())
            .collect();
        let new_id = reg.get_or_insert("gesture_hi");
        assert_eq!(new_id, 5);
        for (i, l) in ["drive", "e_scooter", "run", "still", "walk"].iter().enumerate() {
            assert_eq!(reg.id_of(l), Some(before[i]));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let reg = LabelRegistry::from_labels(["x", "y"]);
        let json = serde_json::to_string(&reg).unwrap();
        let back: LabelRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(reg, back);
    }
}
