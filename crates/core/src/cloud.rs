//! Cloud Initialization (the paper's offline step, §3.2).
//!
//! "To empower MAGNETO with the best possible initial model … A neural
//! network is built from the pre-processed data, targeting the prediction
//! of existing activities, embedded in the system as an initialization
//! step." The initializer:
//!
//! 1. fits the pre-processing function's normaliser over the corpus;
//! 2. extracts 80-feature vectors for every window;
//! 3. trains the Siamese embedding network with contrastive loss;
//! 4. selects a budgeted support set per class;
//! 5. packages everything into an [`EdgeBundle`].
//!
//! No user data is involved: the corpus is the (simulated) open
//! collection-campaign data.

use crate::bundle::EdgeBundle;
use crate::error::CoreError;
use crate::label::LabelRegistry;
use crate::support_set::{SelectionStrategy, SupportSet};
use crate::Result;
use magneto_dsp::{PipelineConfig, PreprocessingPipeline};
use magneto_nn::trainer::{train_siamese, TrainerConfig, TrainingReport};
use magneto_nn::{Mlp, SiameseNetwork};
use magneto_sensors::SensorDataset;
use magneto_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Cloud-side configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudConfig {
    /// Backbone layer widths (input first). The paper's default is
    /// `[80, 1024, 512, 128, 64, 128]`.
    pub backbone_dims: Vec<usize>,
    /// Contrastive margin.
    pub margin: f32,
    /// Pre-training hyper-parameters.
    pub trainer: TrainerConfig,
    /// Pre-processing configuration.
    pub pipeline: PipelineConfig,
    /// Support-set budget per class (paper: 200).
    pub support_budget: usize,
    /// Exemplar selection strategy.
    pub selection: SelectionStrategy,
    /// Master seed for weight init and selection.
    pub seed: u64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            backbone_dims: magneto_nn::PAPER_BACKBONE.to_vec(),
            margin: 1.0,
            trainer: TrainerConfig::default(),
            pipeline: PipelineConfig::default(),
            support_budget: 200,
            selection: SelectionStrategy::Herding,
            seed: 0,
        }
    }
}

impl CloudConfig {
    /// A small configuration for tests and quick demos: narrow backbone,
    /// few epochs, small support budget. Same code paths, seconds not
    /// minutes.
    pub fn fast_demo() -> Self {
        CloudConfig {
            backbone_dims: vec![80, 64, 32],
            margin: 1.0,
            trainer: TrainerConfig {
                epochs: 12,
                pairs_per_epoch: 512,
                batch_pairs: 64,
                learning_rate: 2e-3,
                ..TrainerConfig::default()
            },
            pipeline: PipelineConfig::default(),
            support_budget: 20,
            selection: SelectionStrategy::Herding,
            seed: 0,
        }
    }
}

/// Outcome of Cloud initialisation.
#[derive(Debug, Clone)]
pub struct CloudInitReport {
    /// Training history.
    pub training: TrainingReport,
    /// Windows used for pre-training.
    pub windows_used: usize,
    /// Classes learned.
    pub classes: Vec<String>,
}

/// The Cloud initialiser.
#[derive(Debug, Clone)]
pub struct CloudInitializer {
    config: CloudConfig,
}

impl CloudInitializer {
    /// Create with a configuration.
    pub fn new(config: CloudConfig) -> Self {
        CloudInitializer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CloudConfig {
        &self.config
    }

    /// Run the full offline step over a labelled corpus, producing the
    /// deployable bundle and a training report.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] for an empty corpus; training and
    /// pre-processing errors are propagated.
    pub fn pretrain(&self, corpus: &SensorDataset) -> Result<(EdgeBundle, CloudInitReport)> {
        if corpus.is_empty() {
            return Err(CoreError::InsufficientData("empty pre-training corpus".into()));
        }

        // 1. Fit the pre-processing function.
        let mut pipeline = PreprocessingPipeline::new(self.config.pipeline);
        let window_refs: Vec<&[Vec<f32>]> = corpus
            .windows
            .iter()
            .map(|w| w.channels.as_slice())
            .collect();
        pipeline.fit_normalizer(&window_refs)?;

        // 2. Featurise the corpus.
        let registry = LabelRegistry::from_labels(corpus.classes());
        let (features, labels) = featurize(&pipeline, corpus, &registry)?;

        // 3. Train the Siamese embedding network.
        let mut rng = SeededRng::new(self.config.seed);
        let backbone = Mlp::new(&self.config.backbone_dims, &mut rng.split("weights"))?;
        let mut model = SiameseNetwork::new(backbone, self.config.margin);
        let training = train_siamese(&mut model, &features, &labels, None, &self.config.trainer)?;

        // 4. Select the support set.
        let mut support_set = SupportSet::new(self.config.support_budget, self.config.selection);
        let mut selection_rng = rng.split("selection");
        for (id, label) in registry.labels().iter().enumerate() {
            let class_rows: Vec<Vec<f32>> = labels
                .iter()
                .zip(0..features.rows())
                .filter(|(&l, _)| l == id)
                .map(|(_, r)| features.row(r).to_vec())
                .collect();
            support_set.set_class(label, &class_rows, &mut selection_rng)?;
        }

        // 5. Package.
        let bundle = EdgeBundle {
            pipeline,
            model: model.into(),
            support_set,
            registry: registry.clone(),
            lineage: None,
        };
        bundle.validate()?;
        Ok((
            bundle,
            CloudInitReport {
                training,
                windows_used: corpus.len(),
                classes: registry.labels().to_vec(),
            },
        ))
    }
}

/// Run every window of a dataset through the pipeline, producing a
/// feature matrix and integer labels. Shared by Cloud initialisation and
/// all evaluation harnesses.
///
/// # Errors
/// Pre-processing errors and unknown labels are propagated.
pub fn featurize(
    pipeline: &PreprocessingPipeline,
    dataset: &SensorDataset,
    registry: &LabelRegistry,
) -> Result<(Matrix, Vec<usize>)> {
    let mut rows = Vec::with_capacity(dataset.len());
    let mut labels = Vec::with_capacity(dataset.len());
    for w in &dataset.windows {
        let id = registry
            .id_of(&w.label)
            .ok_or_else(|| CoreError::UnknownClass(w.label.clone()))?;
        rows.push(pipeline.process(&w.channels)?);
        labels.push(id);
    }
    Ok((Matrix::from_rows(&rows)?, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_sensors::GeneratorConfig;

    fn tiny_corpus(seed: u64) -> SensorDataset {
        SensorDataset::generate(&GeneratorConfig::tiny(), seed)
    }

    #[test]
    fn pretrain_produces_consistent_bundle() {
        let corpus = tiny_corpus(1);
        let init = CloudInitializer::new(CloudConfig::fast_demo());
        let (bundle, report) = init.pretrain(&corpus).unwrap();
        assert!(bundle.validate().is_ok());
        assert_eq!(report.windows_used, corpus.len());
        assert_eq!(
            report.classes,
            vec!["drive", "e_scooter", "run", "still", "walk"]
        );
        assert_eq!(bundle.support_set.num_classes(), 5);
        assert_eq!(bundle.registry.len(), 5);
        assert_eq!(bundle.model.input_dim(), 80);
        // The fast-demo run must actually have learned something.
        assert!(report.training.epochs_run > 0);
        assert!(report.training.final_loss().unwrap() < report.training.epoch_losses[0]);
    }

    #[test]
    fn support_budget_respected() {
        let corpus = tiny_corpus(2);
        let mut config = CloudConfig::fast_demo();
        config.support_budget = 4;
        config.trainer.epochs = 2;
        let (bundle, _) = CloudInitializer::new(config).pretrain(&corpus).unwrap();
        for label in bundle.support_set.classes() {
            assert!(bundle.support_set.samples(label).unwrap().len() <= 4);
        }
    }

    #[test]
    fn empty_corpus_rejected() {
        let init = CloudInitializer::new(CloudConfig::fast_demo());
        assert!(matches!(
            init.pretrain(&SensorDataset::default()),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn featurize_shapes_and_unknown_class() {
        let corpus = tiny_corpus(3);
        let mut pipeline = PreprocessingPipeline::new(PipelineConfig::default());
        let refs: Vec<&[Vec<f32>]> = corpus
            .windows
            .iter()
            .map(|w| w.channels.as_slice())
            .collect();
        pipeline.fit_normalizer(&refs).unwrap();
        let registry = LabelRegistry::from_labels(corpus.classes());
        let (features, labels) = featurize(&pipeline, &corpus, &registry).unwrap();
        assert_eq!(features.shape(), (corpus.len(), 80));
        assert_eq!(labels.len(), corpus.len());

        let incomplete = LabelRegistry::from_labels(["walk"]);
        assert!(matches!(
            featurize(&pipeline, &corpus, &incomplete),
            Err(CoreError::UnknownClass(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = tiny_corpus(4);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 3;
        let (b1, _) = CloudInitializer::new(cfg.clone()).pretrain(&corpus).unwrap();
        let (b2, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = CloudConfig::default();
        assert_eq!(cfg.backbone_dims, vec![80, 1024, 512, 128, 64, 128]);
        assert_eq!(cfg.support_budget, 200);
    }
}
