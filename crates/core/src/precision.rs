//! Precision-polymorphic residency: which numeric format lives on the
//! device.
//!
//! The paper ships a < 5 MB bundle to the Edge (§4.2) and the earlier
//! PRs already *stored* the backbone as int8 — but deploy always
//! rehydrated to f32, so the resident footprint was the full f32 model
//! again. This module closes that gap: [`ResidentModel`] and
//! [`ResidentSupport`] keep whatever the deploy policy chose — f32 or
//! int8 — resident, and every consumer (batch embedder, NCM prototype
//! construction, streaming inference, the fleet scheduler) works against
//! them instead of a concrete network type.
//!
//! Design rules:
//!
//! * **One embedding space per device.** NCM prototypes are computed
//!   through the *resident* model, so prototypes, rejection thresholds
//!   and query embeddings always share the same (possibly quantised)
//!   space. Prototypes themselves stay f32 — a handful of 128-float
//!   vectors is noise next to the weights.
//! * **Training stays f32.** Gradients need the dynamic range; int8
//!   devices rehydrate a training copy, run the normal update, and
//!   re-quantise on commit (see `ModelState::update`).

use crate::error::CoreError;
use crate::label::LabelRegistry;
use crate::support_set::{SelectionStrategy, SupportSet};
use crate::Result;
use magneto_nn::{QuantizedSiamese, SiameseNetwork};
use magneto_tensor::{Matrix, SeededRng, Workspace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use magneto_tensor::Precision;

/// A deployed model at its resident precision.
///
/// The `Int8` arm holds the quantised weights *only* — constructing it
/// never materialises f32 weights, which is what keeps an int8 deploy at
/// roughly a quarter of the f32 footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResidentModel {
    /// Full-precision network (the pre-refactor behaviour).
    F32(SiameseNetwork),
    /// Int8 weights with per-output-channel scales; inference runs on
    /// the i8×i8→i32 kernels directly.
    Int8(QuantizedSiamese),
}

impl From<SiameseNetwork> for ResidentModel {
    fn from(net: SiameseNetwork) -> Self {
        ResidentModel::F32(net)
    }
}

impl From<QuantizedSiamese> for ResidentModel {
    fn from(net: QuantizedSiamese) -> Self {
        ResidentModel::Int8(net)
    }
}

impl ResidentModel {
    /// The precision this model executes at.
    pub fn precision(&self) -> Precision {
        match self {
            ResidentModel::F32(_) => Precision::F32,
            ResidentModel::Int8(_) => Precision::Int8,
        }
    }

    /// Contrastive margin carried by either arm.
    pub fn margin(&self) -> f32 {
        match self {
            ResidentModel::F32(n) => n.margin,
            ResidentModel::Int8(q) => q.margin,
        }
    }

    /// Set the contrastive margin.
    pub fn set_margin(&mut self, margin: f32) {
        match self {
            ResidentModel::F32(n) => n.margin = margin,
            ResidentModel::Int8(q) => q.margin = margin,
        }
    }

    /// Layer widths, input first.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            ResidentModel::F32(n) => n.backbone().dims(),
            ResidentModel::Int8(q) => q.backbone().dims(),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        match self {
            ResidentModel::F32(n) => n.backbone().input_dim(),
            ResidentModel::Int8(q) => q.backbone().input_dim(),
        }
    }

    /// Embedding (output) dimension.
    pub fn output_dim(&self) -> usize {
        match self {
            ResidentModel::F32(n) => n.backbone().output_dim(),
            ResidentModel::Int8(q) => q.backbone().output_dim(),
        }
    }

    /// Total parameters (weights + biases), identical across precisions.
    pub fn param_count(&self) -> usize {
        match self {
            ResidentModel::F32(n) => n.backbone().param_count(),
            ResidentModel::Int8(q) => q.backbone().param_count(),
        }
    }

    /// Bytes needed to keep the parameters resident at this precision.
    pub fn resident_bytes(&self) -> usize {
        match self {
            ResidentModel::F32(n) => n.backbone().param_bytes(),
            ResidentModel::Int8(q) => q.stored_bytes(),
        }
    }

    /// Embed a batch of feature rows (allocating shim).
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed(&self, features: &Matrix) -> Result<Matrix> {
        match self {
            ResidentModel::F32(n) => n.embed(features).map_err(CoreError::Nn),
            ResidentModel::Int8(q) => q.embed(features).map_err(CoreError::Nn),
        }
    }

    /// Embed a batch into a caller-owned output, drawing scratch from
    /// `ws` — the allocation-free path both precisions run on.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_into(&self, features: &Matrix, out: &mut Matrix, ws: &mut Workspace) -> Result<()> {
        match self {
            ResidentModel::F32(n) => n.embed_into(features, out, ws).map_err(CoreError::Nn),
            ResidentModel::Int8(q) => q.embed_into(features, out, ws).map_err(CoreError::Nn),
        }
    }

    /// Embed one feature vector.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_one(&self, features: &[f32]) -> Result<Vec<f32>> {
        match self {
            ResidentModel::F32(n) => n.embed_one(features).map_err(CoreError::Nn),
            ResidentModel::Int8(q) => q.embed_one(features).map_err(CoreError::Nn),
        }
    }

    /// An f32 copy of the network: identity for the `F32` arm, a lossy
    /// dequantisation for `Int8` (used when training needs gradients).
    ///
    /// # Errors
    /// Internal inconsistency in the quantised weights.
    pub fn to_f32(&self) -> Result<SiameseNetwork> {
        match self {
            ResidentModel::F32(n) => Ok(n.clone()),
            ResidentModel::Int8(q) => q.dequantize().map_err(CoreError::Nn),
        }
    }

    /// `true` when every float parameter of the resident representation
    /// is finite — the post-training weight check of the transactional
    /// update path.
    pub fn all_finite(&self) -> bool {
        match self {
            ResidentModel::F32(n) => n.margin.is_finite() && n.backbone().all_finite(),
            ResidentModel::Int8(q) => q.all_finite(),
        }
    }

    /// Convert to the requested precision. Same-precision conversions
    /// are the identity (no round trip through the other format).
    ///
    /// # Errors
    /// Degenerate weights on quantise, internal inconsistency on
    /// dequantise.
    pub fn into_precision(self, precision: Precision) -> Result<Self> {
        match (self, precision) {
            (ResidentModel::F32(n), Precision::Int8) => Ok(ResidentModel::Int8(
                QuantizedSiamese::quantize(&n).map_err(CoreError::Nn)?,
            )),
            (ResidentModel::Int8(q), Precision::F32) => {
                Ok(ResidentModel::F32(q.dequantize().map_err(CoreError::Nn)?))
            }
            (same, _) => Ok(same),
        }
    }
}

/// One class's exemplars quantised to int8, one symmetric scale per row.
///
/// Per-row scales (rather than one per class) keep the dequantisation
/// error of each exemplar bounded by half an int8 step of *its own*
/// magnitude, so an outlier row cannot wash out the resolution of the
/// others.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuantClass {
    dim: usize,
    /// Row-major `n × dim` int8 payload.
    data: Vec<i8>,
    /// One scale per row.
    scales: Vec<f32>,
}

impl QuantClass {
    fn quantize_rows(rows: &[Vec<f32>], dim: usize) -> Self {
        let mut data = Vec::with_capacity(rows.len() * dim);
        let mut scales = Vec::with_capacity(rows.len());
        for row in rows {
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            scales.push(scale);
            data.extend(row.iter().map(|&v| {
                let q = (v / scale).round();
                q.clamp(-127.0, 127.0) as i8
            }));
        }
        QuantClass { dim, data, scales }
    }

    fn len(&self) -> usize {
        self.scales.len()
    }

    fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    fn dequantize_row_into(&self, row: usize, out: &mut [f32]) {
        let scale = self.scales[row];
        let src = &self.data[row * self.dim..(row + 1) * self.dim];
        for (o, &q) in out.iter_mut().zip(src.iter()) {
            *o = f32::from(q) * scale;
        }
    }

    fn dequantize_rows(&self) -> Vec<Vec<f32>> {
        (0..self.len())
            .map(|r| {
                let mut row = vec![0.0f32; self.dim];
                self.dequantize_row_into(r, &mut row);
                row
            })
            .collect()
    }
}

/// The support set quantised to int8 — the second half of the "no f32
/// blow-up" budget. Selection semantics (budget, strategy) are retained;
/// replacing a class routes the candidates through the same f32
/// selection logic as [`SupportSet`] and quantises the survivors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSupportSet {
    budget_per_class: usize,
    strategy: SelectionStrategy,
    classes: BTreeMap<String, QuantClass>,
}

impl QuantizedSupportSet {
    /// Quantise every class of an f32 support set.
    pub fn quantize(set: &SupportSet) -> Self {
        let mut classes = BTreeMap::new();
        for label in set.classes() {
            let rows = set.samples(label).unwrap_or(&[]);
            let dim = rows.first().map_or(0, Vec::len);
            classes.insert(label.to_string(), QuantClass::quantize_rows(rows, dim));
        }
        QuantizedSupportSet {
            budget_per_class: set.budget(),
            strategy: set.strategy(),
            classes,
        }
    }

    /// Reconstruct an f32 support set (lossy round trip through int8).
    ///
    /// # Errors
    /// Never in practice — stored classes are non-empty by construction;
    /// fallible for uniformity with the selection path.
    pub fn to_f32(&self) -> Result<SupportSet> {
        let mut set = SupportSet::new(self.budget_per_class, self.strategy);
        let mut rng = SeededRng::new(0);
        for (label, class) in &self.classes {
            // Stored rows never exceed the budget, so selection is the
            // identity and the rng is never consulted.
            set.set_class(label, &class.dequantize_rows(), &mut rng)?;
        }
        Ok(set)
    }

    /// Budget per class.
    pub fn budget(&self) -> usize {
        self.budget_per_class
    }

    /// Active selection strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Class labels currently stored (sorted).
    pub fn classes(&self) -> Vec<&str> {
        self.classes.keys().map(String::as_str).collect()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Exemplars stored for `label`, dequantised into owned rows.
    pub fn samples(&self, label: &str) -> Option<Vec<Vec<f32>>> {
        self.classes.get(label).map(QuantClass::dequantize_rows)
    }

    /// Total exemplars across classes.
    pub fn total_samples(&self) -> usize {
        self.classes.values().map(QuantClass::len).sum()
    }

    /// Resident bytes: i8 payload plus per-row f32 scales.
    pub fn bytes(&self) -> usize {
        self.classes.values().map(QuantClass::bytes).sum()
    }

    /// Replace the exemplars of a class with a budget-sized selection
    /// from `samples`, then quantise the selection.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when `samples` is empty.
    pub fn set_class(
        &mut self,
        label: &str,
        samples: &[Vec<f32>],
        rng: &mut SeededRng,
    ) -> Result<()> {
        // Route through the f32 selection machinery so strategy
        // semantics (herding, reservoir) are byte-for-byte shared.
        let mut staging = SupportSet::new(self.budget_per_class, self.strategy);
        staging.set_class(label, samples, rng)?;
        let rows = staging.samples(label).expect("just inserted");
        let dim = rows.first().map_or(0, Vec::len);
        self.classes
            .insert(label.to_string(), QuantClass::quantize_rows(rows, dim));
        Ok(())
    }

    /// Remove a class entirely.
    pub fn remove_class(&mut self, label: &str) -> bool {
        self.classes.remove(label).is_some()
    }

    /// Stack the (dequantised) exemplars of one class into a
    /// caller-provided matrix — the staging step for batched prototype
    /// construction, mirroring [`SupportSet::class_features_into`].
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] for an unstored label,
    /// [`CoreError::InsufficientData`] for a class with no exemplars.
    pub fn class_features_into(&self, label: &str, out: &mut Matrix) -> Result<()> {
        let class = self
            .classes
            .get(label)
            .ok_or_else(|| CoreError::UnknownClass(label.to_string()))?;
        if class.len() == 0 {
            return Err(CoreError::InsufficientData(format!(
                "class `{label}` is empty"
            )));
        }
        out.resize(class.len(), class.dim);
        for r in 0..class.len() {
            class.dequantize_row_into(r, out.row_mut(r));
        }
        Ok(())
    }

    /// Flatten into a training `(features, labels)` pair using `registry`
    /// ids, dequantising rows on the way out.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] if a stored class is missing from the
    /// registry, [`CoreError::InsufficientData`] on an empty store.
    pub fn training_data(&self, registry: &LabelRegistry) -> Result<(Matrix, Vec<usize>)> {
        let total = self.total_samples();
        let dim = self
            .classes
            .values()
            .find(|c| c.len() > 0)
            .map(|c| c.dim)
            .ok_or_else(|| CoreError::InsufficientData("support set is empty".into()))?;
        let mut features = Matrix::default();
        features.resize(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut r = 0;
        for (label, class) in &self.classes {
            let id = registry
                .id_of(label)
                .ok_or_else(|| CoreError::UnknownClass(label.clone()))?;
            for row in 0..class.len() {
                class.dequantize_row_into(row, features.row_mut(r));
                labels.push(id);
                r += 1;
            }
        }
        Ok((features, labels))
    }
}

/// The device-resident support set at its deployed precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResidentSupport {
    /// Full-precision exemplars (the pre-refactor behaviour).
    F32(SupportSet),
    /// Int8 exemplars with per-row scales.
    Int8(QuantizedSupportSet),
}

impl From<SupportSet> for ResidentSupport {
    fn from(set: SupportSet) -> Self {
        ResidentSupport::F32(set)
    }
}

impl From<QuantizedSupportSet> for ResidentSupport {
    fn from(set: QuantizedSupportSet) -> Self {
        ResidentSupport::Int8(set)
    }
}

impl ResidentSupport {
    /// The precision exemplars are stored at.
    pub fn precision(&self) -> Precision {
        match self {
            ResidentSupport::F32(_) => Precision::F32,
            ResidentSupport::Int8(_) => Precision::Int8,
        }
    }

    /// Budget per class.
    pub fn budget(&self) -> usize {
        match self {
            ResidentSupport::F32(s) => s.budget(),
            ResidentSupport::Int8(s) => s.budget(),
        }
    }

    /// Active selection strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        match self {
            ResidentSupport::F32(s) => s.strategy(),
            ResidentSupport::Int8(s) => s.strategy(),
        }
    }

    /// Class labels currently stored (sorted).
    pub fn classes(&self) -> Vec<String> {
        match self {
            ResidentSupport::F32(s) => s.classes().into_iter().map(str::to_string).collect(),
            ResidentSupport::Int8(s) => s.classes().into_iter().map(str::to_string).collect(),
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        match self {
            ResidentSupport::F32(s) => s.num_classes(),
            ResidentSupport::Int8(s) => s.num_classes(),
        }
    }

    /// Exemplars stored for `label` as owned f32 rows (dequantised for
    /// the `Int8` arm).
    pub fn samples(&self, label: &str) -> Option<Vec<Vec<f32>>> {
        match self {
            ResidentSupport::F32(s) => s.samples(label).map(<[Vec<f32>]>::to_vec),
            ResidentSupport::Int8(s) => s.samples(label),
        }
    }

    /// Total exemplars across classes.
    pub fn total_samples(&self) -> usize {
        match self {
            ResidentSupport::F32(s) => s.total_samples(),
            ResidentSupport::Int8(s) => s.total_samples(),
        }
    }

    /// Resident bytes at the stored precision.
    pub fn bytes(&self) -> usize {
        match self {
            ResidentSupport::F32(s) => s.bytes(),
            ResidentSupport::Int8(s) => s.bytes(),
        }
    }

    /// Replace the exemplars of a class with a budget-sized selection.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when `samples` is empty.
    pub fn set_class(
        &mut self,
        label: &str,
        samples: &[Vec<f32>],
        rng: &mut SeededRng,
    ) -> Result<()> {
        match self {
            ResidentSupport::F32(s) => s.set_class(label, samples, rng),
            ResidentSupport::Int8(s) => s.set_class(label, samples, rng),
        }
    }

    /// Remove a class entirely.
    pub fn remove_class(&mut self, label: &str) -> bool {
        match self {
            ResidentSupport::F32(s) => s.remove_class(label),
            ResidentSupport::Int8(s) => s.remove_class(label),
        }
    }

    /// Stack one class's exemplars into a caller-provided matrix.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] / [`CoreError::InsufficientData`] as
    /// the underlying store reports.
    pub fn class_features_into(&self, label: &str, out: &mut Matrix) -> Result<()> {
        match self {
            ResidentSupport::F32(s) => s.class_features_into(label, out),
            ResidentSupport::Int8(s) => s.class_features_into(label, out),
        }
    }

    /// Flatten into a training `(features, labels)` pair (always f32 —
    /// training consumes full-precision features).
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] / [`CoreError::InsufficientData`] as
    /// the underlying store reports.
    pub fn training_data(&self, registry: &LabelRegistry) -> Result<(Matrix, Vec<usize>)> {
        match self {
            ResidentSupport::F32(s) => s.training_data(registry),
            ResidentSupport::Int8(s) => s.training_data(registry),
        }
    }

    /// An f32 copy of the store: identity for `F32`, lossy for `Int8`.
    ///
    /// # Errors
    /// Never in practice; fallible for uniformity.
    pub fn to_f32(&self) -> Result<SupportSet> {
        match self {
            ResidentSupport::F32(s) => Ok(s.clone()),
            ResidentSupport::Int8(s) => s.to_f32(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_nn::Mlp;

    fn small_net(seed: u64) -> SiameseNetwork {
        SiameseNetwork::new(Mlp::new(&[8, 16, 4], &mut SeededRng::new(seed)).unwrap(), 1.5)
    }

    fn sample_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect())
            .collect()
    }

    #[test]
    fn resident_model_precision_and_metadata() {
        let f32_model = ResidentModel::from(small_net(1));
        assert_eq!(f32_model.precision(), Precision::F32);
        let int8 = f32_model.clone().into_precision(Precision::Int8).unwrap();
        assert_eq!(int8.precision(), Precision::Int8);
        assert_eq!(int8.dims(), f32_model.dims());
        assert_eq!(int8.input_dim(), 8);
        assert_eq!(int8.output_dim(), 4);
        assert_eq!(int8.param_count(), f32_model.param_count());
        assert_eq!(int8.margin(), 1.5);
        assert!(
            int8.resident_bytes() < f32_model.resident_bytes() / 2,
            "int8 {} vs f32 {}",
            int8.resident_bytes(),
            f32_model.resident_bytes()
        );
    }

    #[test]
    fn into_precision_identity_is_lossless() {
        let model = ResidentModel::from(small_net(2));
        let same = model.clone().into_precision(Precision::F32).unwrap();
        assert_eq!(same, model);
        let int8 = model.into_precision(Precision::Int8).unwrap();
        let same8 = int8.clone().into_precision(Precision::Int8).unwrap();
        assert_eq!(same8, int8);
    }

    #[test]
    fn resident_model_embeddings_agree_across_precisions() {
        let model = ResidentModel::from(small_net(3));
        let int8 = model.clone().into_precision(Precision::Int8).unwrap();
        let x = Matrix::filled(5, 8, 0.3);
        let ef = model.embed(&x).unwrap();
        let eq = int8.embed(&x).unwrap();
        assert_eq!(ef.shape(), eq.shape());
        let rel = ef.sub(&eq).unwrap().frobenius_norm() / ef.frobenius_norm().max(1e-9);
        assert!(rel < 0.1, "embedding drift {rel}");
        // embed_one and embed_into agree with embed.
        let one = int8.embed_one(x.row(0)).unwrap();
        assert_eq!(one.as_slice(), eq.row(0));
        let mut out = Matrix::default();
        let mut ws = Workspace::new();
        int8.embed_into(&x, &mut out, &mut ws).unwrap();
        assert_eq!(out, eq);
    }

    #[test]
    fn set_margin_crosses_precisions() {
        let mut model = ResidentModel::from(small_net(4));
        model.set_margin(2.25);
        assert_eq!(model.margin(), 2.25);
        let mut int8 = model.into_precision(Precision::Int8).unwrap();
        assert_eq!(int8.margin(), 2.25);
        int8.set_margin(0.5);
        assert_eq!(int8.to_f32().unwrap().margin, 0.5);
    }

    #[test]
    fn quantized_support_round_trip_error_bounded() {
        let mut rng = SeededRng::new(5);
        let mut set = SupportSet::new(16, SelectionStrategy::Herding);
        set.set_class("walk", &sample_rows(12, 8, 6), &mut rng).unwrap();
        set.set_class("run", &sample_rows(10, 8, 7), &mut rng).unwrap();
        let q = QuantizedSupportSet::quantize(&set);
        assert_eq!(q.num_classes(), 2);
        assert_eq!(q.total_samples(), set.total_samples());
        assert_eq!(q.budget(), 16);
        assert_eq!(q.strategy(), SelectionStrategy::Herding);
        for label in ["walk", "run"] {
            let orig = set.samples(label).unwrap();
            let back = q.samples(label).unwrap();
            assert_eq!(orig.len(), back.len());
            for (o, b) in orig.iter().zip(back.iter()) {
                let max_abs = o.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let step = max_abs / 127.0;
                for (x, y) in o.iter().zip(b.iter()) {
                    assert!((x - y).abs() <= step * 0.5 + 1e-7);
                }
            }
        }
    }

    #[test]
    fn quantized_support_is_roughly_quarter_size() {
        let mut rng = SeededRng::new(8);
        let mut set = SupportSet::new(32, SelectionStrategy::Random);
        for label in ["a", "b", "c"] {
            set.set_class(label, &sample_rows(32, 80, 9), &mut rng).unwrap();
        }
        let q = QuantizedSupportSet::quantize(&set);
        let ratio = q.bytes() as f64 / set.bytes() as f64;
        assert!(ratio < 0.30, "quantised support ratio {ratio:.3}");
    }

    #[test]
    fn quantized_support_set_class_and_training_data() {
        let mut rng = SeededRng::new(10);
        let mut q = QuantizedSupportSet::quantize(&SupportSet::new(
            8,
            SelectionStrategy::Herding,
        ));
        q.set_class("walk", &sample_rows(20, 6, 11), &mut rng).unwrap();
        q.set_class("run", &sample_rows(4, 6, 12), &mut rng).unwrap();
        assert_eq!(q.samples("walk").unwrap().len(), 8, "budget enforced");
        assert_eq!(q.samples("run").unwrap().len(), 4);
        assert!(q.set_class("x", &[], &mut rng).is_err());

        let registry = LabelRegistry::from_labels(["run", "walk"]);
        let (features, labels) = q.training_data(&registry).unwrap();
        assert_eq!(features.shape(), (12, 6));
        assert_eq!(labels.len(), 12);

        let mut staged = Matrix::default();
        q.class_features_into("walk", &mut staged).unwrap();
        assert_eq!(staged.shape(), (8, 6));
        assert!(q.class_features_into("missing", &mut staged).is_err());

        assert!(q.remove_class("run"));
        assert!(!q.remove_class("run"));
        assert!(q.samples("run").is_none());
    }

    #[test]
    fn resident_support_delegates_to_both_arms() {
        let mut rng = SeededRng::new(13);
        let mut set = SupportSet::new(8, SelectionStrategy::Random);
        set.set_class("walk", &sample_rows(6, 5, 14), &mut rng).unwrap();

        let f32_arm = ResidentSupport::from(set.clone());
        let int8_arm = ResidentSupport::from(QuantizedSupportSet::quantize(&set));
        assert_eq!(f32_arm.precision(), Precision::F32);
        assert_eq!(int8_arm.precision(), Precision::Int8);
        for arm in [&f32_arm, &int8_arm] {
            assert_eq!(arm.classes(), vec!["walk".to_string()]);
            assert_eq!(arm.num_classes(), 1);
            assert_eq!(arm.total_samples(), 6);
            assert_eq!(arm.budget(), 8);
            assert_eq!(arm.samples("walk").unwrap().len(), 6);
        }
        assert!(int8_arm.bytes() < f32_arm.bytes() / 2);
        let back = int8_arm.to_f32().unwrap();
        assert_eq!(back.num_classes(), 1);
    }

    #[test]
    fn zero_rows_quantize_without_dividing_by_zero() {
        let mut rng = SeededRng::new(15);
        let mut set = SupportSet::new(4, SelectionStrategy::Random);
        set.set_class("still", &vec![vec![0.0f32; 6]; 3], &mut rng).unwrap();
        let q = QuantizedSupportSet::quantize(&set);
        for row in q.samples("still").unwrap() {
            assert!(row.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn serde_roundtrips() {
        let model = ResidentModel::from(small_net(16))
            .into_precision(Precision::Int8)
            .unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: ResidentModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);

        let mut rng = SeededRng::new(17);
        let mut set = SupportSet::new(4, SelectionStrategy::Random);
        set.set_class("walk", &sample_rows(3, 4, 18), &mut rng).unwrap();
        let support = ResidentSupport::from(QuantizedSupportSet::quantize(&set));
        let json = serde_json::to_string(&support).unwrap();
        let back: ResidentSupport = serde_json::from_str(&json).unwrap();
        assert_eq!(support, back);
    }
}
