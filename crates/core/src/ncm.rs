//! Nearest-Class-Mean classifier over embeddings.
//!
//! §3.1: "After learning a class-separable embedding space, a nearest
//! class mean (NCM) classifier can be built to do the Edge Inference."
//! NCM is the natural classifier for incremental learning: adding a class
//! is *just adding a prototype* — no classifier weights to retrain, which
//! is exactly why Mensink et al. and the companion EDBT'23 paper use it.
//!
//! Classes and per-user exemplars keep growing over a device's lifetime,
//! so the classifier carries a quantized row index
//! ([`crate::ncm_index`], DESIGN.md §16) holding every class
//! representative — the f32 prototype plus optional int8 support
//! exemplars — as per-row-scale int8 rows. Small classifiers scan
//! densely (bit-identical to the classic prototype scan); past
//! `coarse_min_rows` total rows a two-stage search takes over: a coarse
//! int8 scan over all rows picks the `top_k` candidates, only those are
//! re-scored exactly in f32, and every class scores as the minimum over
//! its rows. With `top_k >= num_rows` the two stages collapse to the
//! dense scan bit-for-bit (property-tested); at the defaults the
//! prediction-agreement gate is ≥ 0.99 (`make check`, BENCH_ncm_scale).

use std::collections::HashMap;

use crate::error::CoreError;
use crate::ncm_index::NcmIndex;
use crate::Result;
use magneto_tensor::qdist;
use magneto_tensor::vector::{self, DistanceMetric};
use magneto_tensor::{Backend, Matrix};
use serde::{__get_field, __opt_field, Deserialize, Serialize, Value};

/// Total indexed rows below which classification always runs the dense
/// exact scan. Keeps every small classifier — in particular any
/// exemplar-free classifier a pre-index bundle produces — bit-identical
/// to the classic prototype scan.
const DEFAULT_COARSE_MIN_ROWS: usize = 64;

/// Candidate rows the coarse stage hands to exact re-scoring.
const DEFAULT_TOP_K: usize = 16;

/// A fitted NCM classifier: one prototype (mean embedding) per class,
/// plus optional quantized support exemplars per class.
#[derive(Debug, Clone)]
pub struct NcmClassifier {
    metric: DistanceMetric,
    labels: Vec<String>,
    prototypes: Vec<Vec<f32>>,
    /// Interned label → class index (first insertion wins on duplicate
    /// labels, mirroring the linear `position()` lookup it replaces).
    index_of: HashMap<String, usize>,
    index: NcmIndex,
    coarse_min_rows: usize,
    top_k: usize,
}

/// Classification outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NcmDecision {
    /// Winning class label.
    pub label: String,
    /// Soft confidence in `[0, 1]`: softmax over negated distances.
    pub confidence: f32,
    /// Distance to the nearest representative of every class, in label
    /// order. For classes without exemplars this is the prototype
    /// distance; on the two-stage path, rows outside the candidate set
    /// contribute their coarse estimate.
    pub distances: Vec<f32>,
}

/// Reusable scratch for [`NcmClassifier::classify_into`] (§9 `_into`
/// convention): quantised query, coarse scores, candidate set, softmax
/// buffers. One per serving thread; `classify` allocates one per call.
#[derive(Debug, Clone)]
pub struct NcmScratch {
    backend: Backend,
    q: Vec<i8>,
    coarse: Vec<f32>,
    pairs: Vec<(f32, u32)>,
    selected: Vec<bool>,
    row_buf: Vec<f32>,
    neg: Vec<f32>,
    probs: Vec<f32>,
}

impl NcmScratch {
    /// Scratch dispatching the coarse scan to the best available SIMD
    /// backend. The int8 distance kernels accumulate in exact integer
    /// arithmetic — bit-identical across backends — so unlike the f32
    /// families there is no accuracy trade-off to autotune; detection
    /// alone decides.
    pub fn new() -> Self {
        Self::with_backend(Backend::detect_simd().unwrap_or(Backend::Scalar))
    }

    /// Scratch with an explicit coarse-scan backend (bench sweeps,
    /// bit-identity tests). Unavailable backends fall back to scalar.
    pub fn with_backend(backend: Backend) -> Self {
        let backend = if backend.is_available() {
            backend
        } else {
            Backend::Scalar
        };
        NcmScratch {
            backend,
            q: Vec::new(),
            coarse: Vec::new(),
            pairs: Vec::new(),
            selected: Vec::new(),
            row_buf: Vec::new(),
            neg: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// The backend the coarse int8 scan dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

impl Default for NcmScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl NcmClassifier {
    /// Build from `(label, prototype)` pairs.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when empty;
    /// [`CoreError::InvalidConfig`] on inconsistent prototype dims.
    pub fn new(metric: DistanceMetric, prototypes: Vec<(String, Vec<f32>)>) -> Result<Self> {
        if prototypes.is_empty() {
            return Err(CoreError::InsufficientData("no prototypes".into()));
        }
        let dim = prototypes[0].1.len();
        if dim == 0 || prototypes.iter().any(|(_, p)| p.len() != dim) {
            return Err(CoreError::InvalidConfig(
                "prototype dimension mismatch".into(),
            ));
        }
        let mut index = NcmIndex::new(dim)?;
        let mut labels = Vec::with_capacity(prototypes.len());
        let mut protos = Vec::with_capacity(prototypes.len());
        let mut index_of = HashMap::with_capacity(prototypes.len());
        for (label, proto) in prototypes {
            index.push_class(&proto);
            index_of.entry(label.clone()).or_insert(labels.len());
            labels.push(label);
            protos.push(proto);
        }
        Ok(NcmClassifier {
            metric,
            labels,
            prototypes: protos,
            index_of,
            index,
            coarse_min_rows: DEFAULT_COARSE_MIN_ROWS,
            top_k: DEFAULT_TOP_K,
        })
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.prototypes.first().map_or(0, Vec::len)
    }

    /// Class labels in prototype order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.labels.len()
    }

    /// Total indexed rows: one prototype per class plus all exemplars.
    pub fn num_rows(&self) -> usize {
        self.index.num_rows()
    }

    /// Distance metric in use.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Override the two-stage search knobs: classification runs the
    /// coarse+rescore path once the index holds at least
    /// `coarse_min_rows` rows, re-scoring the `top_k` best coarse
    /// candidates exactly. `top_k >= num_rows` makes the two-stage path
    /// bit-identical to the dense scan.
    pub fn set_search_params(&mut self, coarse_min_rows: usize, top_k: usize) {
        self.coarse_min_rows = coarse_min_rows;
        self.top_k = top_k;
    }

    /// Current `(coarse_min_rows, top_k)` search knobs.
    pub fn search_params(&self) -> (usize, usize) {
        (self.coarse_min_rows, self.top_k)
    }

    /// The prototype for `label`.
    pub fn prototype(&self, label: &str) -> Option<&[f32]> {
        self.index_of
            .get(label)
            .map(|&i| self.prototypes[i].as_slice())
    }

    /// Add (or replace) a class prototype — the incremental-learning hook.
    /// O(label) via the interned lookup; replacing re-quantises exactly
    /// one index row, adding appends one.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn upsert_prototype(&mut self, label: &str, prototype: Vec<f32>) -> Result<()> {
        if prototype.len() != self.dim() {
            return Err(CoreError::InvalidConfig(format!(
                "prototype dim {} != classifier dim {}",
                prototype.len(),
                self.dim()
            )));
        }
        match self.index_of.get(label) {
            Some(&i) => {
                self.index.replace_proto(i, &prototype);
                self.prototypes[i] = prototype;
            }
            None => {
                let i = self.labels.len();
                self.index.push_class(&prototype);
                self.index_of.insert(label.to_string(), i);
                self.labels.push(label.to_string());
                self.prototypes.push(prototype);
            }
        }
        Ok(())
    }

    /// Remove a class. The interned map stays consistent: entries above
    /// the removed slot shift down with their prototypes.
    pub fn remove(&mut self, label: &str) -> bool {
        let Some(i) = self.index_of.remove(label) else {
            return false;
        };
        self.labels.remove(i);
        self.prototypes.remove(i);
        self.index.remove_class(i);
        for slot in self.index_of.values_mut() {
            if *slot > i {
                *slot -= 1;
            }
        }
        true
    }

    /// Attach support exemplars to `label`, replacing any it already
    /// had: each row of `rows` (an embedding per row) is quantised with
    /// the per-row int8 scheme and indexed as an additional
    /// representative of the class — classification scores the class by
    /// its *nearest* representative. Pass an empty matrix to drop the
    /// class's exemplars.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] for an unknown label or a row-width
    /// mismatch.
    pub fn set_class_exemplars(&mut self, label: &str, rows: &Matrix) -> Result<()> {
        let Some(&c) = self.index_of.get(label) else {
            return Err(CoreError::InvalidConfig(format!(
                "cannot attach exemplars to unknown class `{label}`"
            )));
        };
        if rows.rows() > 0 && rows.cols() != self.dim() {
            return Err(CoreError::InvalidConfig(format!(
                "exemplar dim {} != classifier dim {}",
                rows.cols(),
                self.dim()
            )));
        }
        self.index.clear_exemplars(c);
        for r in 0..rows.rows() {
            self.index.push_exemplar(c, rows.row(r));
        }
        Ok(())
    }

    /// Drop every class's exemplars, shrinking the index back to one
    /// prototype row per class.
    pub fn clear_exemplars(&mut self) {
        for c in 0..self.labels.len() {
            self.index.clear_exemplars(c);
        }
    }

    /// Number of exemplar rows indexed for `label` (`None` for an
    /// unknown label).
    pub fn exemplar_count(&self, label: &str) -> Option<usize> {
        self.index_of
            .get(label)
            .map(|&c| self.index.exemplar_count(c))
    }

    /// Resident bytes: f32 prototypes + labels + the quantized index
    /// pool (exemplars cost ~1 byte per element, not 4).
    pub fn resident_bytes(&self) -> usize {
        let protos: usize = self.prototypes.iter().map(|p| 4 * p.len()).sum();
        let labels: usize = self.labels.iter().map(|l| l.len() + 24).sum();
        protos + labels + self.index.bytes()
    }

    /// Classify an embedding with open-set rejection: returns `None` when
    /// the nearest representative is farther than `threshold` — the
    /// embedding belongs to no known activity. This is what lets the demo
    /// device say "unknown activity" for a gesture it has not been taught
    /// yet, instead of mislabelling it as one of the base five.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn classify_open_set(
        &self,
        embedding: &[f32],
        threshold: f32,
    ) -> Result<Option<NcmDecision>> {
        let decision = self.classify(embedding)?;
        let min_dist = decision
            .distances
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        Ok((min_dist <= threshold).then_some(decision))
    }

    /// Classify an embedding. Thin shim over [`Self::classify_into`]
    /// (allocates fresh scratch; serving paths keep scratch per thread).
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn classify(&self, embedding: &[f32]) -> Result<NcmDecision> {
        let mut scratch = NcmScratch::new();
        let mut out = NcmDecision::default();
        self.classify_into(embedding, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Classify an embedding into a caller-owned decision, reusing
    /// `scratch` across calls (§9 `_into` convention — the fleet serve
    /// path's variant). Below `coarse_min_rows` total rows this is the
    /// dense exact scan; above it, the two-stage quantized search.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn classify_into(
        &self,
        embedding: &[f32],
        scratch: &mut NcmScratch,
        out: &mut NcmDecision,
    ) -> Result<()> {
        if embedding.len() != self.dim() {
            return Err(CoreError::InvalidConfig(format!(
                "embedding dim {} != classifier dim {}",
                embedding.len(),
                self.dim()
            )));
        }
        let two_stage = self.index.num_rows() >= self.coarse_min_rows.max(1)
            && !matches!(self.metric, DistanceMetric::Manhattan);
        if two_stage {
            self.scores_two_stage(embedding, scratch, &mut out.distances);
        } else {
            self.scores_dense(embedding, &mut scratch.row_buf, &mut out.distances);
        }
        let winner = vector::argmin(&out.distances).expect("non-empty prototypes");
        // Confidence: softmax over negative distances. Scale-free enough
        // for UI display and vote weighting.
        scratch.neg.clear();
        scratch.neg.extend(out.distances.iter().map(|d| -d));
        vector::softmax_into(&scratch.neg, &mut scratch.probs);
        out.label.clear();
        out.label.push_str(&self.labels[winner]);
        out.confidence = scratch.probs[winner];
        Ok(())
    }

    /// Dense exact scan, also the agreement reference for the bench:
    /// every class scores as the minimum metric distance over its
    /// prototype and (dequantised) exemplars. With no exemplars this is
    /// exactly the classic prototype scan.
    pub fn classify_dense_into(
        &self,
        embedding: &[f32],
        scratch: &mut NcmScratch,
        out: &mut NcmDecision,
    ) -> Result<()> {
        if embedding.len() != self.dim() {
            return Err(CoreError::InvalidConfig(format!(
                "embedding dim {} != classifier dim {}",
                embedding.len(),
                self.dim()
            )));
        }
        self.scores_dense(embedding, &mut scratch.row_buf, &mut out.distances);
        let winner = vector::argmin(&out.distances).expect("non-empty prototypes");
        scratch.neg.clear();
        scratch.neg.extend(out.distances.iter().map(|d| -d));
        vector::softmax_into(&scratch.neg, &mut scratch.probs);
        out.label.clear();
        out.label.push_str(&self.labels[winner]);
        out.confidence = scratch.probs[winner];
        Ok(())
    }

    fn scores_dense(&self, embedding: &[f32], row_buf: &mut Vec<f32>, distances: &mut Vec<f32>) {
        distances.clear();
        row_buf.resize(self.dim(), 0.0);
        for (c, proto) in self.prototypes.iter().enumerate() {
            let mut d = self.metric.eval(embedding, proto);
            for &pos in self.index.exemplar_positions(c) {
                self.index.dequantize_into(pos as usize, row_buf);
                d = d.min(self.metric.eval(embedding, row_buf));
            }
            distances.push(d);
        }
    }

    /// Two-stage search. Euclidean metrics run internally in the squared
    /// domain with one `sqrt` per class at the end — `sqrt` is monotone
    /// and correctly rounded, so `sqrt(min(x²)) == min(sqrt(x²))`
    /// bit-for-bit and the collapse to the dense scan at
    /// `top_k >= num_rows` is exact.
    fn scores_two_stage(
        &self,
        embedding: &[f32],
        scratch: &mut NcmScratch,
        distances: &mut Vec<f32>,
    ) {
        let n_rows = self.index.num_rows();
        // Stage 1: quantise the query once, coarse-score every row.
        scratch.q.clear();
        let (q_scale, q_sqnorm) = qdist::quantize_query(embedding, &mut scratch.q);
        let squared = matches!(
            self.metric,
            DistanceMetric::Euclidean | DistanceMetric::SquaredEuclidean
        );
        if squared {
            self.index
                .coarse_sq_l2(scratch.backend, &scratch.q, q_scale, q_sqnorm, &mut scratch.coarse);
        } else {
            self.index
                .coarse_cosine(scratch.backend, &scratch.q, q_scale, q_sqnorm, &mut scratch.coarse);
        }
        // Select the top_k coarse candidates for exact re-scoring.
        let k = self.top_k.min(n_rows);
        scratch.selected.clear();
        scratch.selected.resize(n_rows, false);
        if k > 0 {
            scratch.pairs.clear();
            scratch
                .pairs
                .extend(scratch.coarse.iter().enumerate().map(|(i, &s)| (s, i as u32)));
            if k < n_rows {
                scratch
                    .pairs
                    .select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
            }
            for &(_, i) in &scratch.pairs[..k] {
                scratch.selected[i as usize] = true;
            }
        }
        // Stage 2: per class, min over rows — exact f32 for candidates,
        // the coarse estimate otherwise.
        distances.clear();
        scratch.row_buf.resize(self.dim(), 0.0);
        for (c, proto) in self.prototypes.iter().enumerate() {
            let ppos = self.index.proto_pos(c);
            let mut d = if scratch.selected[ppos] {
                self.exact_internal(embedding, proto, squared)
            } else {
                scratch.coarse[ppos]
            };
            for &pos in self.index.exemplar_positions(c) {
                let pos = pos as usize;
                let rd = if scratch.selected[pos] {
                    self.index.dequantize_into(pos, &mut scratch.row_buf);
                    self.exact_internal(embedding, &scratch.row_buf, squared)
                } else {
                    scratch.coarse[pos]
                };
                d = d.min(rd);
            }
            distances.push(if matches!(self.metric, DistanceMetric::Euclidean) {
                d.sqrt()
            } else {
                d
            });
        }
    }

    /// Exact distance in the two-stage path's internal domain (squared
    /// for the Euclidean metrics, the metric itself otherwise).
    fn exact_internal(&self, a: &[f32], b: &[f32], squared: bool) -> f32 {
        if squared {
            vector::squared_euclidean(a, b)
        } else {
            self.metric.eval(a, b)
        }
    }
}

// Serde: hand-written so the wire format stays exactly what the derived
// impl produced before the index existed — `metric`/`labels`/`prototypes`
// in order, with the quantized exemplars as a fourth field *only when
// any exist*. Exemplar-free classifiers therefore serialize
// byte-identically to pre-index builds (the delta apply→revert
// byte-identity property depends on this), and pre-index JSON decodes
// into an exemplar-free classifier.
impl Serialize for NcmClassifier {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("metric".to_string(), self.metric.to_value()),
            ("labels".to_string(), self.labels.to_value()),
            ("prototypes".to_string(), self.prototypes.to_value()),
        ];
        if (0..self.labels.len()).any(|c| self.index.exemplar_count(c) > 0) {
            let classes: Vec<Value> = (0..self.labels.len())
                .map(|c| {
                    let mut scales = Vec::with_capacity(self.index.exemplar_count(c));
                    let mut rows = Vec::with_capacity(self.index.exemplar_count(c));
                    for &pos in self.index.exemplar_positions(c) {
                        let (q, scale) = self.index.row_quantized(pos as usize);
                        scales.push(scale);
                        rows.push(q.to_vec());
                    }
                    Value::Map(vec![
                        ("scales".to_string(), scales.to_value()),
                        ("rows".to_string(), rows.to_value()),
                    ])
                })
                .collect();
            fields.push(("exemplars".to_string(), Value::Seq(classes)));
        }
        Value::Map(fields)
    }
}

impl Deserialize for NcmClassifier {
    fn from_value(v: &Value) -> serde::Result<Self> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "NcmClassifier"))?;
        let metric: DistanceMetric = __get_field(m, "metric", "NcmClassifier")?;
        let labels: Vec<String> = __get_field(m, "labels", "NcmClassifier")?;
        let prototypes: Vec<Vec<f32>> = __get_field(m, "prototypes", "NcmClassifier")?;
        let mut ncm = NcmClassifier::new(metric, labels.into_iter().zip(prototypes).collect())
            .map_err(|e| serde::Error::custom(format!("NcmClassifier: {e}")))?;
        #[derive(Deserialize)]
        struct ClassExemplars {
            scales: Vec<f32>,
            rows: Vec<Vec<i8>>,
        }
        if let Some(classes) = __opt_field::<Vec<ClassExemplars>>(m, "exemplars", "NcmClassifier")?
        {
            if classes.len() != ncm.labels.len() {
                return Err(serde::Error::custom(format!(
                    "NcmClassifier: {} exemplar classes for {} labels",
                    classes.len(),
                    ncm.labels.len()
                )));
            }
            let dim = ncm.dim();
            for (c, class) in classes.into_iter().enumerate() {
                if class.scales.len() != class.rows.len()
                    || class.rows.iter().any(|r| r.len() != dim)
                {
                    return Err(serde::Error::custom(
                        "NcmClassifier: malformed exemplar block".to_string(),
                    ));
                }
                for (q, scale) in class.rows.iter().zip(class.scales) {
                    ncm.index.push_exemplar_quantized(c, q, scale);
                }
            }
        }
        Ok(ncm)
    }
}

// Logical equality: metric, labels, prototypes and per-class exemplar
// contents. Index row *positions* are derived state (they depend on the
// mutation history) and deliberately don't participate, so a serde
// round-trip — which rebuilds the pool in class order — compares equal.
impl PartialEq for NcmClassifier {
    fn eq(&self, other: &Self) -> bool {
        if self.metric != other.metric
            || self.labels != other.labels
            || self.prototypes != other.prototypes
        {
            return false;
        }
        (0..self.labels.len()).all(|c| {
            let (a, b) = (&self.index, &other.index);
            a.exemplar_count(c) == b.exemplar_count(c)
                && a.exemplar_positions(c)
                    .iter()
                    .zip(b.exemplar_positions(c))
                    .all(|(&pa, &pb)| {
                        a.row_quantized(pa as usize) == b.row_quantized(pb as usize)
                    })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class() -> NcmClassifier {
        NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![
                ("walk".into(), vec![0.0, 0.0]),
                ("run".into(), vec![10.0, 0.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn classifies_by_nearest_prototype() {
        let ncm = two_class();
        let d = ncm.classify(&[1.0, 0.5]).unwrap();
        assert_eq!(d.label, "walk");
        assert!(d.confidence > 0.5);
        assert_eq!(d.distances.len(), 2);
        let d2 = ncm.classify(&[9.0, 0.0]).unwrap();
        assert_eq!(d2.label, "run");
    }

    #[test]
    fn confidence_degrades_toward_boundary() {
        let ncm = two_class();
        let near = ncm.classify(&[0.5, 0.0]).unwrap();
        let boundary = ncm.classify(&[5.0, 0.0]).unwrap();
        assert!(near.confidence > boundary.confidence);
        assert!((boundary.confidence - 0.5).abs() < 0.01);
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            NcmClassifier::new(DistanceMetric::Euclidean, vec![]),
            Err(CoreError::InsufficientData(_))
        ));
        assert!(matches!(
            NcmClassifier::new(
                DistanceMetric::Euclidean,
                vec![("a".into(), vec![1.0]), ("b".into(), vec![1.0, 2.0])]
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![("a".into(), vec![])]
        )
        .is_err());
    }

    #[test]
    fn upsert_adds_class_without_disturbing_others() {
        let mut ncm = two_class();
        ncm.upsert_prototype("gesture_hi", vec![0.0, 10.0]).unwrap();
        assert_eq!(ncm.num_classes(), 3);
        // Old classes still classify identically.
        assert_eq!(ncm.classify(&[1.0, 0.0]).unwrap().label, "walk");
        assert_eq!(ncm.classify(&[0.0, 9.0]).unwrap().label, "gesture_hi");
        // Replace an existing prototype.
        ncm.upsert_prototype("walk", vec![-5.0, 0.0]).unwrap();
        assert_eq!(ncm.prototype("walk").unwrap(), &[-5.0, 0.0]);
        assert_eq!(ncm.num_classes(), 3);
        // Dimension mismatch rejected.
        assert!(ncm.upsert_prototype("bad", vec![1.0]).is_err());
    }

    #[test]
    fn remove_class() {
        let mut ncm = two_class();
        assert!(ncm.remove("walk"));
        assert!(!ncm.remove("walk"));
        assert_eq!(ncm.num_classes(), 1);
        assert_eq!(ncm.classify(&[0.0, 0.0]).unwrap().label, "run");
    }

    #[test]
    fn dimension_checked_on_classify() {
        let ncm = two_class();
        assert!(ncm.classify(&[1.0]).is_err());
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let ncm = NcmClassifier::new(
            DistanceMetric::Cosine,
            vec![
                ("x".into(), vec![1.0, 0.0]),
                ("y".into(), vec![0.0, 1.0]),
            ],
        )
        .unwrap();
        // A huge vector along x still lands on x.
        assert_eq!(ncm.classify(&[1000.0, 1.0]).unwrap().label, "x");
        assert_eq!(ncm.metric(), DistanceMetric::Cosine);
    }

    #[test]
    fn accessors() {
        let ncm = two_class();
        assert_eq!(ncm.dim(), 2);
        assert_eq!(ncm.labels(), &["walk".to_string(), "run".to_string()]);
        assert!(ncm.prototype("nope").is_none());
        assert_eq!(ncm.num_rows(), 2);
        assert_eq!(ncm.exemplar_count("walk"), Some(0));
        assert_eq!(ncm.exemplar_count("nope"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let ncm = two_class();
        let json = serde_json::to_string(&ncm).unwrap();
        let back: NcmClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(ncm, back);
    }

    #[test]
    fn serde_roundtrip_with_exemplars() {
        let mut ncm = two_class();
        let mut rows = Matrix::zeros(3, 2);
        rows.row_mut(0).copy_from_slice(&[0.5, 0.25]);
        rows.row_mut(1).copy_from_slice(&[-0.5, 0.125]);
        rows.row_mut(2).copy_from_slice(&[0.0, 1.0]);
        ncm.set_class_exemplars("walk", &rows).unwrap();
        let json = serde_json::to_string(&ncm).unwrap();
        let back: NcmClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(ncm, back);
        assert_eq!(back.exemplar_count("walk"), Some(3));
        // Round-tripped exemplars classify identically (dense path).
        let probe = [0.45, 0.3];
        assert_eq!(ncm.classify(&probe).unwrap(), back.classify(&probe).unwrap());
    }

    #[test]
    fn exemplar_free_wire_format_is_pre_index() {
        // The serialized form of an exemplar-free classifier must not
        // mention the index at all — old decoders (and byte-equality
        // checks against pre-index snapshots) see the classic 3 fields.
        let json = serde_json::to_string(&two_class()).unwrap();
        assert!(json.contains("\"metric\""));
        assert!(json.contains("\"prototypes\""));
        assert!(!json.contains("exemplars"));
    }

    #[test]
    fn exemplars_pull_classification_toward_class_members() {
        let mut ncm = two_class();
        // A "walk" exemplar far from the walk prototype but near the
        // probe: nearest-representative scoring must use it.
        let mut rows = Matrix::zeros(1, 2);
        rows.row_mut(0).copy_from_slice(&[8.0, 8.0]);
        ncm.set_class_exemplars("walk", &rows).unwrap();
        let d = ncm.classify(&[8.0, 7.0]).unwrap();
        assert_eq!(d.label, "walk");
        // Dropping the exemplars restores prototype-only behavior.
        ncm.set_class_exemplars("walk", &Matrix::default()).unwrap();
        assert_eq!(ncm.num_rows(), 2);
        assert_eq!(ncm.classify(&[8.0, 7.0]).unwrap().label, "run");
    }

    #[test]
    fn exemplar_validation() {
        let mut ncm = two_class();
        let rows = Matrix::zeros(1, 3);
        assert!(ncm.set_class_exemplars("walk", &rows).is_err());
        assert!(ncm
            .set_class_exemplars("nope", &Matrix::zeros(1, 2))
            .is_err());
    }

    #[test]
    fn classify_into_matches_classify() {
        let ncm = two_class();
        let mut scratch = NcmScratch::new();
        let mut out = NcmDecision::default();
        for probe in [[1.0, 0.5], [9.0, 0.0], [5.0, 5.0]] {
            ncm.classify_into(&probe, &mut scratch, &mut out).unwrap();
            assert_eq!(out, ncm.classify(&probe).unwrap());
        }
    }

    #[test]
    fn open_set_rejects_far_embeddings() {
        let ncm = two_class();
        // Near the walk prototype: accepted.
        let near = ncm.classify_open_set(&[0.5, 0.0], 2.0).unwrap();
        assert_eq!(near.unwrap().label, "walk");
        // Far from everything: rejected.
        let far = ncm.classify_open_set(&[5.0, 100.0], 2.0).unwrap();
        assert!(far.is_none());
        // A huge threshold accepts anything.
        assert!(ncm
            .classify_open_set(&[5.0, 100.0], 1e9)
            .unwrap()
            .is_some());
        // Boundary is inclusive.
        assert!(ncm.classify_open_set(&[2.0, 0.0], 2.0).unwrap().is_some());
        // Dimension still checked.
        assert!(ncm.classify_open_set(&[1.0], 1.0).is_err());
    }
}
