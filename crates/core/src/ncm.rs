//! Nearest-Class-Mean classifier over embeddings.
//!
//! §3.1: "After learning a class-separable embedding space, a nearest
//! class mean (NCM) classifier can be built to do the Edge Inference."
//! NCM is the natural classifier for incremental learning: adding a class
//! is *just adding a prototype* — no classifier weights to retrain, which
//! is exactly why Mensink et al. and the companion EDBT'23 paper use it.

use crate::error::CoreError;
use crate::Result;
use magneto_tensor::vector::{self, DistanceMetric};
use serde::{Deserialize, Serialize};

/// A fitted NCM classifier: one prototype (mean embedding) per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NcmClassifier {
    metric: DistanceMetric,
    labels: Vec<String>,
    prototypes: Vec<Vec<f32>>,
}

/// Classification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NcmDecision {
    /// Winning class label.
    pub label: String,
    /// Soft confidence in `[0, 1]`: softmax over negated distances.
    pub confidence: f32,
    /// Distance to every prototype, in label order.
    pub distances: Vec<f32>,
}

impl NcmClassifier {
    /// Build from `(label, prototype)` pairs.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when empty;
    /// [`CoreError::InvalidConfig`] on inconsistent prototype dims.
    pub fn new(
        metric: DistanceMetric,
        prototypes: Vec<(String, Vec<f32>)>,
    ) -> Result<Self> {
        if prototypes.is_empty() {
            return Err(CoreError::InsufficientData("no prototypes".into()));
        }
        let dim = prototypes[0].1.len();
        if dim == 0 || prototypes.iter().any(|(_, p)| p.len() != dim) {
            return Err(CoreError::InvalidConfig(
                "prototype dimension mismatch".into(),
            ));
        }
        let (labels, protos) = prototypes.into_iter().unzip();
        Ok(NcmClassifier {
            metric,
            labels,
            prototypes: protos,
        })
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.prototypes.first().map_or(0, Vec::len)
    }

    /// Class labels in prototype order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.labels.len()
    }

    /// Distance metric in use.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The prototype for `label`.
    pub fn prototype(&self, label: &str) -> Option<&[f32]> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| self.prototypes[i].as_slice())
    }

    /// Add (or replace) a class prototype — the incremental-learning hook.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn upsert_prototype(&mut self, label: &str, prototype: Vec<f32>) -> Result<()> {
        if prototype.len() != self.dim() {
            return Err(CoreError::InvalidConfig(format!(
                "prototype dim {} != classifier dim {}",
                prototype.len(),
                self.dim()
            )));
        }
        match self.labels.iter().position(|l| l == label) {
            Some(i) => self.prototypes[i] = prototype,
            None => {
                self.labels.push(label.to_string());
                self.prototypes.push(prototype);
            }
        }
        Ok(())
    }

    /// Remove a class.
    pub fn remove(&mut self, label: &str) -> bool {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            self.labels.remove(i);
            self.prototypes.remove(i);
            true
        } else {
            false
        }
    }

    /// Classify an embedding with open-set rejection: returns `None` when
    /// the nearest prototype is farther than `threshold` — the embedding
    /// belongs to no known activity. This is what lets the demo device
    /// say "unknown activity" for a gesture it has not been taught yet,
    /// instead of mislabelling it as one of the base five.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn classify_open_set(
        &self,
        embedding: &[f32],
        threshold: f32,
    ) -> Result<Option<NcmDecision>> {
        let decision = self.classify(embedding)?;
        let min_dist = decision
            .distances
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        Ok((min_dist <= threshold).then_some(decision))
    }

    /// Classify an embedding.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on dimension mismatch.
    pub fn classify(&self, embedding: &[f32]) -> Result<NcmDecision> {
        if embedding.len() != self.dim() {
            return Err(CoreError::InvalidConfig(format!(
                "embedding dim {} != classifier dim {}",
                embedding.len(),
                self.dim()
            )));
        }
        let distances: Vec<f32> = self
            .prototypes
            .iter()
            .map(|p| self.metric.eval(embedding, p))
            .collect();
        let winner = vector::argmin(&distances).expect("non-empty prototypes");
        // Confidence: softmax over negative distances. Scale-free enough
        // for UI display and vote weighting.
        let neg: Vec<f32> = distances.iter().map(|d| -d).collect();
        let probs = vector::softmax(&neg);
        Ok(NcmDecision {
            label: self.labels[winner].clone(),
            confidence: probs[winner],
            distances,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class() -> NcmClassifier {
        NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![
                ("walk".into(), vec![0.0, 0.0]),
                ("run".into(), vec![10.0, 0.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn classifies_by_nearest_prototype() {
        let ncm = two_class();
        let d = ncm.classify(&[1.0, 0.5]).unwrap();
        assert_eq!(d.label, "walk");
        assert!(d.confidence > 0.5);
        assert_eq!(d.distances.len(), 2);
        let d2 = ncm.classify(&[9.0, 0.0]).unwrap();
        assert_eq!(d2.label, "run");
    }

    #[test]
    fn confidence_degrades_toward_boundary() {
        let ncm = two_class();
        let near = ncm.classify(&[0.5, 0.0]).unwrap();
        let boundary = ncm.classify(&[5.0, 0.0]).unwrap();
        assert!(near.confidence > boundary.confidence);
        assert!((boundary.confidence - 0.5).abs() < 0.01);
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            NcmClassifier::new(DistanceMetric::Euclidean, vec![]),
            Err(CoreError::InsufficientData(_))
        ));
        assert!(matches!(
            NcmClassifier::new(
                DistanceMetric::Euclidean,
                vec![("a".into(), vec![1.0]), ("b".into(), vec![1.0, 2.0])]
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(NcmClassifier::new(
            DistanceMetric::Euclidean,
            vec![("a".into(), vec![])]
        )
        .is_err());
    }

    #[test]
    fn upsert_adds_class_without_disturbing_others() {
        let mut ncm = two_class();
        ncm.upsert_prototype("gesture_hi", vec![0.0, 10.0]).unwrap();
        assert_eq!(ncm.num_classes(), 3);
        // Old classes still classify identically.
        assert_eq!(ncm.classify(&[1.0, 0.0]).unwrap().label, "walk");
        assert_eq!(ncm.classify(&[0.0, 9.0]).unwrap().label, "gesture_hi");
        // Replace an existing prototype.
        ncm.upsert_prototype("walk", vec![-5.0, 0.0]).unwrap();
        assert_eq!(ncm.prototype("walk").unwrap(), &[-5.0, 0.0]);
        assert_eq!(ncm.num_classes(), 3);
        // Dimension mismatch rejected.
        assert!(ncm.upsert_prototype("bad", vec![1.0]).is_err());
    }

    #[test]
    fn remove_class() {
        let mut ncm = two_class();
        assert!(ncm.remove("walk"));
        assert!(!ncm.remove("walk"));
        assert_eq!(ncm.num_classes(), 1);
        assert_eq!(ncm.classify(&[0.0, 0.0]).unwrap().label, "run");
    }

    #[test]
    fn dimension_checked_on_classify() {
        let ncm = two_class();
        assert!(ncm.classify(&[1.0]).is_err());
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let ncm = NcmClassifier::new(
            DistanceMetric::Cosine,
            vec![
                ("x".into(), vec![1.0, 0.0]),
                ("y".into(), vec![0.0, 1.0]),
            ],
        )
        .unwrap();
        // A huge vector along x still lands on x.
        assert_eq!(ncm.classify(&[1000.0, 1.0]).unwrap().label, "x");
        assert_eq!(ncm.metric(), DistanceMetric::Cosine);
    }

    #[test]
    fn accessors() {
        let ncm = two_class();
        assert_eq!(ncm.dim(), 2);
        assert_eq!(ncm.labels(), &["walk".to_string(), "run".to_string()]);
        assert!(ncm.prototype("nope").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let ncm = two_class();
        let json = serde_json::to_string(&ncm).unwrap();
        let back: NcmClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(ncm, back);
    }

    #[test]
    fn open_set_rejects_far_embeddings() {
        let ncm = two_class();
        // Near the walk prototype: accepted.
        let near = ncm.classify_open_set(&[0.5, 0.0], 2.0).unwrap();
        assert_eq!(near.unwrap().label, "walk");
        // Far from everything: rejected.
        let far = ncm.classify_open_set(&[5.0, 100.0], 2.0).unwrap();
        assert!(far.is_none());
        // A huge threshold accepts anything.
        assert!(ncm
            .classify_open_set(&[5.0, 100.0], 1e9)
            .unwrap()
            .is_some());
        // Boundary is inclusive.
        assert!(ncm.classify_open_set(&[2.0, 0.0], 2.0).unwrap().is_some());
        // Dimension still checked.
        assert!(ncm.classify_open_set(&[1.0], 1.0).is_err());
    }
}
