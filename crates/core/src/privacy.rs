//! Privacy ledger enforcing the paper's Definition 1.
//!
//! "Given a Cloud server and Edge device, no user data is allowed to be
//! transferred from Edge to Cloud. However, it is less restrict to pull
//! data from Cloud to Edge." (§3, Definition 1)
//!
//! Every simulated transfer in the reproduction flows through a
//! [`PrivacyLedger`], so the Figure-1 experiment can report *measured*
//! uplink bytes for both protocols, and the Edge runtime can prove it
//! never uploaded anything.

use crate::error::CoreError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Transfer direction between Cloud and Edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Cloud → Edge (allowed under Definition 1).
    CloudToEdge,
    /// Edge → Cloud (user data: forbidden under Definition 1).
    EdgeToCloud,
}

/// Policy applied to Edge → Cloud transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PrivacyPolicy {
    /// MAGNETO's policy: reject every Edge → Cloud payload.
    #[default]
    EdgeOnly,
    /// The Cloud-based baseline of Figure 1: uploads allowed (and
    /// counted — that count *is* the privacy cost being measured).
    AllowUplink,
}

/// One recorded transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Direction of the transfer.
    pub direction: Direction,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Human-readable payload description.
    pub description: String,
}

/// Append-only ledger of simulated Cloud/Edge transfers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PrivacyLedger {
    policy: PrivacyPolicy,
    records: Vec<TransferRecord>,
}

impl PrivacyLedger {
    /// Ledger with MAGNETO's Edge-only policy.
    pub fn edge_only() -> Self {
        PrivacyLedger {
            policy: PrivacyPolicy::EdgeOnly,
            records: Vec::new(),
        }
    }

    /// Ledger for the Cloud-based baseline (uplink permitted, counted).
    pub fn allow_uplink() -> Self {
        PrivacyLedger {
            policy: PrivacyPolicy::AllowUplink,
            records: Vec::new(),
        }
    }

    /// Active policy.
    pub fn policy(&self) -> PrivacyPolicy {
        self.policy
    }

    /// Record a Cloud → Edge download (always allowed).
    pub fn record_download(&mut self, bytes: usize, description: impl Into<String>) {
        self.records.push(TransferRecord {
            direction: Direction::CloudToEdge,
            bytes,
            description: description.into(),
        });
    }

    /// Attempt an Edge → Cloud upload. Under [`PrivacyPolicy::EdgeOnly`]
    /// this fails with [`CoreError::PrivacyViolation`] and records
    /// nothing; under [`PrivacyPolicy::AllowUplink`] it is recorded.
    ///
    /// # Errors
    /// [`CoreError::PrivacyViolation`] when the policy forbids uplink.
    pub fn try_upload(&mut self, bytes: usize, description: impl Into<String>) -> Result<()> {
        let description = description.into();
        match self.policy {
            PrivacyPolicy::EdgeOnly => Err(CoreError::PrivacyViolation { description, bytes }),
            PrivacyPolicy::AllowUplink => {
                self.records.push(TransferRecord {
                    direction: Direction::EdgeToCloud,
                    bytes,
                    description,
                });
                Ok(())
            }
        }
    }

    /// All records, in order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Total Cloud → Edge bytes.
    pub fn downlink_bytes(&self) -> usize {
        self.sum(Direction::CloudToEdge)
    }

    /// Total Edge → Cloud bytes — MAGNETO's headline privacy metric
    /// (must be 0).
    pub fn uplink_bytes(&self) -> usize {
        self.sum(Direction::EdgeToCloud)
    }

    fn sum(&self, dir: Direction) -> usize {
        self.records
            .iter()
            .filter(|r| r.direction == dir)
            .map(|r| r.bytes)
            .sum()
    }

    /// Definition 1, first half, as a typed check: zero bytes ever left
    /// the device. Production code paths (CLI, rollout driver, bench
    /// harnesses) use this and propagate the error.
    ///
    /// # Errors
    /// [`CoreError::PrivacyViolation`] carrying the total leaked bytes.
    pub fn check_no_uplink(&self) -> Result<()> {
        let bytes = self.uplink_bytes();
        if bytes == 0 {
            return Ok(());
        }
        let records = self
            .records
            .iter()
            .filter(|r| r.direction == Direction::EdgeToCloud)
            .count();
        Err(CoreError::PrivacyViolation {
            description: format!("{records} uplink record(s) in the ledger"),
            bytes,
        })
    }

    /// Definition 1, second half: every Cloud → Edge payload —
    /// including version-migration diffs — stays within `budget` bytes
    /// (the paper's budget is 5 MB = 5,000,000 bytes).
    ///
    /// # Errors
    /// [`CoreError::PrivacyViolation`] naming the first oversized
    /// downlink payload.
    pub fn check_downlink_budget(&self, budget: usize) -> Result<()> {
        match self
            .records
            .iter()
            .find(|r| r.direction == Direction::CloudToEdge && r.bytes > budget)
        {
            None => Ok(()),
            Some(r) => Err(CoreError::PrivacyViolation {
                description: format!(
                    "downlink payload `{}` exceeds the {budget}-byte budget",
                    r.description
                ),
                bytes: r.bytes,
            }),
        }
    }

    /// Panicking wrapper over [`check_no_uplink`](Self::check_no_uplink)
    /// for tests and demos that want a hard assertion.
    ///
    /// # Panics
    /// If any uplink was recorded.
    pub fn assert_no_uplink(&self) {
        if let Err(e) = self.check_no_uplink() {
            panic!("privacy invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_only_blocks_and_reports_uploads() {
        let mut ledger = PrivacyLedger::edge_only();
        let err = ledger.try_upload(4096, "raw sensor windows").unwrap_err();
        match err {
            CoreError::PrivacyViolation { bytes, description } => {
                assert_eq!(bytes, 4096);
                assert!(description.contains("raw"));
            }
            other => panic!("wrong error: {other}"),
        }
        // Nothing recorded; the invariant holds.
        assert_eq!(ledger.uplink_bytes(), 0);
        assert!(ledger.records().is_empty());
        ledger.assert_no_uplink();
    }

    #[test]
    fn downloads_always_allowed() {
        let mut ledger = PrivacyLedger::edge_only();
        ledger.record_download(5_000_000, "edge bundle");
        ledger.record_download(100, "config update");
        assert_eq!(ledger.downlink_bytes(), 5_000_100);
        assert_eq!(ledger.uplink_bytes(), 0);
        assert_eq!(ledger.records().len(), 2);
        ledger.assert_no_uplink();
    }

    #[test]
    fn baseline_policy_counts_uplink() {
        let mut ledger = PrivacyLedger::allow_uplink();
        ledger.try_upload(10_560, "one raw window").unwrap();
        ledger.try_upload(10_560, "one raw window").unwrap();
        assert_eq!(ledger.uplink_bytes(), 21_120);
        assert_eq!(ledger.policy(), PrivacyPolicy::AllowUplink);
    }

    #[test]
    #[should_panic(expected = "privacy invariant violated")]
    fn assert_no_uplink_panics_when_leaked() {
        let mut ledger = PrivacyLedger::allow_uplink();
        ledger.try_upload(1, "leak").unwrap();
        ledger.assert_no_uplink();
    }

    #[test]
    fn check_no_uplink_is_typed() {
        let mut ledger = PrivacyLedger::allow_uplink();
        assert!(ledger.check_no_uplink().is_ok());
        ledger.try_upload(7, "leak").unwrap();
        match ledger.check_no_uplink().unwrap_err() {
            CoreError::PrivacyViolation { bytes, .. } => assert_eq!(bytes, 7),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn downlink_budget_flags_oversized_payloads() {
        let mut ledger = PrivacyLedger::edge_only();
        ledger.record_download(5_000_000, "bundle at budget");
        assert!(ledger.check_downlink_budget(5_000_000).is_ok());
        ledger.record_download(5_000_001, "one over");
        match ledger.check_downlink_budget(5_000_000).unwrap_err() {
            CoreError::PrivacyViolation { bytes, description } => {
                assert_eq!(bytes, 5_000_001);
                assert!(description.contains("one over"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn default_is_edge_only() {
        assert_eq!(PrivacyLedger::default().policy(), PrivacyPolicy::EdgeOnly);
    }

    #[test]
    fn serde_roundtrip() {
        let mut ledger = PrivacyLedger::allow_uplink();
        ledger.record_download(10, "x");
        ledger.try_upload(20, "y").unwrap();
        let json = serde_json::to_string(&ledger).unwrap();
        let back: PrivacyLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(ledger, back);
    }
}
