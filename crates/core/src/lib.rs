//! # magneto-core
//!
//! The MAGNETO platform — the paper's primary contribution.
//!
//! MAGNETO (EDBT 2024) is an Edge-AI platform for Human Activity
//! Recognition organised around two phases:
//!
//! 1. **Cloud Initialization** ([`cloud`]): pre-train a Siamese embedding
//!    network on a large open corpus, fit the pre-processing function,
//!    select a compact support set, and package all three into an
//!    [`bundle::EdgeBundle`] (< 5 MB) for transfer to the
//!    device.
//! 2. **Edge Inference and Learning** ([`edge`]): the device performs
//!    millisecond inference with a Nearest-Class-Mean classifier
//!    ([`ncm`]) over embeddings, and learns *new* activities on-device
//!    ([`incremental`]) by jointly optimising contrastive and
//!    distillation losses over the support set plus freshly recorded
//!    data — without ever sending a byte back to the Cloud
//!    ([`privacy`]).
//!
//! The module map mirrors Figure 2 of the paper:
//!
//! | paper component | module |
//! |---|---|
//! | pre-processing function | `magneto-dsp` (re-exported via the bundle) |
//! | initial ML model (Siamese FC net) | `magneto-nn`, packaged in [`bundle`] |
//! | support set | [`support_set`] |
//! | NCM classifier | [`ncm`] |
//! | cloud initialization | [`cloud`] |
//! | edge inference | [`inference`], [`edge`] |
//! | incremental learning / calibration | [`incremental`], [`edge`] |
//! | privacy definition 1 | [`privacy`] |
//!
//! plus cross-cutting utilities: [`label`] (dynamic class registry),
//! [`metrics`] (accuracy/confusion/forgetting), [`error`].

pub mod bundle;
pub mod cloud;
pub mod delta;
pub mod drift;
pub mod edge;
pub mod embed;
pub mod error;
pub mod incremental;
pub mod inference;
pub mod label;
pub mod metrics;
pub mod ncm;
pub(crate) mod ncm_index;
pub mod precision;
pub mod privacy;
pub mod recalibrate;
pub mod sharing;
pub mod storage;
pub mod support_set;
pub mod timeline;
pub mod version;

pub use bundle::{BundleSizeReport, EdgeBundle};
pub use cloud::{CloudConfig, CloudInitializer};
pub use delta::{AppliedDelta, PersonalDelta};
pub use drift::{DriftMonitor, DriftStatus};
pub use edge::{EdgeConfig, EdgeDevice};
pub use embed::BatchEmbedder;
pub use error::CoreError;
pub use incremental::{
    IncrementalConfig, RollbackReason, UpdateOutcome, UpdateReport, ValidationConfig,
};
pub use inference::{infer_batch, BatchJob, InferenceView, LatencyStats, Prediction, SensorHealth};
pub use magneto_dsp::{GuardConfig, SignalQuality};
pub use label::LabelRegistry;
pub use metrics::ConfusionMatrix;
pub use ncm::{NcmClassifier, NcmDecision, NcmScratch};
pub use precision::{Precision, QuantizedSupportSet, ResidentModel, ResidentSupport};
pub use privacy::PrivacyLedger;
pub use recalibrate::{HealingStats, Recalibrator, SelfHealingConfig};
pub use sharing::ClassPack;
pub use timeline::TimelineBuilder;
pub use support_set::{SelectionStrategy, SupportSet};
pub use version::{Fnv64, Lineage, ModelVersion};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
