//! Device-to-device activity sharing — Cloud-free transfer of a learned
//! class.
//!
//! The paper's privacy model (Definition 1) forbids Edge → Cloud
//! transfers but says nothing against *peer-to-peer* exchange the user
//! initiates ("send my `gesture_hi` to my partner's phone over
//! Bluetooth/AirDrop"). A [`ClassPack`] is the minimal artefact that
//! makes a learned activity portable: the label plus its support
//! exemplars (pre-processed feature vectors — never raw sensor data).
//! The receiving device *learns* the pack exactly as if its own user had
//! recorded it, so its embedding space and other classes are preserved by
//! the usual incremental-update machinery.

use crate::error::CoreError;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use magneto_tensor::serialize as ts;
use serde::{Deserialize, Serialize};

const MAGIC: &[u8; 4] = b"MGCP";
const VERSION: u32 = 1;

/// A portable learned activity: label + feature exemplars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassPack {
    /// Class label.
    pub label: String,
    /// Pre-processed 80-d feature exemplars (no raw sensor data).
    pub exemplars: Vec<Vec<f32>>,
    /// Feature dimensionality (sanity-checked on import).
    pub feature_dim: usize,
}

impl ClassPack {
    /// Build a pack from exemplars.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] on empty exemplars,
    /// [`CoreError::InvalidConfig`] on ragged dimensions.
    pub fn new(label: impl Into<String>, exemplars: Vec<Vec<f32>>) -> Result<Self> {
        let label = label.into();
        let Some(first) = exemplars.first() else {
            return Err(CoreError::InsufficientData(format!(
                "no exemplars for class pack `{label}`"
            )));
        };
        let feature_dim = first.len();
        if feature_dim == 0 || exemplars.iter().any(|e| e.len() != feature_dim) {
            return Err(CoreError::InvalidConfig(
                "class pack exemplars have inconsistent dimensions".into(),
            ));
        }
        Ok(ClassPack {
            label,
            exemplars,
            feature_dim,
        })
    }

    /// Number of exemplars.
    pub fn len(&self) -> usize {
        self.exemplars.len()
    }

    /// `true` when no exemplars are present (cannot occur for a validly
    /// constructed pack).
    pub fn is_empty(&self) -> bool {
        self.exemplars.is_empty()
    }

    /// Wire size when serialised.
    pub fn encoded_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serialise for peer-to-peer transfer:
    ///
    /// ```text
    /// pack := "MGCP" | u32 version | string label | u32 count | f32vec*
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32 + self.exemplars.len() * (4 + self.feature_dim * 4));
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        ts::encode_string(&self.label, &mut buf);
        buf.put_u32_le(self.exemplars.len() as u32);
        for e in &self.exemplars {
            ts::encode_f32_vec(e, &mut buf);
        }
        buf.to_vec()
    }

    /// Decode a pack received from a peer.
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] on any framing or content problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 8 {
            return Err(CoreError::InvalidBundle("class pack truncated".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CoreError::InvalidBundle("not a class pack".into()));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(CoreError::InvalidBundle(format!(
                "unsupported class pack version {version}"
            )));
        }
        let label = ts::decode_string(&mut buf)
            .map_err(|e| CoreError::InvalidBundle(format!("pack label: {e}")))?;
        if buf.remaining() < 4 {
            return Err(CoreError::InvalidBundle("pack count truncated".into()));
        }
        let count = buf.get_u32_le();
        if count == 0 || count > 100_000 {
            return Err(CoreError::InvalidBundle(format!(
                "implausible exemplar count {count}"
            )));
        }
        let mut exemplars = Vec::with_capacity(count as usize);
        for _ in 0..count {
            exemplars.push(
                ts::decode_f32_vec(&mut buf)
                    .map_err(|e| CoreError::InvalidBundle(format!("pack exemplar: {e}")))?,
            );
        }
        ClassPack::new(label, exemplars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack() -> ClassPack {
        ClassPack::new(
            "gesture_hi",
            (0..10).map(|i| vec![i as f32; 80]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            ClassPack::new("x", vec![]),
            Err(CoreError::InsufficientData(_))
        ));
        assert!(matches!(
            ClassPack::new("x", vec![vec![1.0], vec![1.0, 2.0]]),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(ClassPack::new("x", vec![vec![]]).is_err());
        let p = pack();
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
        assert_eq!(p.feature_dim, 80);
    }

    #[test]
    fn roundtrip() {
        let p = pack();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.encoded_size());
        let back = ClassPack::from_bytes(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn corruption_rejected() {
        let p = pack();
        let good = p.to_bytes();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(ClassPack::from_bytes(&bad).is_err());
        assert!(ClassPack::from_bytes(&good[..good.len() - 3]).is_err());
        assert!(ClassPack::from_bytes(&[]).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(ClassPack::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn truncation_at_every_prefix_errors_without_panicking() {
        // The same never-panic property the EdgeBundle wire format is
        // held to: every possible truncation is a clean error.
        let good = pack().to_bytes();
        for cut in 0..good.len() {
            assert!(
                ClassPack::from_bytes(&good[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                good.len()
            );
        }
    }

    #[test]
    fn random_byte_flips_never_panic() {
        let good = pack().to_bytes();
        let mut rng = magneto_tensor::SeededRng::new(17);
        for _ in 0..200 {
            let mut bad = good.clone();
            let pos = (rng.next_u64() as usize) % bad.len();
            let bit = 1u8 << ((rng.next_u64() % 8) as u8);
            bad[pos] ^= bit;
            // Decoding corrupted input may fail or (for benign flips)
            // succeed; it must never panic.
            let _ = ClassPack::from_bytes(&bad);
        }
    }

    #[test]
    fn pack_is_compact() {
        // 10 exemplars x 80 f32 ≈ 3.2 KB — easily transferable over BLE.
        let p = pack();
        assert!(p.encoded_size() < 4 * 1024, "{}", p.encoded_size());
    }
}
