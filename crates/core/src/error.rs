//! Platform error type.

use magneto_dsp::DspError;
use magneto_nn::NnError;
use magneto_tensor::TensorError;
use std::fmt;

/// Errors surfaced by the MAGNETO platform.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Pre-processing failed.
    Dsp(DspError),
    /// Model training/inference failed.
    Nn(NnError),
    /// Low-level tensor failure.
    Tensor(TensorError),
    /// A class label was not found in the registry / support set.
    UnknownClass(String),
    /// An operation would have violated the privacy policy
    /// (Definition 1: no Edge → Cloud user data).
    PrivacyViolation {
        /// What was about to be uploaded.
        description: String,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// The bundle payload was malformed.
    InvalidBundle(String),
    /// Not enough data to perform the operation (e.g. learning a class
    /// from zero windows).
    InsufficientData(String),
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// A transactional on-device update failed validation and was rolled
    /// back (surfaced as an error by
    /// [`crate::incremental::UpdateOutcome::committed`]).
    UpdateRolledBack(crate::incremental::RollbackReason),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dsp(e) => write!(f, "preprocessing error: {e}"),
            CoreError::Nn(e) => write!(f, "model error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            CoreError::PrivacyViolation { description, bytes } => write!(
                f,
                "privacy violation: attempted to upload {bytes} bytes ({description}) from Edge to Cloud"
            ),
            CoreError::InvalidBundle(msg) => write!(f, "invalid bundle: {msg}"),
            CoreError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CoreError::UpdateRolledBack(reason) => {
                write!(f, "on-device update rolled back: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dsp(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for CoreError {
    fn from(e: DspError) -> Self {
        CoreError::Dsp(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DspError::NotFitted.into();
        assert!(e.to_string().contains("preprocessing"));
        let e: CoreError = NnError::Diverged { epoch: 1 }.into();
        assert!(e.to_string().contains("model"));
        let e: CoreError = TensorError::EmptyInput("x").into();
        assert!(e.to_string().contains("tensor"));
        assert!(std::error::Error::source(&e).is_some());
        let p = CoreError::PrivacyViolation {
            description: "raw windows".into(),
            bytes: 1024,
        };
        assert!(p.to_string().contains("1024"));
        assert!(p.to_string().contains("raw windows"));
        assert!(CoreError::UnknownClass("yoga".into()).to_string().contains("yoga"));
        assert!(std::error::Error::source(&p).is_none());
    }
}
