//! Embedding-drift monitoring: knowing *when* to recalibrate.
//!
//! The paper's calibration loop (§3.3) is user-triggered. A deployed
//! system also wants the converse signal: detect that the incoming data
//! has drifted away from the support-set distribution (new shoes, phone
//! moved to a jacket pocket, winter gait) and *suggest* recalibration.
//!
//! [`DriftMonitor`] keeps an exponentially-weighted mean of each window's
//! distance to its nearest prototype and compares it to the baseline
//! within-class distance observed at deployment. No raw data is stored —
//! just two scalars — so the monitor adds nothing to the privacy surface.

use serde::{Deserialize, Serialize};

/// Online drift detector over nearest-prototype distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitor {
    /// Baseline expected distance (calibrated at deployment).
    baseline: f32,
    /// Alert when the smoothed distance exceeds `baseline * ratio`.
    alert_ratio: f32,
    /// EWMA smoothing factor in `(0, 1]`; smaller = slower, steadier.
    alpha: f32,
    /// Current smoothed distance (`None` until the first observation).
    smoothed: Option<f32>,
    /// Observations consumed.
    observations: u64,
    /// Minimum observations before alerts can fire (warm-up).
    warmup: u64,
}

/// Current drift status.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftStatus {
    /// Not enough observations yet.
    WarmingUp,
    /// Smoothed distance within the expected band.
    Stable,
    /// Smoothed distance exceeds the alert threshold — recalibration
    /// advised.
    Drifted {
        /// Ratio of smoothed distance to baseline.
        severity: f32,
    },
}

impl DriftMonitor {
    /// Create a monitor.
    ///
    /// `baseline` is the expected nearest-prototype distance for in-
    /// distribution data (e.g. from
    /// [`ModelState::rejection_threshold`](crate::incremental::ModelState::rejection_threshold)
    /// with margin 1); `alert_ratio` is how many times that baseline the
    /// smoothed distance may reach before alerting (2–4 is reasonable).
    pub fn new(baseline: f32, alert_ratio: f32, alpha: f32, warmup: u64) -> Self {
        DriftMonitor {
            baseline: baseline.max(1e-6),
            alert_ratio: alert_ratio.max(1.0),
            alpha: alpha.clamp(1e-3, 1.0),
            smoothed: None,
            observations: 0,
            warmup,
        }
    }

    /// Feed one window's nearest-prototype distance; returns the status
    /// after the update.
    pub fn observe(&mut self, nearest_distance: f32) -> DriftStatus {
        self.observations += 1;
        let s = match self.smoothed {
            Some(prev) => prev + self.alpha * (nearest_distance - prev),
            None => nearest_distance,
        };
        self.smoothed = Some(s);
        self.status()
    }

    /// Current status without observing anything new.
    pub fn status(&self) -> DriftStatus {
        if self.observations < self.warmup {
            return DriftStatus::WarmingUp;
        }
        match self.smoothed {
            Some(s) if s > self.baseline * self.alert_ratio => DriftStatus::Drifted {
                severity: s / self.baseline,
            },
            Some(_) => DriftStatus::Stable,
            None => DriftStatus::WarmingUp,
        }
    }

    /// Smoothed nearest-prototype distance so far.
    pub fn smoothed_distance(&self) -> Option<f32> {
        self.smoothed
    }

    /// Observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Reset after a recalibration (new baseline).
    pub fn reset(&mut self, baseline: f32) {
        self.baseline = baseline.max(1e-6);
        self.smoothed = None;
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DriftMonitor {
        DriftMonitor::new(1.0, 2.0, 0.2, 5)
    }

    #[test]
    fn warms_up_before_alerting() {
        let mut m = monitor();
        for _ in 0..4 {
            // Even huge distances cannot alert during warm-up.
            assert_eq!(m.observe(100.0), DriftStatus::WarmingUp);
        }
        assert!(matches!(m.observe(100.0), DriftStatus::Drifted { .. }));
    }

    #[test]
    fn stable_on_baseline_data() {
        let mut m = monitor();
        for _ in 0..50 {
            m.observe(1.0);
        }
        assert_eq!(m.status(), DriftStatus::Stable);
        assert!((m.smoothed_distance().unwrap() - 1.0).abs() < 1e-5);
        assert_eq!(m.observations(), 50);
    }

    #[test]
    fn gradual_drift_eventually_alerts() {
        let mut m = monitor();
        let mut alerted_at = None;
        for i in 0..200 {
            // Distance grows 2% per window.
            let d = 1.0 * 1.02f32.powi(i);
            if let DriftStatus::Drifted { severity } = m.observe(d) {
                assert!(severity > 2.0);
                alerted_at = Some(i);
                break;
            }
        }
        let at = alerted_at.expect("should alert");
        // Alert fires after the EWMA crosses 2x baseline: after ~35
        // windows of 2% growth plus smoothing lag, not instantly and not
        // never.
        assert!((20..100).contains(&at), "alerted at {at}");
    }

    #[test]
    fn single_outlier_does_not_alert() {
        let mut m = monitor();
        for _ in 0..20 {
            m.observe(1.0);
        }
        // One spike of 5x baseline moves the EWMA to 1 + 0.2*4 = 1.8 < 2.
        let status = m.observe(5.0);
        assert_eq!(status, DriftStatus::Stable);
        // But sustained spikes do alert.
        let mut status = m.observe(5.0);
        for _ in 0..10 {
            status = m.observe(5.0);
        }
        assert!(matches!(status, DriftStatus::Drifted { .. }));
    }

    #[test]
    fn reset_clears_state() {
        let mut m = monitor();
        for _ in 0..10 {
            m.observe(10.0);
        }
        m.reset(2.0);
        assert_eq!(m.status(), DriftStatus::WarmingUp);
        assert_eq!(m.observations(), 0);
        assert!(m.smoothed_distance().is_none());
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut m = DriftMonitor::new(0.0, 0.5, 5.0, 0);
        // baseline floored, ratio floored to 1, alpha clamped to 1.
        assert!(matches!(m.observe(1.0), DriftStatus::Drifted { .. }));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = monitor();
        m.observe(1.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: DriftMonitor = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
