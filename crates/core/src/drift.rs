//! Embedding-drift monitoring: knowing *when* to recalibrate.
//!
//! The paper's calibration loop (§3.3) is user-triggered. A deployed
//! system also wants the converse signal: detect that the incoming data
//! has drifted away from the support-set distribution (new shoes, phone
//! moved to a jacket pocket, winter gait) and *suggest* recalibration.
//!
//! [`DriftMonitor`] keeps an exponentially-weighted mean of each window's
//! distance to its nearest prototype and compares it to the baseline
//! within-class distance observed at deployment. No raw data is stored —
//! just two scalars — so the monitor adds nothing to the privacy surface.
//!
//! The monitor is wired into [`crate::EdgeDevice`]'s streaming path (its
//! status rides on every [`crate::inference::Prediction`]) and drives the
//! automatic recalibration policy in [`crate::recalibrate`].

use crate::error::CoreError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Online drift detector over nearest-prototype distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitor {
    /// Baseline expected distance (calibrated at deployment).
    baseline: f32,
    /// Alert when the smoothed distance exceeds `baseline * ratio`.
    alert_ratio: f32,
    /// EWMA smoothing factor in `(0, 1]`; smaller = slower, steadier.
    alpha: f32,
    /// Current smoothed distance (`None` until the first observation).
    smoothed: Option<f32>,
    /// Observations consumed.
    observations: u64,
    /// Minimum observations before alerts can fire (warm-up).
    warmup: u64,
}

/// Current drift status.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftStatus {
    /// Not enough observations yet.
    WarmingUp,
    /// Smoothed distance within the expected band.
    Stable,
    /// Smoothed distance exceeds the alert threshold — recalibration
    /// advised.
    Drifted {
        /// Ratio of smoothed distance to baseline.
        severity: f32,
    },
}

impl DriftStatus {
    /// `true` when the status is [`DriftStatus::Drifted`].
    pub fn is_drifted(&self) -> bool {
        matches!(self, DriftStatus::Drifted { .. })
    }
}

impl std::fmt::Display for DriftStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftStatus::WarmingUp => write!(f, "warming-up"),
            DriftStatus::Stable => write!(f, "stable"),
            DriftStatus::Drifted { severity } => write!(f, "DRIFTED ({severity:.2}x baseline)"),
        }
    }
}

impl DriftMonitor {
    /// Create a monitor.
    ///
    /// `baseline` is the expected nearest-prototype distance for in-
    /// distribution data (e.g. from
    /// [`ModelState::rejection_threshold`](crate::incremental::ModelState::rejection_threshold)
    /// with margin 1); `alert_ratio` is how many times that baseline the
    /// smoothed distance may reach before alerting (2–4 is reasonable).
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when `baseline` is not finite and
    /// positive, `alert_ratio` is not finite or below 1 (which would
    /// alert on in-distribution data), or `alpha` is not finite or
    /// outside `(0, 1]`. A monitor misconfigured this way would either
    /// cry wolf on every window or never fire at all, so the mistake is
    /// surfaced at construction rather than silently clamped.
    pub fn new(baseline: f32, alert_ratio: f32, alpha: f32, warmup: u64) -> Result<Self> {
        if !baseline.is_finite() || baseline <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "drift baseline must be finite and positive, got {baseline}"
            )));
        }
        if !alert_ratio.is_finite() || alert_ratio < 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "drift alert ratio must be finite and >= 1, got {alert_ratio}"
            )));
        }
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "drift alpha must be finite and in (0, 1], got {alpha}"
            )));
        }
        Ok(DriftMonitor {
            baseline,
            alert_ratio,
            alpha,
            smoothed: None,
            observations: 0,
            warmup,
        })
    }

    /// Feed one window's nearest-prototype distance; returns the status
    /// after the update. Non-finite distances (a degraded window whose
    /// repair failed upstream) are ignored rather than poisoning the
    /// EWMA.
    pub fn observe(&mut self, nearest_distance: f32) -> DriftStatus {
        if !nearest_distance.is_finite() {
            return self.status();
        }
        self.observations += 1;
        let s = match self.smoothed {
            Some(prev) => prev + self.alpha * (nearest_distance - prev),
            None => nearest_distance,
        };
        self.smoothed = Some(s);
        self.status()
    }

    /// Current status without observing anything new.
    pub fn status(&self) -> DriftStatus {
        if self.observations < self.warmup {
            return DriftStatus::WarmingUp;
        }
        match self.smoothed {
            Some(s) if s > self.baseline * self.alert_ratio => DriftStatus::Drifted {
                severity: s / self.baseline,
            },
            Some(_) => DriftStatus::Stable,
            None => DriftStatus::WarmingUp,
        }
    }

    /// Smoothed nearest-prototype distance so far.
    pub fn smoothed_distance(&self) -> Option<f32> {
        self.smoothed
    }

    /// Observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The baseline distance alerts are measured against.
    pub fn baseline(&self) -> f32 {
        self.baseline
    }

    /// Reset after a recalibration (new baseline). Degenerate baselines
    /// are floored at a tiny positive value — reset happens mid-stream
    /// where an error has nowhere useful to go.
    pub fn reset(&mut self, baseline: f32) {
        self.baseline = if baseline.is_finite() {
            baseline.max(1e-6)
        } else {
            self.baseline
        };
        self.smoothed = None;
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DriftMonitor {
        DriftMonitor::new(1.0, 2.0, 0.2, 5).unwrap()
    }

    #[test]
    fn warms_up_before_alerting() {
        let mut m = monitor();
        for _ in 0..4 {
            // Even huge distances cannot alert during warm-up.
            assert_eq!(m.observe(100.0), DriftStatus::WarmingUp);
        }
        assert!(matches!(m.observe(100.0), DriftStatus::Drifted { .. }));
    }

    #[test]
    fn stable_on_baseline_data() {
        let mut m = monitor();
        for _ in 0..50 {
            m.observe(1.0);
        }
        assert_eq!(m.status(), DriftStatus::Stable);
        assert!((m.smoothed_distance().unwrap() - 1.0).abs() < 1e-5);
        assert_eq!(m.observations(), 50);
        assert_eq!(m.baseline(), 1.0);
    }

    #[test]
    fn gradual_drift_eventually_alerts() {
        let mut m = monitor();
        let mut alerted_at = None;
        for i in 0..200 {
            // Distance grows 2% per window.
            let d = 1.0 * 1.02f32.powi(i);
            if let DriftStatus::Drifted { severity } = m.observe(d) {
                assert!(severity > 2.0);
                alerted_at = Some(i);
                break;
            }
        }
        let at = alerted_at.expect("should alert");
        // Alert fires after the EWMA crosses 2x baseline: after ~35
        // windows of 2% growth plus smoothing lag, not instantly and not
        // never.
        assert!((20..100).contains(&at), "alerted at {at}");
    }

    #[test]
    fn single_outlier_does_not_alert() {
        let mut m = monitor();
        for _ in 0..20 {
            m.observe(1.0);
        }
        // One spike of 5x baseline moves the EWMA to 1 + 0.2*4 = 1.8 < 2.
        let status = m.observe(5.0);
        assert_eq!(status, DriftStatus::Stable);
        // But sustained spikes do alert.
        let mut status = m.observe(5.0);
        for _ in 0..10 {
            status = m.observe(5.0);
        }
        assert!(matches!(status, DriftStatus::Drifted { .. }));
    }

    #[test]
    fn non_finite_distances_are_ignored() {
        let mut m = monitor();
        for _ in 0..10 {
            m.observe(1.0);
        }
        let before = m.smoothed_distance();
        assert_eq!(m.observe(f32::NAN), DriftStatus::Stable);
        assert_eq!(m.observe(f32::INFINITY), DriftStatus::Stable);
        assert_eq!(m.smoothed_distance(), before);
        assert_eq!(m.observations(), 10);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = monitor();
        for _ in 0..10 {
            m.observe(10.0);
        }
        m.reset(2.0);
        assert_eq!(m.status(), DriftStatus::WarmingUp);
        assert_eq!(m.observations(), 0);
        assert!(m.smoothed_distance().is_none());
        assert_eq!(m.baseline(), 2.0);
        // A non-finite reset baseline keeps the previous one.
        m.reset(f32::NAN);
        assert_eq!(m.baseline(), 2.0);
    }

    #[test]
    fn degenerate_parameters_are_rejected_with_typed_errors() {
        // baseline: zero, negative, NaN, infinite.
        for bad in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
            assert!(
                matches!(
                    DriftMonitor::new(bad, 2.0, 0.2, 5),
                    Err(CoreError::InvalidConfig(_))
                ),
                "baseline {bad} accepted"
            );
        }
        // alert_ratio: below 1 (would alert on in-distribution data),
        // NaN, infinite.
        for bad in [0.5f32, 0.0, -2.0, f32::NAN, f32::INFINITY] {
            assert!(
                matches!(
                    DriftMonitor::new(1.0, bad, 0.2, 5),
                    Err(CoreError::InvalidConfig(_))
                ),
                "alert_ratio {bad} accepted"
            );
        }
        // alpha: outside (0, 1], NaN.
        for bad in [0.0f32, -0.1, 1.5, f32::NAN] {
            assert!(
                matches!(
                    DriftMonitor::new(1.0, 2.0, bad, 5),
                    Err(CoreError::InvalidConfig(_))
                ),
                "alpha {bad} accepted"
            );
        }
        // Boundary values that must be accepted.
        assert!(DriftMonitor::new(1e-9, 1.0, 1.0, 0).is_ok());
    }

    #[test]
    fn severity_is_monotone_in_smoothed_distance() {
        // Property (grid-checked): for fixed parameters, a strictly
        // larger smoothed distance never reports a smaller severity, and
        // the Stable -> Drifted transition is a single threshold.
        let mut last_severity = 0.0f32;
        let mut seen_drifted = false;
        for step in 1..=60 {
            let d = step as f32 * 0.1; // 0.1 .. 6.0
            let mut m = DriftMonitor::new(1.0, 2.0, 1.0, 0).unwrap();
            match m.observe(d) {
                DriftStatus::Drifted { severity } => {
                    assert!(
                        severity >= last_severity,
                        "severity fell from {last_severity} to {severity} at d={d}"
                    );
                    last_severity = severity;
                    seen_drifted = true;
                }
                DriftStatus::Stable => {
                    assert!(!seen_drifted, "went back to Stable after Drifted at d={d}");
                }
                DriftStatus::WarmingUp => unreachable!("warmup is 0"),
            }
        }
        assert!(seen_drifted);
    }

    #[test]
    fn never_alerts_during_warmup_property() {
        // Property (grid-checked): no distance sequence, however
        // extreme, produces an alert before `warmup` observations.
        for warmup in [1u64, 3, 8, 32] {
            for scale in [1.0f32, 100.0, 1e6] {
                let mut m = DriftMonitor::new(1.0, 1.0, 1.0, warmup).unwrap();
                for i in 0..warmup {
                    let status = m.observe(scale * (i + 1) as f32);
                    if i + 1 < warmup {
                        assert_eq!(
                            status,
                            DriftStatus::WarmingUp,
                            "alerted at obs {i} with warmup {warmup}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = monitor();
        m.observe(1.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: DriftMonitor = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        // A mid-drift monitor (alerting state) survives persistence too.
        for _ in 0..20 {
            m.observe(9.0);
        }
        assert!(m.status().is_drifted());
        let bytes = serde_json::to_vec(&m).unwrap();
        let back: DriftMonitor = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.status(), m.status());
        assert_eq!(back, m);
    }
}
