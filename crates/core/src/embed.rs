//! Batched embedding: many feature windows through the backbone in one
//! forward pass.
//!
//! Everywhere the platform used to loop `embed_one` over a backlog —
//! prototype construction, rejection-threshold calibration, streaming
//! catch-up after a stall — now stacks the rows into one `(batch, 80)`
//! matrix and runs a single matmul chain per layer. A [`BatchEmbedder`]
//! owns the feature staging matrix and the kernel [`Workspace`], so
//! repeated batches reuse the same allocations.

use crate::error::CoreError;
use crate::ncm::{NcmDecision, NcmScratch};
use crate::precision::ResidentModel;
use crate::Result;
use magneto_tensor::{Matrix, Workspace};

/// Reusable batched-embedding state: a staging matrix for stacked
/// feature rows plus the scratch pool the forward kernels draw from.
/// Classification scratch rides along so the batch serve path
/// ([`crate::inference::infer_batch`]) reuses one set of NCM buffers
/// across every job of every batch.
#[derive(Debug, Default)]
pub struct BatchEmbedder {
    ws: Workspace,
    features: Matrix,
    ncm_scratch: NcmScratch,
    decision: NcmDecision,
}

impl BatchEmbedder {
    /// An empty embedder; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        BatchEmbedder::default()
    }

    /// The micro-kernel backend this embedder's forward GEMMs dispatch
    /// to (scalar / avx2 / neon).
    pub fn backend(&self) -> magneto_tensor::Backend {
        self.ws.backend()
    }

    /// Embed a slice of feature rows in one forward pass, writing the
    /// `(rows.len(), emb_dim)` embedding batch into `out`.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] on an empty slice or ragged rows;
    /// embedding failures are propagated.
    pub fn embed_rows(
        &mut self,
        model: &ResidentModel,
        rows: &[Vec<f32>],
        out: &mut Matrix,
    ) -> Result<()> {
        if rows.is_empty() {
            return Err(CoreError::InsufficientData(
                "no feature rows to embed".into(),
            ));
        }
        let dim = rows[0].len();
        self.features.resize(rows.len(), dim);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(CoreError::InsufficientData(format!(
                    "ragged feature rows: row 0 has {dim} features, row {i} has {}",
                    row.len()
                )));
            }
            self.features.row_mut(i).copy_from_slice(row);
        }
        model.embed_into(&self.features, out, &mut self.ws)?;
        Ok(())
    }

    /// Embed an already-stacked feature matrix in one forward pass.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_matrix(
        &mut self,
        model: &ResidentModel,
        features: &Matrix,
        out: &mut Matrix,
    ) -> Result<()> {
        model.embed_into(features, out, &mut self.ws)?;
        Ok(())
    }

    /// Borrow the staging matrix mutably: resize it, fill rows in place
    /// (e.g. via `PreprocessingPipeline::process_into`), then call
    /// [`embed_staged`](Self::embed_staged).
    pub fn staging(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Embed whatever is currently staged in [`staging`](Self::staging).
    ///
    /// # Errors
    /// Shape mismatch on malformed staged input.
    pub fn embed_staged(&mut self, model: &ResidentModel, out: &mut Matrix) -> Result<()> {
        model.embed_into(&self.features, out, &mut self.ws)?;
        Ok(())
    }

    /// Disjoint borrows of the classification scratch and the reusable
    /// decision (the `classify_into` argument pair).
    pub(crate) fn classify_parts(&mut self) -> (&mut NcmScratch, &mut NcmDecision) {
        (&mut self.ncm_scratch, &mut self.decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;
    use magneto_nn::{Mlp, SiameseNetwork};
    use magneto_tensor::SeededRng;

    fn model() -> ResidentModel {
        let mut rng = SeededRng::new(7);
        ResidentModel::from(SiameseNetwork::new(
            Mlp::new(&[6, 12, 4], &mut rng).unwrap(),
            1.0,
        ))
    }

    #[test]
    fn batch_matches_per_sample_embedding() {
        let model = model();
        let mut rng = SeededRng::new(8);
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|_| (0..6).map(|_| rng.normal()).collect())
            .collect();
        let mut embedder = BatchEmbedder::new();
        let mut out = Matrix::default();
        embedder.embed_rows(&model, &rows, &mut out).unwrap();
        assert_eq!(out.shape(), (9, 4));
        for (i, row) in rows.iter().enumerate() {
            let single = model.embed_one(row).unwrap();
            assert_eq!(out.row(i), single.as_slice(), "row {i}");
        }
    }

    #[test]
    fn int8_batch_matches_int8_per_sample_embedding() {
        let model = model().into_precision(Precision::Int8).unwrap();
        let mut rng = SeededRng::new(9);
        let rows: Vec<Vec<f32>> = (0..7)
            .map(|_| (0..6).map(|_| rng.normal()).collect())
            .collect();
        let mut embedder = BatchEmbedder::new();
        let mut out = Matrix::default();
        embedder.embed_rows(&model, &rows, &mut out).unwrap();
        assert_eq!(out.shape(), (7, 4));
        for (i, row) in rows.iter().enumerate() {
            let single = model.embed_one(row).unwrap();
            assert_eq!(out.row(i), single.as_slice(), "row {i}");
        }
    }

    #[test]
    fn rejects_empty_and_ragged_batches() {
        let model = model();
        let mut embedder = BatchEmbedder::new();
        let mut out = Matrix::default();
        assert!(matches!(
            embedder.embed_rows(&model, &[], &mut out),
            Err(CoreError::InsufficientData(_))
        ));
        let ragged = vec![vec![0.0; 6], vec![0.0; 5]];
        assert!(matches!(
            embedder.embed_rows(&model, &ragged, &mut out),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn staged_embedding_reuses_buffers() {
        let model = model();
        let mut embedder = BatchEmbedder::new();
        let mut out = Matrix::default();
        for round in 0..3 {
            let staged = embedder.staging();
            staged.resize(4, 6);
            for r in 0..4 {
                for v in staged.row_mut(r) {
                    *v = round as f32 * 0.1;
                }
            }
            embedder.embed_staged(&model, &mut out).unwrap();
            assert_eq!(out.shape(), (4, 4));
        }
    }
}
