//! Persistent on-device bundle storage.
//!
//! A real MAGNETO phone must survive app restarts: the (possibly
//! personalised) bundle is persisted locally and reloaded at start-up.
//! Persistence is strictly local — writing the bundle to the device's own
//! storage is not a privacy event.
//!
//! Format: the bundle's wire bytes wrapped with a magic, a format flag and
//! a CRC-32 so a half-written file (battery died mid-save) is detected
//! and rejected instead of deserialised into garbage.

use crate::bundle::EdgeBundle;
use crate::error::CoreError;
use crate::Result;
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MGST";

/// The 256-entry CRC-32 lookup table (polynomial `0xEDB8_8320`,
/// reflected), computed once at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected) — hand-rolled so no new dependency is
/// needed for a checksum. Table-driven: one lookup per input byte
/// instead of the eight shift/xor rounds of the bitwise form.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ CRC32_TABLE[idx as usize];
    }
    !crc
}

/// Save a bundle to `path` atomically (write to a sibling temp file, then
/// rename), with checksum framing.
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_bundle(bundle: &EdgeBundle, path: &Path, quantized: bool) -> Result<()> {
    let payload = bundle.to_bytes(quantized);
    let mut framed = Vec::with_capacity(payload.len() + 12);
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    let io_err = |e: std::io::Error| CoreError::InvalidBundle(format!("storage: {e}"));
    {
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&framed).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Load a bundle previously written by [`save_bundle`].
///
/// # Errors
/// [`CoreError::InvalidBundle`] on I/O failure, bad framing, checksum
/// mismatch, or bundle decode failure.
pub fn load_bundle(path: &Path) -> Result<EdgeBundle> {
    let bytes = fs::read(path)
        .map_err(|e| CoreError::InvalidBundle(format!("storage read {}: {e}", path.display())))?;
    if bytes.len() < 12 || &bytes[..4] != MAGIC {
        return Err(CoreError::InvalidBundle("not a MAGNETO storage file".into()));
    }
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let payload = bytes
        .get(12..12 + len)
        .ok_or_else(|| CoreError::InvalidBundle("storage file truncated".into()))?;
    if crc32(payload) != stored_crc {
        return Err(CoreError::InvalidBundle(
            "storage checksum mismatch (corrupt or partially written file)".into(),
        ));
    }
    EdgeBundle::from_bytes(payload)
}

/// Path of the kernel-plan cache that rides next to a bundle: the
/// bundle path with a `.plan.json` extension appended to its file stem.
///
/// The plan is device-local tuning state (tile sizes, thread count), not
/// model state — it never travels with the bundle and carries nothing
/// derived from user data, so caching it on disk is not a privacy event.
pub fn kernel_plan_path(bundle_path: &Path) -> std::path::PathBuf {
    let mut name = bundle_path
        .file_stem()
        .unwrap_or_else(|| std::ffi::OsStr::new("magneto"))
        .to_os_string();
    name.push(".plan.json");
    bundle_path.with_file_name(name)
}

/// Persist an autotuned [`KernelPlan`](magneto_tensor::KernelPlan) next
/// to the bundle at `bundle_path` (atomic write, same discipline as
/// [`save_bundle`]).
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_kernel_plan(plan: &magneto_tensor::KernelPlan, bundle_path: &Path) -> Result<()> {
    plan.save(&kernel_plan_path(bundle_path))
        .map_err(|e| CoreError::InvalidBundle(format!("kernel plan save: {e}")))
}

/// Load the kernel plan cached next to the bundle at `bundle_path`,
/// falling back to the host default (and never failing) when the cache is
/// missing, corrupt, or from an incompatible plan version — a stale or
/// damaged tuning cache must never prevent the model from loading.
pub fn load_kernel_plan(bundle_path: &Path) -> magneto_tensor::KernelPlan {
    magneto_tensor::KernelPlan::load_or_default(&kernel_plan_path(bundle_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{CloudConfig, CloudInitializer};
    use magneto_sensors::{GeneratorConfig, SensorDataset};

    fn bundle() -> EdgeBundle {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 2;
        CloudInitializer::new(cfg).pretrain(&corpus).unwrap().0
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("magneto_storage_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// The pre-table bitwise implementation, kept as the test oracle.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn table_crc_matches_bitwise_reference() {
        let mut rng = magneto_tensor::SeededRng::new(99);
        for len in [0usize, 1, 2, 3, 7, 64, 255, 1000] {
            let data: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            assert_eq!(crc32(&data), crc32_bitwise(&data), "len {len}");
        }
        // All 256 single-byte inputs.
        for b in 0u8..=255 {
            assert_eq!(crc32(&[b]), crc32_bitwise(&[b]), "byte {b}");
        }
    }

    #[test]
    fn load_bundle_never_panics_on_truncation_or_flips() {
        let b = bundle();
        let path = temp_path("fuzz");
        save_bundle(&b, &path, true).unwrap();
        let good = fs::read(&path).unwrap();

        // Truncation at every prefix: always a clean error.
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(load_bundle(&path).is_err(), "prefix {cut} loaded");
        }

        // Random byte flips: the CRC catches essentially all of them; a
        // flip must never panic either way.
        let mut rng = magneto_tensor::SeededRng::new(7);
        for _ in 0..100 {
            let mut bad = good.clone();
            let pos = (rng.next_u64() as usize) % bad.len();
            bad[pos] ^= 1 << (rng.next_u64() % 8);
            fs::write(&path, &bad).unwrap();
            let _ = load_bundle(&path);
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_roundtrip_both_precisions() {
        let b = bundle();
        for (quantized, name) in [(false, "f32"), (true, "i8")] {
            let path = temp_path(name);
            save_bundle(&b, &path, quantized).unwrap();
            let loaded = load_bundle(&path).unwrap();
            assert_eq!(loaded.registry, b.registry);
            assert_eq!(loaded.support_set, b.support_set);
            if !quantized {
                assert_eq!(loaded, b);
            }
            fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn corruption_is_detected() {
        let b = bundle();
        let path = temp_path("corrupt");
        save_bundle(&b, &path, false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = load_bundle(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let b = bundle();
        let path = temp_path("trunc");
        save_bundle(&b, &path, false).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_bundle(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_plan_rides_next_to_bundle() {
        let bundle_path = temp_path("with_plan");
        let plan_path = kernel_plan_path(&bundle_path);
        assert!(plan_path.to_string_lossy().ends_with(".plan.json"));
        assert_eq!(plan_path.parent(), bundle_path.parent());

        let plan = magneto_tensor::KernelPlan::inline().with_threads(2);
        save_kernel_plan(&plan, &bundle_path).unwrap();
        assert_eq!(load_kernel_plan(&bundle_path), plan);
        fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn missing_or_corrupt_plan_falls_back_to_default() {
        let bundle_path = temp_path("plan_fallback");
        let plan_path = kernel_plan_path(&bundle_path);
        fs::remove_file(&plan_path).ok();
        // Missing cache: host default, no error.
        assert_eq!(
            load_kernel_plan(&bundle_path),
            magneto_tensor::KernelPlan::host_default()
        );
        // Corrupt cache: same fallback.
        fs::write(&plan_path, b"{ not json").unwrap();
        assert_eq!(
            load_kernel_plan(&bundle_path),
            magneto_tensor::KernelPlan::host_default()
        );
        fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn wrong_file_rejected() {
        let path = temp_path("wrong");
        fs::write(&path, b"definitely not a bundle").unwrap();
        assert!(load_bundle(&path).is_err());
        fs::remove_file(&path).ok();
        assert!(load_bundle(Path::new("/nonexistent/magneto")).is_err());
    }
}
