//! Persistent on-device bundle storage.
//!
//! A real MAGNETO phone must survive app restarts: the (possibly
//! personalised) bundle is persisted locally and reloaded at start-up.
//! Persistence is strictly local — writing the bundle to the device's own
//! storage is not a privacy event.
//!
//! Format: the bundle's wire bytes wrapped with a magic, a format flag and
//! a CRC-32 so a half-written file (battery died mid-save) is detected
//! and rejected instead of deserialised into garbage.

use crate::bundle::EdgeBundle;
use crate::error::CoreError;
use crate::Result;
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MGST";

/// CRC-32 (IEEE 802.3, reflected) — hand-rolled so no new dependency is
/// needed for a 20-line checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Save a bundle to `path` atomically (write to a sibling temp file, then
/// rename), with checksum framing.
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_bundle(bundle: &EdgeBundle, path: &Path, quantized: bool) -> Result<()> {
    let payload = bundle.to_bytes(quantized);
    let mut framed = Vec::with_capacity(payload.len() + 12);
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    let io_err = |e: std::io::Error| CoreError::InvalidBundle(format!("storage: {e}"));
    {
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&framed).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Load a bundle previously written by [`save_bundle`].
///
/// # Errors
/// [`CoreError::InvalidBundle`] on I/O failure, bad framing, checksum
/// mismatch, or bundle decode failure.
pub fn load_bundle(path: &Path) -> Result<EdgeBundle> {
    let bytes = fs::read(path)
        .map_err(|e| CoreError::InvalidBundle(format!("storage read {}: {e}", path.display())))?;
    if bytes.len() < 12 || &bytes[..4] != MAGIC {
        return Err(CoreError::InvalidBundle("not a MAGNETO storage file".into()));
    }
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let payload = bytes
        .get(12..12 + len)
        .ok_or_else(|| CoreError::InvalidBundle("storage file truncated".into()))?;
    if crc32(payload) != stored_crc {
        return Err(CoreError::InvalidBundle(
            "storage checksum mismatch (corrupt or partially written file)".into(),
        ));
    }
    EdgeBundle::from_bytes(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{CloudConfig, CloudInitializer};
    use magneto_sensors::{GeneratorConfig, SensorDataset};

    fn bundle() -> EdgeBundle {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 2;
        CloudInitializer::new(cfg).pretrain(&corpus).unwrap().0
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("magneto_storage_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn save_load_roundtrip_both_precisions() {
        let b = bundle();
        for (quantized, name) in [(false, "f32"), (true, "i8")] {
            let path = temp_path(name);
            save_bundle(&b, &path, quantized).unwrap();
            let loaded = load_bundle(&path).unwrap();
            assert_eq!(loaded.registry, b.registry);
            assert_eq!(loaded.support_set, b.support_set);
            if !quantized {
                assert_eq!(loaded, b);
            }
            fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn corruption_is_detected() {
        let b = bundle();
        let path = temp_path("corrupt");
        save_bundle(&b, &path, false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = load_bundle(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let b = bundle();
        let path = temp_path("trunc");
        save_bundle(&b, &path, false).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_bundle(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_file_rejected() {
        let path = temp_path("wrong");
        fs::write(&path, b"definitely not a bundle").unwrap();
        assert!(load_bundle(&path).is_err());
        fs::remove_file(&path).ok();
        assert!(load_bundle(Path::new("/nonexistent/magneto")).is_err());
    }
}
