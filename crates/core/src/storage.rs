//! Persistent on-device bundle storage.
//!
//! A real MAGNETO phone must survive app restarts: the (possibly
//! personalised) bundle is persisted locally and reloaded at start-up.
//! Persistence is strictly local — writing the bundle to the device's own
//! storage is not a privacy event.
//!
//! Format: the bundle's wire bytes wrapped with a magic, a format flag and
//! a CRC-32 so a half-written file (battery died mid-save) is detected
//! and rejected instead of deserialised into garbage.
//!
//! Crash safety: [`save_bundle`] is a two-phase journaled commit. The new
//! frame is first written to a uniquely named temp file (fsync'd), then
//! published as a write-ahead `<name>.journal` sibling (fsync'd parent
//! dir), and only then renamed over the destination. [`load_bundle`]
//! rolls a complete, checksum-valid journal forward and discards a torn
//! one, so a power cut at *any* byte of the save leaves the device able
//! to load either the old or the new bundle — never neither.

use crate::bundle::EdgeBundle;
use crate::error::CoreError;
use crate::version::ModelVersion;
use crate::Result;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"MGST";
/// Versioned frame magic: the framed payload is prefixed with the
/// [`ModelVersion`] it belongs to, so bundles and spool files carry
/// their base-model version on disk and validate it on load. Legacy
/// `MGST` frames keep their exact byte layout and read back as v0.
const MAGIC_VERSIONED: &[u8; 4] = b"MGSV";

/// The 256-entry CRC-32 lookup table (polynomial `0xEDB8_8320`,
/// reflected), computed once at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected) — hand-rolled so no new dependency is
/// needed for a checksum. Table-driven: one lookup per input byte
/// instead of the eight shift/xor rounds of the bitwise form.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ CRC32_TABLE[idx as usize];
    }
    !crc
}

/// Monotonic counter distinguishing concurrent saves within one process.
static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Serialises the journal-publish + commit renames within this process so
/// two concurrent saves to the same path cannot interleave their
/// journals. Cross-process exclusion is the caller's concern (a phone has
/// exactly one MAGNETO process).
static COMMIT_LOCK: Mutex<()> = Mutex::new(());

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::InvalidBundle(format!("storage: {e}"))
}

/// Sibling path with `.suffix` appended to the *full* file name (not
/// substituted for the extension — `model.v1` and `model.v2` must never
/// share a scratch file, which the old `with_extension("tmp")` scheme
/// allowed).
fn appended_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .unwrap_or_else(|| std::ffi::OsStr::new("magneto"))
        .to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// The write-ahead journal that rides next to a bundle at `path`.
pub fn journal_path(path: &Path) -> PathBuf {
    appended_suffix(path, ".journal")
}

/// A temp path unique to this (process, save) pair.
fn unique_tmp_path(path: &Path) -> PathBuf {
    let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
    appended_suffix(path, &format!(".tmp.{}.{seq}", std::process::id()))
}

/// Flush the directory containing `path` so a just-renamed entry survives
/// power loss (a rename is only durable once its directory is).
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Directories cannot be opened for writing; a read handle suffices
    // for fsync on every Unix. On platforms where opening a directory
    // fails (e.g. Windows), skip — rename durability is best-effort there.
    if let Ok(dir) = fs::File::open(parent) {
        dir.sync_all()?;
    }
    Ok(())
}

/// Wrap `payload` in the `MGST` + CRC-32 + length frame.
fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + 12);
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Wrap `payload` in the versioned `MGSV` frame: the framed body is
/// `u32 version || payload`, CRC-covered as a whole. A v0 version falls
/// back to the legacy `MGST` frame byte-verbatim, so unversioned
/// artefacts never change on disk.
fn frame_payload_versioned(payload: &[u8], version: ModelVersion) -> Vec<u8> {
    if version.is_legacy() {
        return frame_payload(payload);
    }
    let mut body = Vec::with_capacity(payload.len() + 4);
    body.extend_from_slice(&version.0.to_le_bytes());
    body.extend_from_slice(payload);
    let mut framed = Vec::with_capacity(body.len() + 12);
    framed.extend_from_slice(MAGIC_VERSIONED);
    framed.extend_from_slice(&crc32(&body).to_le_bytes());
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(&body);
    framed
}

/// Validate a frame (either magic) and return the payload slice plus
/// the version it carries, or `None` if the bytes are torn, truncated,
/// or corrupt. Legacy `MGST` frames report [`ModelVersion::LEGACY`].
fn unframe(bytes: &[u8]) -> Option<(&[u8], ModelVersion)> {
    if bytes.len() < 12 {
        return None;
    }
    let versioned = match &bytes[..4] {
        m if m == MAGIC => false,
        m if m == MAGIC_VERSIONED => true,
        _ => return None,
    };
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let body = bytes.get(12..12 + len)?;
    if crc32(body) != stored_crc {
        return None;
    }
    if !versioned {
        return Some((body, ModelVersion::LEGACY));
    }
    if body.len() < 4 {
        return None;
    }
    let version = ModelVersion(u32::from_le_bytes([body[0], body[1], body[2], body[3]]));
    let payload = &body[4..];
    // A versioned frame claiming v0 would be indistinguishable from a
    // legacy one on read-back; the writer never produces it.
    (!version.is_legacy()).then_some((payload, version))
}

/// Save an arbitrary payload to `path` crash-safely, wrapped in the same
/// `MGST` + CRC-32 frame and two-phase journaled commit as
/// [`save_bundle`]. This is the generic persistence primitive the tiered
/// fleet session store uses to page cold per-user deltas out to disk —
/// anything written here survives a power cut at any byte with
/// old-or-new (never torn) semantics.
///
/// Protocol (each step durable before the next):
/// 1. write the frame to a uniquely named `…tmp.<pid>.<seq>` sibling and
///    fsync it — a crash here leaves only ignorable scratch;
/// 2. rename it to the write-ahead [`journal_path`] and fsync the parent
///    dir — from here the *new* payload is durable and recovery rolls it
///    forward;
/// 3. rename the journal over `path` and fsync the parent dir again.
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_framed(payload: &[u8], path: &Path) -> Result<()> {
    save_framed_versioned(payload, ModelVersion::LEGACY, path)
}

/// [`save_framed`] with a [`ModelVersion`] stamped into the frame, so
/// the artefact carries its base-model version on disk and
/// [`load_framed_versioned`] can validate it. A legacy (v0) version
/// writes the exact legacy `MGST` frame.
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_framed_versioned(payload: &[u8], version: ModelVersion, path: &Path) -> Result<()> {
    let framed = frame_payload_versioned(payload, version);
    let tmp = unique_tmp_path(path);
    {
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&framed).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    let journal = journal_path(path);
    let guard = COMMIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let committed = fs::rename(&tmp, &journal)
        .and_then(|()| sync_parent_dir(path))
        .and_then(|()| fs::rename(&journal, path))
        .and_then(|()| sync_parent_dir(path));
    drop(guard);
    committed.map_err(io_err)
}

/// Load a payload previously written by [`save_framed`], first
/// completing any interrupted save via [`recover_journal`].
///
/// # Errors
/// [`CoreError::InvalidBundle`] on I/O failure, bad framing, or checksum
/// mismatch.
pub fn load_framed(path: &Path) -> Result<Vec<u8>> {
    load_framed_versioned(path).map(|(payload, _)| payload)
}

/// Load a payload plus the [`ModelVersion`] its frame carries. Legacy
/// `MGST` frames report [`ModelVersion::LEGACY`].
///
/// # Errors
/// [`CoreError::InvalidBundle`] on I/O failure, bad framing, or checksum
/// mismatch.
pub fn load_framed_versioned(path: &Path) -> Result<(Vec<u8>, ModelVersion)> {
    recover_journal(path)?;
    let bytes = fs::read(path)
        .map_err(|e| CoreError::InvalidBundle(format!("storage read {}: {e}", path.display())))?;
    unframe(&bytes)
        .map(|(payload, version)| (payload.to_vec(), version))
        .ok_or_else(|| {
            CoreError::InvalidBundle(
                "not a MAGNETO storage file, or corrupt / partially written (checksum mismatch)"
                    .into(),
            )
        })
}

/// Save a bundle to `path` crash-safely, with checksum framing — the
/// [`save_framed`] commit protocol over the bundle's wire bytes.
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_bundle(bundle: &EdgeBundle, path: &Path, quantized: bool) -> Result<()> {
    // A versioned bundle stamps its version into the frame, so the
    // on-disk artefact is self-describing even before decode; a legacy
    // bundle keeps the byte-exact legacy frame.
    save_framed_versioned(&bundle.to_bytes(quantized), bundle.version(), path)
}

/// Inspect `path`'s write-ahead journal, rolling a complete one forward
/// over `path` and deleting a torn one. Returns `true` if a journal was
/// rolled forward. Called automatically by [`load_bundle`]; exposed for
/// start-up housekeeping that wants recovery without a full decode.
///
/// # Errors
/// [`CoreError::InvalidBundle`] if the roll-forward rename itself fails.
pub fn recover_journal(path: &Path) -> Result<bool> {
    let journal = journal_path(path);
    let Ok(bytes) = fs::read(&journal) else {
        return Ok(false); // no journal: the common, clean case
    };
    if unframe(&bytes).is_some() {
        // Complete journal: the save reached its durable point but the
        // final rename never landed. Finish the commit.
        let guard = COMMIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let renamed = fs::rename(&journal, path);
        drop(guard);
        match renamed {
            Ok(()) => {
                sync_parent_dir(path).map_err(io_err)?;
                Ok(true)
            }
            // A concurrent recover/save won the race; nothing to do.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err(e)),
        }
    } else {
        // Torn journal: the crash hit mid-write, the old bundle at `path`
        // is still the durable truth. Discard the debris.
        fs::remove_file(&journal).ok();
        Ok(false)
    }
}

/// Load a bundle previously written by [`save_bundle`], first completing
/// any interrupted save via [`recover_journal`].
///
/// # Errors
/// [`CoreError::InvalidBundle`] on I/O failure, bad framing, checksum
/// mismatch, bundle decode failure, or a frame whose stamped version
/// disagrees with the decoded bundle's lineage.
pub fn load_bundle(path: &Path) -> Result<EdgeBundle> {
    let (payload, frame_version) = load_framed_versioned(path)?;
    let bundle = EdgeBundle::from_bytes(&payload)?;
    // A versioned frame must agree with the bundle inside it. Legacy
    // frames (v0) may wrap anything — including versioned bundles saved
    // through the generic save_framed path.
    if !frame_version.is_legacy() && frame_version != bundle.version() {
        return Err(CoreError::InvalidBundle(format!(
            "storage frame is stamped {frame_version} but the bundle inside is {}",
            bundle.version()
        )));
    }
    Ok(bundle)
}

/// Path of the kernel-plan cache that rides next to a bundle: the
/// bundle path with a `.plan.json` extension appended to its file stem.
///
/// The plan is device-local tuning state (tile sizes, thread count), not
/// model state — it never travels with the bundle and carries nothing
/// derived from user data, so caching it on disk is not a privacy event.
pub fn kernel_plan_path(bundle_path: &Path) -> std::path::PathBuf {
    let mut name = bundle_path
        .file_stem()
        .unwrap_or_else(|| std::ffi::OsStr::new("magneto"))
        .to_os_string();
    name.push(".plan.json");
    bundle_path.with_file_name(name)
}

/// Persist an autotuned [`KernelPlan`](magneto_tensor::KernelPlan) next
/// to the bundle at `bundle_path` (atomic write, same discipline as
/// [`save_bundle`]).
///
/// # Errors
/// [`CoreError::InvalidBundle`] wrapping any I/O failure.
pub fn save_kernel_plan(plan: &magneto_tensor::KernelPlan, bundle_path: &Path) -> Result<()> {
    plan.save(&kernel_plan_path(bundle_path))
        .map_err(|e| CoreError::InvalidBundle(format!("kernel plan save: {e}")))
}

/// Load the kernel plan cached next to the bundle at `bundle_path`,
/// falling back to the host default (and never failing) when the cache is
/// missing, corrupt, or from an incompatible plan version — a stale or
/// damaged tuning cache must never prevent the model from loading.
pub fn load_kernel_plan(bundle_path: &Path) -> magneto_tensor::KernelPlan {
    magneto_tensor::KernelPlan::load_or_default(&kernel_plan_path(bundle_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{CloudConfig, CloudInitializer};
    use magneto_sensors::{GeneratorConfig, SensorDataset};

    fn bundle() -> EdgeBundle {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 2;
        CloudInitializer::new(cfg).pretrain(&corpus).unwrap().0
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("magneto_storage_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// The pre-table bitwise implementation, kept as the test oracle.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn table_crc_matches_bitwise_reference() {
        let mut rng = magneto_tensor::SeededRng::new(99);
        for len in [0usize, 1, 2, 3, 7, 64, 255, 1000] {
            let data: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            assert_eq!(crc32(&data), crc32_bitwise(&data), "len {len}");
        }
        // All 256 single-byte inputs.
        for b in 0u8..=255 {
            assert_eq!(crc32(&[b]), crc32_bitwise(&[b]), "byte {b}");
        }
    }

    #[test]
    fn load_bundle_never_panics_on_truncation_or_flips() {
        let b = bundle();
        let path = temp_path("fuzz");
        save_bundle(&b, &path, true).unwrap();
        let good = fs::read(&path).unwrap();

        // Truncation at every prefix: always a clean error.
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(load_bundle(&path).is_err(), "prefix {cut} loaded");
        }

        // Random byte flips: the CRC catches essentially all of them; a
        // flip must never panic either way.
        let mut rng = magneto_tensor::SeededRng::new(7);
        for _ in 0..100 {
            let mut bad = good.clone();
            let pos = (rng.next_u64() as usize) % bad.len();
            bad[pos] ^= 1 << (rng.next_u64() % 8);
            fs::write(&path, &bad).unwrap();
            let _ = load_bundle(&path);
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn framed_payload_roundtrip_and_corruption() {
        let path = temp_path("framed");
        let payload = b"arbitrary session delta bytes \x00\x01\xff";
        save_framed(payload, &path).unwrap();
        assert_eq!(load_framed(&path).unwrap(), payload);
        // Corruption is caught by the CRC.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load_framed(&path).is_err());
        // A torn journal is discarded and the old payload survives.
        save_framed(payload, &path).unwrap();
        fs::write(&journal_path(&path), b"MGSThalf").unwrap();
        assert_eq!(load_framed(&path).unwrap(), payload);
        // A complete journal rolls forward.
        fs::write(&journal_path(&path), frame_payload(b"newer")).unwrap();
        assert_eq!(load_framed(&path).unwrap(), b"newer");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn versioned_frames_roundtrip_and_recover() {
        use crate::version::Lineage;
        let path = temp_path("versioned_frame");
        let payload = b"delta bytes pinned to a base version";
        save_framed_versioned(payload, ModelVersion(3), &path).unwrap();
        let (back, version) = load_framed_versioned(&path).unwrap();
        assert_eq!(back, payload);
        assert_eq!(version, ModelVersion(3));
        // The plain loader reads through the versioned frame too.
        assert_eq!(load_framed(&path).unwrap(), payload);
        // The version survives journal recovery: plant a complete
        // versioned journal and confirm roll-forward keeps the stamp.
        fs::write(
            &journal_path(&path),
            frame_payload_versioned(b"newer", ModelVersion(4)),
        )
        .unwrap();
        let (rolled, rolled_version) = load_framed_versioned(&path).unwrap();
        assert_eq!(rolled, b"newer");
        assert_eq!(rolled_version, ModelVersion(4));
        // Versioned bundles round-trip the version through save/load.
        let b = bundle().with_lineage(Lineage::root(5));
        save_bundle(&b, &path, false).unwrap();
        let raw = fs::read(&path).unwrap();
        assert_eq!(&raw[..4], b"MGSV");
        assert_eq!(load_bundle(&path).unwrap().version(), ModelVersion(5));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_frame_bytes_are_unchanged_and_report_v0() {
        let path = temp_path("legacy_frame");
        let payload = b"legacy spool payload";
        save_framed(payload, &path).unwrap();
        // save_framed must still emit the exact pre-versioning frame.
        assert_eq!(fs::read(&path).unwrap(), frame_payload(payload));
        let (back, version) = load_framed_versioned(&path).unwrap();
        assert_eq!(back, payload);
        assert_eq!(version, ModelVersion::LEGACY);
        // A legacy bundle saved through save_bundle keeps MGST framing.
        let b = bundle();
        save_bundle(&b, &path, false).unwrap();
        assert_eq!(&fs::read(&path).unwrap()[..4], b"MGST");
        assert_eq!(load_bundle(&path).unwrap().version(), ModelVersion::LEGACY);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_version_mismatch_is_rejected() {
        use crate::version::Lineage;
        let b = bundle().with_lineage(Lineage::root(2));
        let path = temp_path("version_mismatch");
        // Stamp the frame with a different version than the lineage.
        save_framed_versioned(&b.to_bytes(false), ModelVersion(9), &path).unwrap();
        let err = load_bundle(&path).unwrap_err();
        assert!(err.to_string().contains("stamped"), "{err}");
        // A legacy frame wrapping a versioned bundle is accepted (the
        // generic save_framed path cannot know the version).
        save_framed(&b.to_bytes(false), &path).unwrap();
        assert_eq!(load_bundle(&path).unwrap().version(), ModelVersion(2));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_roundtrip_both_precisions() {
        let b = bundle();
        for (quantized, name) in [(false, "f32"), (true, "i8")] {
            let path = temp_path(name);
            save_bundle(&b, &path, quantized).unwrap();
            let loaded = load_bundle(&path).unwrap();
            assert_eq!(loaded.registry, b.registry);
            assert_eq!(loaded.support_set, b.support_set);
            if !quantized {
                assert_eq!(loaded, b);
            }
            fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn corruption_is_detected() {
        let b = bundle();
        let path = temp_path("corrupt");
        save_bundle(&b, &path, false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = load_bundle(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let b = bundle();
        let path = temp_path("trunc");
        save_bundle(&b, &path, false).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_bundle(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_plan_rides_next_to_bundle() {
        let bundle_path = temp_path("with_plan");
        let plan_path = kernel_plan_path(&bundle_path);
        assert!(plan_path.to_string_lossy().ends_with(".plan.json"));
        assert_eq!(plan_path.parent(), bundle_path.parent());

        let plan = magneto_tensor::KernelPlan::inline().with_threads(2);
        save_kernel_plan(&plan, &bundle_path).unwrap();
        assert_eq!(load_kernel_plan(&bundle_path), plan);
        fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn missing_or_corrupt_plan_falls_back_to_default() {
        let bundle_path = temp_path("plan_fallback");
        let plan_path = kernel_plan_path(&bundle_path);
        fs::remove_file(&plan_path).ok();
        // Missing cache: host default, no error.
        assert_eq!(
            load_kernel_plan(&bundle_path),
            magneto_tensor::KernelPlan::host_default()
        );
        // Corrupt cache: same fallback.
        fs::write(&plan_path, b"{ not json").unwrap();
        assert_eq!(
            load_kernel_plan(&bundle_path),
            magneto_tensor::KernelPlan::host_default()
        );
        fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn wrong_file_rejected() {
        let path = temp_path("wrong");
        fs::write(&path, b"definitely not a bundle").unwrap();
        assert!(load_bundle(&path).is_err());
        fs::remove_file(&path).ok();
        assert!(load_bundle(Path::new("/nonexistent/magneto")).is_err());
    }

    #[test]
    fn scratch_files_keep_the_full_file_name() {
        // `model.v1` and `model.v2` must not share scratch paths — the old
        // `with_extension("tmp")` scheme collapsed both to `model.tmp`.
        let a = journal_path(Path::new("/data/model.v1"));
        let b = journal_path(Path::new("/data/model.v2"));
        assert_ne!(a, b);
        assert_eq!(a, Path::new("/data/model.v1.journal"));
        let t1 = unique_tmp_path(Path::new("/data/model.v1"));
        let t2 = unique_tmp_path(Path::new("/data/model.v1"));
        assert_ne!(t1, t2, "two saves of the same path share a temp file");
        assert!(t1.to_string_lossy().starts_with("/data/model.v1.tmp."));
    }

    #[test]
    fn save_leaves_no_journal_or_scratch_behind() {
        let b = bundle();
        let dir = temp_path("clean_dir");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bundle");
        save_bundle(&b, &path, false).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "model.bundle")
            .collect();
        assert!(leftovers.is_empty(), "debris after save: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_saves_to_sibling_paths_do_not_collide() {
        // The regression the unique suffix fixes: two bundles whose paths
        // differ only in extension, saved from two threads. Under the old
        // shared `model.tmp` scheme one save could publish the other's
        // half-written frame.
        let b = bundle();
        let dir = temp_path("sibling_dir");
        fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("model.v1");
        let p2 = dir.join("model.v2");
        std::thread::scope(|s| {
            let (b1, b2) = (&b, &b);
            let (q1, q2) = (&p1, &p2);
            let h1 = s.spawn(move || {
                for _ in 0..8 {
                    save_bundle(b1, q1, false).unwrap();
                }
            });
            let h2 = s.spawn(move || {
                for _ in 0..8 {
                    save_bundle(b2, q2, true).unwrap();
                }
            });
            h1.join().unwrap();
            h2.join().unwrap();
        });
        // Both destinations load, each at its own precision.
        assert_eq!(load_bundle(&p1).unwrap().registry, b.registry);
        assert_eq!(load_bundle(&p2).unwrap().registry, b.registry);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_journal_rolls_forward_on_load() {
        let old = bundle();
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 2);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 2;
        let new = CloudInitializer::new(cfg).pretrain(&corpus).unwrap().0;
        let path = temp_path("rollfwd");
        save_bundle(&old, &path, false).unwrap();
        // Simulate a crash after the journal became durable but before the
        // final rename: plant the complete new frame at the journal path.
        fs::write(&journal_path(&path), frame_payload(&new.to_bytes(false))).unwrap();
        assert!(recover_journal(&path).unwrap());
        assert!(!journal_path(&path).exists());
        let loaded = load_bundle(&path).unwrap();
        assert_eq!(loaded.to_bytes(false), new.to_bytes(false));
        fs::remove_file(&path).ok();
    }

    /// The acceptance property: kill the save at **every byte offset** of
    /// the journal write; loading must always yield the complete old or
    /// the complete new bundle — never an error, never a hybrid.
    #[test]
    fn crash_at_every_journal_byte_yields_old_or_new() {
        let old = bundle();
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 3);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 2;
        let new = CloudInitializer::new(cfg).pretrain(&corpus).unwrap().0;
        let old_bytes = old.to_bytes(false);
        let new_bytes = new.to_bytes(false);
        assert_ne!(old_bytes, new_bytes);

        let path = temp_path("kill_every_byte");
        save_bundle(&old, &path, false).unwrap();
        let new_frame = frame_payload(&new_bytes);
        let journal = journal_path(&path);

        let old_frame = frame_payload(&old_bytes);
        for cut in 0..=new_frame.len() {
            // The torn journal models every crash point: before `cut`
            // bytes of the new frame reached disk the rename into the
            // journal name cannot have happened (the temp write is
            // fsync'd first), and after the full frame is durable the
            // journal is complete. Recovery must never fail.
            fs::write(&journal, &new_frame[..cut]).unwrap();
            let rolled = recover_journal(&path)
                .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
            // Only the complete frame rolls forward; every torn prefix is
            // discarded. Either way the journal is consumed.
            assert_eq!(rolled, cut == new_frame.len(), "cut {cut}");
            assert!(!journal.exists(), "cut {cut}: journal left behind");
            // The destination file is always exactly the old or the new
            // frame — never a hybrid (byte compare keeps the every-offset
            // sweep cheap; decode determinism is covered below and by the
            // roundtrip tests).
            let on_disk = fs::read(&path).unwrap();
            assert!(
                on_disk == old_frame || on_disk == new_frame,
                "cut {cut}: destination is neither old nor new frame"
            );
            // Full decode spot-checks: frame boundaries plus a stride.
            if cut <= 16 || cut % 4096 == 0 || cut + 1 >= new_frame.len() {
                let loaded = load_bundle(&path)
                    .unwrap_or_else(|e| panic!("load failed at cut {cut}: {e}"))
                    .to_bytes(false);
                assert!(
                    loaded == old_bytes || loaded == new_bytes,
                    "cut {cut}: loaded neither old nor new"
                );
            }
        }
        // The final iteration had the complete frame: it must have rolled
        // forward to the new bundle.
        assert_eq!(load_bundle(&path).unwrap().to_bytes(false), new_bytes);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_journal_is_discarded_and_old_bundle_survives() {
        let b = bundle();
        let path = temp_path("torn");
        save_bundle(&b, &path, false).unwrap();
        fs::write(&journal_path(&path), b"MGST\x01\x02half a frame").unwrap();
        assert!(!recover_journal(&path).unwrap());
        assert!(!journal_path(&path).exists());
        assert_eq!(load_bundle(&path).unwrap().registry, b.registry);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_only_no_destination_recovers_the_new_bundle() {
        // Crash between the two renames on the *first ever* save: there is
        // no old file at all, just a complete journal.
        let b = bundle();
        let path = temp_path("journal_only");
        fs::remove_file(&path).ok();
        fs::write(&journal_path(&path), frame_payload(&b.to_bytes(false))).unwrap();
        let loaded = load_bundle(&path).unwrap();
        assert_eq!(loaded.to_bytes(false), b.to_bytes(false));
        fs::remove_file(&path).ok();
    }
}
