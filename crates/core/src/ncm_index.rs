//! Quantized row index behind [`crate::ncm::NcmClassifier`] (DESIGN.md
//! §16).
//!
//! The index owns one int8 row per class *representative* — the class
//! prototype plus any number of support exemplars — in a single
//! [`QuantRowStore`] pool, and the bookkeeping that maps rows to
//! classes both ways:
//!
//! * `owner[pos]` / `is_exemplar[pos]` — which class a row belongs to
//!   and which kind it is;
//! * `proto_row[c]` / `exemplars[c]` — where a class's rows live.
//!
//! Rows are removed by swap-remove (the pool stays dense), with the
//! moved row's back-pointer patched in O(exemplars-of-one-class). All
//! mutations are incremental: an upsert or class removal never re-reads
//! or re-quantises unrelated rows, so incremental learning on a large
//! classifier stays O(class) instead of O(index).
//!
//! The coarse scans delegate to [`QuantRowStore`]'s backend-dispatched
//! i8×i8→i32 kernels; everything here is exact bookkeeping.

use crate::error::CoreError;
use crate::Result;
use magneto_tensor::qdist::QuantRowStore;
use magneto_tensor::Backend;

/// Position-addressed pool of quantized class representatives.
#[derive(Debug, Clone)]
pub(crate) struct NcmIndex {
    rows: QuantRowStore,
    /// Row position → class index.
    owner: Vec<u32>,
    /// Row position → exemplar (true) or prototype (false).
    is_exemplar: Vec<bool>,
    /// Class index → row position of its prototype.
    proto_row: Vec<u32>,
    /// Class index → row positions of its exemplars, in insertion order.
    exemplars: Vec<Vec<u32>>,
}

impl NcmIndex {
    /// An empty index of `dim`-wide rows.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] for `dim == 0` or a dim beyond the
    /// int8 accumulator-safe bound.
    pub(crate) fn new(dim: usize) -> Result<Self> {
        let rows = QuantRowStore::new(dim)
            .map_err(|e| CoreError::InvalidConfig(format!("ncm index: {e}")))?;
        Ok(NcmIndex {
            rows,
            owner: Vec::new(),
            is_exemplar: Vec::new(),
            proto_row: Vec::new(),
            exemplars: Vec::new(),
        })
    }

    /// Total rows (prototypes + exemplars).
    pub(crate) fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Resident bytes of the quantized pool plus bookkeeping.
    pub(crate) fn bytes(&self) -> usize {
        self.rows.bytes()
            + 4 * self.owner.len()
            + self.is_exemplar.len()
            + 4 * self.proto_row.len()
            + self.exemplars.iter().map(|e| 4 * e.len()).sum::<usize>()
    }

    /// Append a new class with its prototype; returns the class index
    /// (always `num_classes` before the call — classes are appended).
    pub(crate) fn push_class(&mut self, proto: &[f32]) -> usize {
        let c = self.proto_row.len();
        let pos = self.rows.push(proto);
        self.owner.push(c as u32);
        self.is_exemplar.push(false);
        self.proto_row.push(pos as u32);
        self.exemplars.push(Vec::new());
        c
    }

    /// Re-quantise class `c`'s prototype row in place.
    pub(crate) fn replace_proto(&mut self, c: usize, proto: &[f32]) {
        self.rows.replace(self.proto_row[c] as usize, proto);
    }

    /// Row position of class `c`'s prototype.
    pub(crate) fn proto_pos(&self, c: usize) -> usize {
        self.proto_row[c] as usize
    }

    /// Row positions of class `c`'s exemplars, in insertion order.
    pub(crate) fn exemplar_positions(&self, c: usize) -> &[u32] {
        &self.exemplars[c]
    }

    /// Number of exemplar rows held for class `c`.
    pub(crate) fn exemplar_count(&self, c: usize) -> usize {
        self.exemplars[c].len()
    }

    /// Quantise and append one exemplar row for class `c`.
    pub(crate) fn push_exemplar(&mut self, c: usize, row: &[f32]) {
        let pos = self.rows.push(row);
        self.owner.push(c as u32);
        self.is_exemplar.push(true);
        self.exemplars[c].push(pos as u32);
    }

    /// Append one already-quantised exemplar row for class `c` (bundle
    /// decode path — no f32 rehydration).
    pub(crate) fn push_exemplar_quantized(&mut self, c: usize, q: &[i8], scale: f32) {
        let pos = self.rows.push_quantized(q, scale);
        self.owner.push(c as u32);
        self.is_exemplar.push(true);
        self.exemplars[c].push(pos as u32);
    }

    /// Drop every exemplar row of class `c` (its prototype stays).
    pub(crate) fn clear_exemplars(&mut self, c: usize) {
        let mut doomed = std::mem::take(&mut self.exemplars[c]);
        // Descending removal order: the row swapped into a vacated slot
        // (the old last row) can never itself be pending — every pending
        // position is strictly below the one being removed.
        doomed.sort_unstable_by(|a, b| b.cmp(a));
        for pos in doomed {
            self.remove_row(pos as usize);
        }
    }

    /// Remove class `c` entirely: all its rows, then its bookkeeping,
    /// shifting the class indices above it down by one (mirroring
    /// `Vec::remove` on the caller's label list).
    pub(crate) fn remove_class(&mut self, c: usize) {
        self.clear_exemplars(c);
        self.remove_row(self.proto_row[c] as usize);
        self.proto_row.remove(c);
        self.exemplars.remove(c);
        for o in &mut self.owner {
            debug_assert_ne!(*o as usize, c);
            if *o as usize > c {
                *o -= 1;
            }
        }
    }

    /// Swap-remove the row at `pos` and patch the moved row's
    /// back-pointer.
    fn remove_row(&mut self, pos: usize) {
        let last = self.rows.len() - 1;
        self.rows.swap_remove(pos);
        self.owner.swap_remove(pos);
        self.is_exemplar.swap_remove(pos);
        if pos != last {
            // The row formerly at `last` now lives at `pos`.
            let c = self.owner[pos] as usize;
            if self.is_exemplar[pos] {
                let e = self.exemplars[c]
                    .iter_mut()
                    .find(|e| **e == last as u32)
                    .expect("moved exemplar row has a position entry");
                *e = pos as u32;
            } else {
                self.proto_row[c] = pos as u32;
            }
        }
    }

    /// Dequantise the row at `pos` into `out` (exact-stage rescoring and
    /// the dense fallback for exemplar rows).
    pub(crate) fn dequantize_into(&self, pos: usize, out: &mut [f32]) {
        self.rows.dequantize_into(pos, out);
    }

    /// The quantised contents and scale of the row at `pos`
    /// (serialisation).
    pub(crate) fn row_quantized(&self, pos: usize) -> (&[i8], f32) {
        (self.rows.row_q(pos), self.rows.scale(pos))
    }

    /// Coarse squared-L2 from a quantised query to every row.
    pub(crate) fn coarse_sq_l2(
        &self,
        backend: Backend,
        q: &[i8],
        q_scale: f32,
        q_sqnorm: i32,
        out: &mut Vec<f32>,
    ) {
        self.rows.coarse_sq_l2(backend, q, q_scale, q_sqnorm, out);
    }

    /// Coarse cosine distance from a quantised query to every row.
    pub(crate) fn coarse_cosine(
        &self,
        backend: Backend,
        q: &[i8],
        q_scale: f32,
        q_sqnorm: i32,
        out: &mut Vec<f32>,
    ) {
        self.rows.coarse_cosine(backend, q, q_scale, q_sqnorm, out);
    }

    /// Internal-consistency check used by tests: every back-pointer must
    /// round-trip through `owner`/`is_exemplar`.
    #[cfg(test)]
    pub(crate) fn check_consistent(&self) {
        assert_eq!(self.owner.len(), self.rows.len());
        assert_eq!(self.is_exemplar.len(), self.rows.len());
        assert_eq!(self.proto_row.len(), self.exemplars.len());
        let mut seen = vec![false; self.rows.len()];
        for (c, &p) in self.proto_row.iter().enumerate() {
            let p = p as usize;
            assert!(!seen[p], "row {p} referenced twice");
            seen[p] = true;
            assert_eq!(self.owner[p] as usize, c);
            assert!(!self.is_exemplar[p]);
        }
        for (c, ex) in self.exemplars.iter().enumerate() {
            for &p in ex {
                let p = p as usize;
                assert!(!seen[p], "row {p} referenced twice");
                seen[p] = true;
                assert_eq!(self.owner[p] as usize, c);
                assert!(self.is_exemplar[p]);
            }
        }
        assert!(seen.iter().all(|&s| s), "orphan row in pool");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_lifecycle_keeps_index_consistent() {
        let mut idx = NcmIndex::new(3).unwrap();
        for c in 0..4 {
            let v = vec![c as f32, 0.0, 1.0];
            assert_eq!(idx.push_class(&v), c);
        }
        idx.push_exemplar(1, &[1.0, 2.0, 3.0]);
        idx.push_exemplar(1, &[4.0, 5.0, 6.0]);
        idx.push_exemplar(3, &[7.0, 8.0, 9.0]);
        idx.check_consistent();
        assert_eq!(idx.num_rows(), 7);
        assert_eq!(idx.exemplar_count(1), 2);

        // Removing a middle class compacts the pool and shifts owners.
        idx.remove_class(1);
        idx.check_consistent();
        assert_eq!(idx.num_rows(), 4);
        assert_eq!(idx.exemplar_count(2), 1); // old class 3

        idx.clear_exemplars(2);
        idx.check_consistent();
        assert_eq!(idx.num_rows(), 3);

        idx.remove_class(0);
        idx.remove_class(0);
        idx.check_consistent();
        assert_eq!(idx.num_rows(), 1);
    }

    #[test]
    fn replace_proto_requantizes() {
        let mut idx = NcmIndex::new(2).unwrap();
        idx.push_class(&[1.0, 1.0]);
        idx.replace_proto(0, &[-3.0, 4.0]);
        let mut out = vec![0.0f32; 2];
        idx.dequantize_into(idx.proto_pos(0), &mut out);
        assert!((out[0] + 3.0).abs() < 0.05 && (out[1] - 4.0).abs() < 0.05);
    }

    #[test]
    fn invalid_dim_rejected() {
        assert!(NcmIndex::new(0).is_err());
    }
}
