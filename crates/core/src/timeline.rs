//! Activity timeline: turning per-window predictions into the daily
//! summary a HAR product actually shows ("you walked 34 minutes today").
//!
//! The demo GUI (Figure 3) displays the live label; a deployed health or
//! fitness app — the §1 motivation — aggregates those labels into
//! *segments* (contiguous runs of one activity) and per-activity totals.
//! This module performs that aggregation with hysteresis so single-window
//! flickers do not fragment the timeline.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A contiguous run of one activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivitySegment {
    /// Activity label.
    pub label: String,
    /// Start time, seconds since session start.
    pub start_s: f64,
    /// End time, seconds since session start.
    pub end_s: f64,
    /// Number of windows merged into this segment.
    pub windows: usize,
}

impl ActivitySegment {
    /// Segment duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Builds a segment timeline from a stream of `(timestamp, label)` window
/// predictions.
#[derive(Debug, Clone)]
pub struct TimelineBuilder {
    /// Minimum windows a run needs before it replaces the current
    /// segment (hysteresis against single-window flicker).
    min_run: usize,
    window_seconds: f64,
    segments: Vec<ActivitySegment>,
    // Candidate run that has not yet reached `min_run`.
    pending: Option<(String, f64, usize)>,
}

impl TimelineBuilder {
    /// Create a builder. `window_seconds` is the window duration (1 s in
    /// the paper); `min_run` windows are required to open a new segment.
    pub fn new(window_seconds: f64, min_run: usize) -> Self {
        TimelineBuilder {
            min_run: min_run.max(1),
            window_seconds,
            segments: Vec::new(),
            pending: None,
        }
    }

    /// Feed one window prediction.
    pub fn push(&mut self, timestamp_s: f64, label: &str) {
        // Extend the current segment?
        if let Some(last) = self.segments.last_mut() {
            if last.label == label {
                last.end_s = timestamp_s + self.window_seconds;
                last.windows += 1;
                self.pending = None;
                return;
            }
        }
        // Accumulate a candidate run.
        match &mut self.pending {
            Some((pl, start, count)) if pl == label => {
                *count += 1;
                if *count >= self.min_run {
                    self.segments.push(ActivitySegment {
                        label: label.to_string(),
                        start_s: *start,
                        end_s: timestamp_s + self.window_seconds,
                        windows: *count,
                    });
                    self.pending = None;
                }
            }
            _ => {
                if self.min_run == 1 {
                    self.segments.push(ActivitySegment {
                        label: label.to_string(),
                        start_s: timestamp_s,
                        end_s: timestamp_s + self.window_seconds,
                        windows: 1,
                    });
                } else {
                    self.pending = Some((label.to_string(), timestamp_s, 1));
                }
            }
        }
    }

    /// Segments so far.
    pub fn segments(&self) -> &[ActivitySegment] {
        &self.segments
    }

    /// Total seconds per activity (the daily-summary numbers).
    pub fn totals(&self) -> BTreeMap<String, f64> {
        let mut totals = BTreeMap::new();
        for s in &self.segments {
            *totals.entry(s.label.clone()).or_insert(0.0) += s.duration_s();
        }
        totals
    }

    /// Render the timeline as a text report (the demo's session summary).
    pub fn to_report(&self) -> String {
        let mut out = String::from("activity timeline:\n");
        for s in &self.segments {
            out.push_str(&format!(
                "  {:>8.1}s – {:>8.1}s  {:<14} ({} windows)\n",
                s.start_s, s.end_s, s.label, s.windows
            ));
        }
        out.push_str("totals:\n");
        for (label, secs) in self.totals() {
            out.push_str(&format!("  {label:<14} {secs:>8.1}s\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(builder: &mut TimelineBuilder, labels: &[&str]) {
        for (i, l) in labels.iter().enumerate() {
            builder.push(i as f64, l);
        }
    }

    #[test]
    fn contiguous_windows_merge() {
        let mut tb = TimelineBuilder::new(1.0, 1);
        feed(&mut tb, &["walk", "walk", "walk", "run", "run"]);
        let segs = tb.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].label, "walk");
        assert_eq!(segs[0].windows, 3);
        assert!((segs[0].duration_s() - 3.0).abs() < 1e-9);
        assert_eq!(segs[1].label, "run");
        assert_eq!(segs[1].windows, 2);
    }

    #[test]
    fn hysteresis_suppresses_flicker() {
        let mut tb = TimelineBuilder::new(1.0, 2);
        // A single "run" window inside a walk should not open a segment.
        feed(&mut tb, &["walk", "walk", "run", "walk", "walk", "walk"]);
        let segs = tb.segments();
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert_eq!(segs[0].label, "walk");
        // Note: the flickered window is simply absorbed; only sustained
        // runs open segments.
    }

    #[test]
    fn sustained_change_opens_segment_with_hysteresis() {
        let mut tb = TimelineBuilder::new(1.0, 2);
        feed(&mut tb, &["walk", "walk", "run", "run", "run"]);
        let segs = tb.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].label, "run");
        assert_eq!(segs[1].windows, 3);
    }

    #[test]
    fn totals_sum_durations() {
        let mut tb = TimelineBuilder::new(1.0, 1);
        feed(&mut tb, &["walk", "walk", "still", "walk"]);
        let totals = tb.totals();
        assert!((totals["walk"] - 3.0).abs() < 1e-9);
        assert!((totals["still"] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline() {
        let tb = TimelineBuilder::new(1.0, 2);
        assert!(tb.segments().is_empty());
        assert!(tb.totals().is_empty());
        assert!(tb.to_report().contains("totals"));
    }

    #[test]
    fn report_contains_all_segments() {
        let mut tb = TimelineBuilder::new(1.0, 1);
        feed(&mut tb, &["drive", "drive", "still"]);
        let report = tb.to_report();
        assert!(report.contains("drive"));
        assert!(report.contains("still"));
        assert!(report.contains("2 windows"));
    }

    #[test]
    fn min_run_zero_is_clamped_to_one() {
        let mut tb = TimelineBuilder::new(0.5, 0);
        feed(&mut tb, &["a"]);
        assert_eq!(tb.segments().len(), 1);
        assert!((tb.segments()[0].duration_s() - 0.5).abs() < 1e-9);
    }
}
