//! Automatic recalibration policy: closing the drift loop.
//!
//! The drift monitor ([`crate::drift`]) says *something changed*; the
//! transactional update path ([`crate::incremental`]) can *safely apply*
//! a fix. This module supplies the policy between the two — when to act,
//! what evidence to act on, and when to stop trying:
//!
//! * **Hysteresis** — one `Drifted` window is noise; recalibration fires
//!   only after `hysteresis` *consecutive* drifted windows.
//! * **Cooldown** — after any attempt (committed or rolled back), at
//!   least `cooldown` windows must pass before the next one, so a
//!   recalibration storm cannot starve inference.
//! * **Evidence harvesting** — recent windows whose prediction was
//!   confident and whose signal was nominal are buffered (as pipeline
//!   feature rows, never raw sensor data) per predicted label; the label
//!   with the most evidence becomes the calibration candidate.
//! * **Strikes** — every rolled-back attempt is a strike. At
//!   `max_strikes` the policy stops attempting and degrades to
//!   "recalibration advised": the honest fallback when self-healing
//!   cannot pass the safety gates, at which point only a user-triggered
//!   calibration recording (§3.3) can help.
//!
//! The policy itself never touches the model: [`crate::EdgeDevice`]
//! executes attempts through `update_transactional`, so every automatic
//! recalibration passes the same non-finite / loss-growth /
//! self-accuracy gates — and gets the same byte-exact rollback — as a
//! user-triggered one.

use crate::drift::DriftStatus;
use crate::error::CoreError;
use crate::Result;
use magneto_dsp::SignalQuality;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the self-healing loop (detector + policy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelfHealingConfig {
    /// Drift alert fires when the smoothed nearest-prototype distance
    /// exceeds `alert_ratio` × the deployment baseline.
    pub alert_ratio: f32,
    /// EWMA smoothing factor of the drift monitor, in `(0, 1]`.
    pub alpha: f32,
    /// Windows before the monitor may alert.
    pub warmup: u64,
    /// Percentile of within-class support distances used as the
    /// monitor's baseline (margin 1).
    pub baseline_percentile: f32,
    /// Consecutive `Drifted` windows required to trigger an attempt.
    pub hysteresis: u32,
    /// Minimum windows between recalibration attempts.
    pub cooldown: u64,
    /// Minimum harvested windows for a label before it can be a
    /// calibration candidate.
    pub min_harvest: usize,
    /// Most harvested windows retained per label (oldest evicted).
    pub max_harvest: usize,
    /// Minimum prediction confidence for a window to be harvested.
    pub min_confidence: f32,
    /// Rolled-back attempts before the policy degrades to
    /// "recalibration advised" and stops attempting.
    pub max_strikes: u32,
}

impl Default for SelfHealingConfig {
    fn default() -> Self {
        SelfHealingConfig {
            alert_ratio: 1.6,
            alpha: 0.25,
            warmup: 3,
            baseline_percentile: 90.0,
            hysteresis: 3,
            cooldown: 8,
            min_harvest: 4,
            max_harvest: 32,
            min_confidence: 0.35,
            max_strikes: 3,
        }
    }
}

impl SelfHealingConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if !self.alert_ratio.is_finite() || self.alert_ratio < 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "alert_ratio must be finite and >= 1, got {}",
                self.alert_ratio
            )));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 || self.alpha > 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "alpha must be in (0, 1], got {}",
                self.alpha
            )));
        }
        if !(0.0..=100.0).contains(&self.baseline_percentile) {
            return Err(CoreError::InvalidConfig(format!(
                "baseline_percentile must be in [0, 100], got {}",
                self.baseline_percentile
            )));
        }
        if self.hysteresis == 0 {
            return Err(CoreError::InvalidConfig(
                "hysteresis must be at least 1 window".into(),
            ));
        }
        if self.min_harvest == 0 || self.max_harvest < self.min_harvest {
            return Err(CoreError::InvalidConfig(format!(
                "harvest bounds invalid: min {} max {}",
                self.min_harvest, self.max_harvest
            )));
        }
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(CoreError::InvalidConfig(format!(
                "min_confidence must be in [0, 1], got {}",
                self.min_confidence
            )));
        }
        if self.max_strikes == 0 {
            return Err(CoreError::InvalidConfig(
                "max_strikes must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Counters describing what the self-healing loop has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HealingStats {
    /// Windows observed while the monitor reported `Drifted`.
    pub drifted_windows: u64,
    /// Stable→Drifted transitions (alerts).
    pub drift_alerts: u64,
    /// Recalibrations committed through the transactional gates.
    pub auto_recals: u64,
    /// Recalibration attempts rejected and rolled back byte-exactly.
    pub recal_rollbacks: u64,
    /// Current strike count (reset on commit).
    pub strikes: u32,
    /// `true` once the policy has given up (`strikes == max_strikes`).
    pub degraded: bool,
}

impl HealingStats {
    /// Human-readable advisory when the loop has degraded.
    pub fn advisory(&self) -> Option<&'static str> {
        self.degraded
            .then_some("degraded: automatic recalibration failed repeatedly; manual recalibration advised")
    }
}

/// The recalibration policy state machine. Pure policy: it decides when
/// an attempt should fire and what evidence backs it; the owner executes
/// the attempt transactionally and reports the outcome back via
/// [`note_commit`](Recalibrator::note_commit) /
/// [`note_rollback`](Recalibrator::note_rollback).
#[derive(Debug, Clone)]
pub struct Recalibrator {
    config: SelfHealingConfig,
    /// Consecutive `Drifted` windows (hysteresis counter).
    consecutive_drifted: u32,
    /// Windows since the last attempt (cooldown counter); starts
    /// saturated so the first trigger is not throttled.
    since_attempt: u64,
    /// Whether the previous observation was already drifted (alert edge
    /// detection).
    was_drifted: bool,
    /// Harvested evidence: pipeline feature rows per predicted label.
    harvest: HashMap<String, Vec<Vec<f32>>>,
    stats: HealingStats,
}

impl Recalibrator {
    /// Fresh policy.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when the config fails validation.
    pub fn new(config: SelfHealingConfig) -> Result<Self> {
        config.validate()?;
        Ok(Recalibrator {
            consecutive_drifted: 0,
            since_attempt: config.cooldown,
            was_drifted: false,
            harvest: HashMap::new(),
            stats: HealingStats::default(),
            config,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SelfHealingConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> HealingStats {
        self.stats
    }

    /// `true` once the policy has exhausted its strikes and stopped
    /// attempting.
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded
    }

    /// Observe one window's drift status; returns `true` when a
    /// recalibration attempt should fire *now* (sustained drift, cooldown
    /// elapsed, not degraded).
    pub fn observe(&mut self, status: DriftStatus) -> bool {
        self.since_attempt = self.since_attempt.saturating_add(1);
        let drifted = status.is_drifted();
        if drifted {
            self.stats.drifted_windows += 1;
            if !self.was_drifted {
                self.stats.drift_alerts += 1;
            }
            self.consecutive_drifted = self.consecutive_drifted.saturating_add(1);
        } else {
            self.consecutive_drifted = 0;
        }
        self.was_drifted = drifted;
        !self.stats.degraded
            && self.consecutive_drifted >= self.config.hysteresis
            && self.since_attempt > self.config.cooldown
    }

    /// Offer one window's evidence for harvesting. Only confident,
    /// nominal-quality windows are kept; the buffer per label is bounded
    /// (oldest evicted) so memory never grows with stream length.
    pub fn offer(
        &mut self,
        label: &str,
        features: &[f32],
        confidence: f32,
        quality: SignalQuality,
    ) {
        if self.stats.degraded
            || confidence < self.config.min_confidence
            || quality.is_degraded()
        {
            return;
        }
        let rows = self.harvest.entry(label.to_string()).or_default();
        if rows.len() == self.config.max_harvest {
            rows.remove(0);
        }
        rows.push(features.to_vec());
    }

    /// The current calibration candidate: the label with the most
    /// harvested evidence (ties broken lexicographically for
    /// determinism), provided it clears `min_harvest`. Returns the label
    /// and a clone of its evidence rows.
    pub fn candidate(&self) -> Option<(String, Vec<Vec<f32>>)> {
        self.harvest
            .iter()
            .filter(|(_, rows)| rows.len() >= self.config.min_harvest)
            .max_by(|(la, ra), (lb, rb)| ra.len().cmp(&rb.len()).then(lb.cmp(la)))
            .map(|(l, rows)| (l.clone(), rows.clone()))
    }

    /// Record a committed recalibration: strikes clear, the hysteresis
    /// and cooldown counters restart, and the harvested evidence (now
    /// baked into the support set) is dropped.
    pub fn note_commit(&mut self) {
        self.stats.auto_recals += 1;
        self.stats.strikes = 0;
        self.consecutive_drifted = 0;
        self.was_drifted = false;
        self.since_attempt = 0;
        self.harvest.clear();
    }

    /// Record a rolled-back attempt (a strike). Returns `true` when this
    /// strike degraded the policy. The harvested evidence is dropped —
    /// it just failed validation, so retrying with it would burn the
    /// remaining strikes on the same rejection.
    pub fn note_rollback(&mut self) -> bool {
        self.stats.recal_rollbacks += 1;
        self.stats.strikes += 1;
        self.consecutive_drifted = 0;
        self.since_attempt = 0;
        self.harvest.clear();
        if self.stats.strikes >= self.config.max_strikes {
            self.stats.degraded = true;
        }
        self.stats.degraded
    }

    /// Harvested window count per label (diagnostics).
    pub fn harvested(&self, label: &str) -> usize {
        self.harvest.get(label).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drifted() -> DriftStatus {
        DriftStatus::Drifted { severity: 2.5 }
    }

    fn policy() -> Recalibrator {
        Recalibrator::new(SelfHealingConfig::default()).unwrap()
    }

    #[test]
    fn default_config_is_valid() {
        assert!(SelfHealingConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ok = SelfHealingConfig::default();
        for bad in [
            SelfHealingConfig { alert_ratio: 0.5, ..ok },
            SelfHealingConfig { alert_ratio: f32::NAN, ..ok },
            SelfHealingConfig { alpha: 0.0, ..ok },
            SelfHealingConfig { alpha: 2.0, ..ok },
            SelfHealingConfig { baseline_percentile: 101.0, ..ok },
            SelfHealingConfig { hysteresis: 0, ..ok },
            SelfHealingConfig { min_harvest: 0, ..ok },
            SelfHealingConfig { max_harvest: 1, min_harvest: 2, ..ok },
            SelfHealingConfig { min_confidence: 1.5, ..ok },
            SelfHealingConfig { max_strikes: 0, ..ok },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} accepted");
            assert!(Recalibrator::new(bad).is_err());
        }
    }

    #[test]
    fn hysteresis_requires_consecutive_drift() {
        let mut r = policy();
        // Two drifted, one stable, two drifted: never 3 consecutive.
        assert!(!r.observe(drifted()));
        assert!(!r.observe(drifted()));
        assert!(!r.observe(DriftStatus::Stable));
        assert!(!r.observe(drifted()));
        assert!(!r.observe(drifted()));
        // Third consecutive fires.
        assert!(r.observe(drifted()));
        // Alerts counted per Stable->Drifted edge, not per window.
        assert_eq!(r.stats().drift_alerts, 2);
        assert_eq!(r.stats().drifted_windows, 5);
    }

    #[test]
    fn cooldown_throttles_attempts() {
        let cfg = SelfHealingConfig {
            hysteresis: 1,
            cooldown: 5,
            ..SelfHealingConfig::default()
        };
        let mut r = Recalibrator::new(cfg).unwrap();
        assert!(r.observe(drifted()));
        r.note_rollback();
        // The next 5 drifted windows are inside the cooldown.
        for i in 0..5 {
            assert!(!r.observe(drifted()), "fired during cooldown at {i}");
        }
        assert!(r.observe(drifted()));
    }

    #[test]
    fn strikes_degrade_and_stop_attempts() {
        let cfg = SelfHealingConfig {
            hysteresis: 1,
            cooldown: 0,
            max_strikes: 2,
            ..SelfHealingConfig::default()
        };
        let mut r = Recalibrator::new(cfg).unwrap();
        assert!(r.observe(drifted()));
        assert!(!r.note_rollback());
        assert!(r.observe(drifted()));
        assert!(r.note_rollback(), "second strike should degrade");
        assert!(r.is_degraded());
        assert!(r.stats().advisory().is_some());
        // Degraded: never fires again, never harvests again.
        for _ in 0..10 {
            assert!(!r.observe(drifted()));
        }
        r.offer("walk", &[1.0], 0.9, SignalQuality::Nominal);
        assert_eq!(r.harvested("walk"), 0);
    }

    #[test]
    fn commit_clears_strikes_and_evidence() {
        let cfg = SelfHealingConfig {
            hysteresis: 1,
            cooldown: 0,
            min_harvest: 1,
            ..SelfHealingConfig::default()
        };
        let mut r = Recalibrator::new(cfg).unwrap();
        r.offer("walk", &[1.0, 2.0], 0.9, SignalQuality::Nominal);
        assert!(r.observe(drifted()));
        r.note_rollback();
        assert_eq!(r.stats().strikes, 1);
        r.offer("walk", &[1.0, 2.0], 0.9, SignalQuality::Nominal);
        r.note_commit();
        let s = r.stats();
        assert_eq!(s.strikes, 0);
        assert_eq!(s.auto_recals, 1);
        assert_eq!(s.recal_rollbacks, 1);
        assert!(!s.degraded);
        assert_eq!(r.harvested("walk"), 0);
    }

    #[test]
    fn harvest_filters_and_bounds_evidence() {
        let cfg = SelfHealingConfig {
            max_harvest: 4,
            min_harvest: 2,
            min_confidence: 0.5,
            ..SelfHealingConfig::default()
        };
        let mut r = Recalibrator::new(cfg).unwrap();
        // Low confidence and degraded quality are both refused.
        r.offer("walk", &[1.0], 0.4, SignalQuality::Nominal);
        r.offer("walk", &[1.0], 0.9, SignalQuality::Degraded);
        assert_eq!(r.harvested("walk"), 0);
        assert!(r.candidate().is_none());
        // The buffer is bounded at max_harvest; oldest rows evicted.
        for i in 0..10 {
            r.offer("walk", &[i as f32], 0.9, SignalQuality::Nominal);
        }
        assert_eq!(r.harvested("walk"), 4);
        let (label, rows) = r.candidate().unwrap();
        assert_eq!(label, "walk");
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![6.0]); // 0..5 evicted
    }

    #[test]
    fn candidate_picks_most_evidence_deterministically() {
        let cfg = SelfHealingConfig {
            min_harvest: 1,
            ..SelfHealingConfig::default()
        };
        let mut r = Recalibrator::new(cfg).unwrap();
        r.offer("run", &[1.0], 0.9, SignalQuality::Nominal);
        r.offer("walk", &[1.0], 0.9, SignalQuality::Nominal);
        r.offer("walk", &[2.0], 0.9, SignalQuality::Nominal);
        assert_eq!(r.candidate().unwrap().0, "walk");
        // Tie: lexicographically smaller label wins, every time.
        r.offer("run", &[2.0], 0.9, SignalQuality::Nominal);
        for _ in 0..5 {
            assert_eq!(r.candidate().unwrap().0, "run");
        }
    }
}
