//! The support set: a budgeted, per-class exemplar store.
//!
//! §3.2 item 3: "it is necessary to keep a minimal dataset to update the
//! learning model … The support set, containing a limited amount of data
//! samples which are representative for each class … This support set has
//! a two-fold mission: (i) serving to calculating the class prototypes
//! for building the NCM classifier, (ii) updating the model by combining
//! with the new activity data as training set."
//!
//! Exemplars are stored as *pre-processed feature vectors* (80 floats)
//! rather than raw windows — 33× smaller and exactly what both missions
//! need. Three selection strategies are provided for the A2 ablation:
//! random sampling, iCaRL-style herding (greedy mean-matching), and
//! streaming reservoir sampling.

use crate::error::CoreError;
use crate::label::LabelRegistry;
use crate::Result;
use magneto_tensor::{vector, Matrix, SeededRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How exemplars are chosen when a class exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectionStrategy {
    /// Uniform random subset.
    Random,
    /// Herding (Welling 2009 / iCaRL): greedily pick samples whose running
    /// mean best matches the class mean — the strongest prototype fidelity.
    #[default]
    Herding,
    /// Streaming reservoir sampling — O(1) memory for continuous capture.
    Reservoir,
}

/// Budgeted per-class feature store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupportSet {
    budget_per_class: usize,
    strategy: SelectionStrategy,
    classes: BTreeMap<String, Vec<Vec<f32>>>,
    /// Streaming counters for reservoir sampling, per class.
    seen: BTreeMap<String, u64>,
}

impl SupportSet {
    /// Create an empty support set. The paper's default budget is 200
    /// observations per class.
    pub fn new(budget_per_class: usize, strategy: SelectionStrategy) -> Self {
        SupportSet {
            budget_per_class: budget_per_class.max(1),
            strategy,
            classes: BTreeMap::new(),
            seen: BTreeMap::new(),
        }
    }

    /// Budget per class.
    pub fn budget(&self) -> usize {
        self.budget_per_class
    }

    /// Active selection strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Class labels currently stored (sorted).
    pub fn classes(&self) -> Vec<&str> {
        self.classes.keys().map(String::as_str).collect()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Exemplars stored for `label`.
    pub fn samples(&self, label: &str) -> Option<&[Vec<f32>]> {
        self.classes.get(label).map(Vec::as_slice)
    }

    /// Total exemplars across classes.
    pub fn total_samples(&self) -> usize {
        self.classes.values().map(Vec::len).sum()
    }

    /// Bytes of stored feature data at f32 precision — the quantity the
    /// paper's "roughly 0.5 MB" estimate refers to.
    pub fn bytes(&self) -> usize {
        self.classes
            .values()
            .flat_map(|v| v.iter())
            .map(|f| f.len() * 4)
            .sum()
    }

    /// Replace the exemplars of a class with a budget-sized selection from
    /// `samples` (used at Cloud initialisation, when learning a new class,
    /// and verbatim by calibration, which the paper describes as exactly
    /// this replacement).
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when `samples` is empty.
    pub fn set_class(
        &mut self,
        label: &str,
        samples: &[Vec<f32>],
        rng: &mut SeededRng,
    ) -> Result<()> {
        if samples.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "no samples for class `{label}`"
            )));
        }
        let selected = self.select(samples, rng);
        self.classes.insert(label.to_string(), selected);
        self.seen.insert(label.to_string(), samples.len() as u64);
        Ok(())
    }

    /// Stream one sample into a class (reservoir semantics regardless of
    /// the configured batch strategy — streaming has no alternative).
    pub fn push_sample(&mut self, label: &str, sample: Vec<f32>, rng: &mut SeededRng) {
        let entry = self.classes.entry(label.to_string()).or_default();
        let seen = self.seen.entry(label.to_string()).or_insert(0);
        *seen += 1;
        if entry.len() < self.budget_per_class {
            entry.push(sample);
        } else {
            // Classic reservoir: replace with probability budget/seen.
            let j = rng.index(*seen as usize);
            if j < self.budget_per_class {
                entry[j] = sample;
            }
        }
    }

    /// Remove a class entirely.
    pub fn remove_class(&mut self, label: &str) -> bool {
        self.seen.remove(label);
        self.classes.remove(label).is_some()
    }

    /// Per-class arithmetic mean of the stored feature vectors.
    pub fn class_means(&self) -> BTreeMap<String, Vec<f32>> {
        self.classes
            .iter()
            .filter_map(|(label, rows)| {
                let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
                vector::mean_vector(&refs).map(|m| (label.clone(), m))
            })
            .collect()
    }

    /// Flatten into a training `(features, labels)` pair using `registry`
    /// ids — mission (ii): the re-training set.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] if a stored class is missing from the
    /// registry.
    pub fn training_data(&self, registry: &LabelRegistry) -> Result<(Matrix, Vec<usize>)> {
        let mut features = Matrix::default();
        let mut labels = Vec::new();
        self.training_data_into(registry, &mut features, &mut labels)?;
        Ok((features, labels))
    }

    /// [`training_data`](Self::training_data) writing into caller-provided
    /// buffers, so retraining loops can reuse one feature matrix across
    /// updates instead of re-cloning every exemplar row.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] if a stored class is missing from the
    /// registry, [`CoreError::InsufficientData`] on an empty support set.
    pub fn training_data_into(
        &self,
        registry: &LabelRegistry,
        features: &mut Matrix,
        labels: &mut Vec<usize>,
    ) -> Result<()> {
        let total = self.total_samples();
        let dim = self
            .classes
            .values()
            .flat_map(|v| v.iter())
            .next()
            .map(Vec::len)
            .ok_or_else(|| CoreError::InsufficientData("support set is empty".into()))?;
        features.resize(total, dim);
        labels.clear();
        labels.reserve(total);
        let mut r = 0;
        for (label, samples) in &self.classes {
            let id = registry
                .id_of(label)
                .ok_or_else(|| CoreError::UnknownClass(label.clone()))?;
            for s in samples {
                if s.len() != dim {
                    return Err(CoreError::InsufficientData(format!(
                        "class `{label}` has a {}-dim exemplar, expected {dim}",
                        s.len()
                    )));
                }
                features.row_mut(r).copy_from_slice(s);
                labels.push(id);
                r += 1;
            }
        }
        Ok(())
    }

    /// Stack the exemplars of one class into a caller-provided matrix —
    /// the staging step for batched prototype construction.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] for an unstored label,
    /// [`CoreError::InsufficientData`] for a class with no exemplars.
    pub fn class_features_into(&self, label: &str, out: &mut Matrix) -> Result<()> {
        let samples = self
            .classes
            .get(label)
            .ok_or_else(|| CoreError::UnknownClass(label.to_string()))?;
        let dim = samples
            .first()
            .map(Vec::len)
            .ok_or_else(|| CoreError::InsufficientData(format!("class `{label}` is empty")))?;
        out.resize(samples.len(), dim);
        for (i, s) in samples.iter().enumerate() {
            out.row_mut(i).copy_from_slice(s);
        }
        Ok(())
    }

    fn select(&self, samples: &[Vec<f32>], rng: &mut SeededRng) -> Vec<Vec<f32>> {
        if samples.len() <= self.budget_per_class {
            return samples.to_vec();
        }
        match self.strategy {
            SelectionStrategy::Random | SelectionStrategy::Reservoir => {
                // Batch context: reservoir over a known set == uniform
                // random subset.
                rng.sample_indices(samples.len(), self.budget_per_class)
                    .into_iter()
                    .map(|i| samples[i].clone())
                    .collect()
            }
            SelectionStrategy::Herding => herding_select(samples, self.budget_per_class),
        }
    }
}

/// Greedy herding selection: at step k pick the sample that brings the
/// running exemplar mean closest to the true class mean.
fn herding_select(samples: &[Vec<f32>], budget: usize) -> Vec<Vec<f32>> {
    let dim = samples[0].len();
    let refs: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
    let target = vector::mean_vector(&refs).unwrap_or_else(|| vec![0.0; dim]);
    let mut chosen: Vec<usize> = Vec::with_capacity(budget);
    let mut running_sum = vec![0.0f32; dim];
    let mut used = vec![false; samples.len()];
    for k in 0..budget.min(samples.len()) {
        let mut best_idx = usize::MAX;
        let mut best_dist = f32::INFINITY;
        for (i, s) in samples.iter().enumerate() {
            if used[i] {
                continue;
            }
            // Candidate running mean if we added sample i.
            let inv = 1.0 / (k + 1) as f32;
            let mut dist = 0.0f32;
            for d in 0..dim {
                let m = (running_sum[d] + s[d]) * inv;
                let diff = m - target[d];
                dist += diff * diff;
            }
            if dist < best_dist {
                best_dist = dist;
                best_idx = i;
            }
        }
        used[best_idx] = true;
        chosen.push(best_idx);
        for d in 0..dim {
            running_sum[d] += samples[best_idx][d];
        }
    }
    chosen.into_iter().map(|i| samples[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_samples(n: usize, dim: usize, center: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal_with(center, 1.0)).collect())
            .collect()
    }

    #[test]
    fn budget_is_enforced() {
        let mut rng = SeededRng::new(1);
        for strategy in [
            SelectionStrategy::Random,
            SelectionStrategy::Herding,
            SelectionStrategy::Reservoir,
        ] {
            let mut ss = SupportSet::new(10, strategy);
            ss.set_class("walk", &gaussian_samples(50, 4, 0.0, 2), &mut rng)
                .unwrap();
            assert_eq!(ss.samples("walk").unwrap().len(), 10, "{strategy:?}");
        }
    }

    #[test]
    fn under_budget_keeps_everything() {
        let mut rng = SeededRng::new(3);
        let mut ss = SupportSet::new(100, SelectionStrategy::Herding);
        let samples = gaussian_samples(7, 4, 1.0, 4);
        ss.set_class("run", &samples, &mut rng).unwrap();
        assert_eq!(ss.samples("run").unwrap(), samples.as_slice());
    }

    #[test]
    fn empty_class_rejected() {
        let mut rng = SeededRng::new(5);
        let mut ss = SupportSet::new(10, SelectionStrategy::Random);
        assert!(matches!(
            ss.set_class("x", &[], &mut rng),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn herding_mean_beats_random_mean() {
        // Herding's running mean should track the class mean better than a
        // random subset of the same size.
        let samples = gaussian_samples(400, 8, 0.5, 6);
        let refs: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
        let target = vector::mean_vector(&refs).unwrap();

        let mut rng = SeededRng::new(7);
        let mut herd = SupportSet::new(10, SelectionStrategy::Herding);
        herd.set_class("c", &samples, &mut rng).unwrap();
        let herd_refs: Vec<&[f32]> = herd.samples("c").unwrap().iter().map(Vec::as_slice).collect();
        let herd_mean = vector::mean_vector(&herd_refs).unwrap();
        let herd_err = vector::euclidean(&herd_mean, &target);

        // Average random error over a few draws.
        let mut total_rand_err = 0.0;
        for s in 0..5 {
            let mut rng2 = SeededRng::new(100 + s);
            let mut rand = SupportSet::new(10, SelectionStrategy::Random);
            rand.set_class("c", &samples, &mut rng2).unwrap();
            let r: Vec<&[f32]> = rand.samples("c").unwrap().iter().map(Vec::as_slice).collect();
            total_rand_err += vector::euclidean(&vector::mean_vector(&r).unwrap(), &target);
        }
        let rand_err = total_rand_err / 5.0;
        assert!(
            herd_err < rand_err * 0.5,
            "herding err {herd_err}, random err {rand_err}"
        );
    }

    #[test]
    fn reservoir_streaming_respects_budget_and_distribution() {
        let mut rng = SeededRng::new(8);
        let mut ss = SupportSet::new(20, SelectionStrategy::Reservoir);
        for i in 0..1000 {
            ss.push_sample("s", vec![i as f32], &mut rng);
        }
        let stored = ss.samples("s").unwrap();
        assert_eq!(stored.len(), 20);
        // A reservoir over 0..1000 should contain late elements too.
        let max = stored.iter().map(|v| v[0]).fold(0.0f32, f32::max);
        assert!(max > 500.0, "reservoir biased to early items: max {max}");
        assert_eq!(ss.total_samples(), 20);
    }

    #[test]
    fn class_means_and_training_data() {
        let mut rng = SeededRng::new(9);
        let mut ss = SupportSet::new(50, SelectionStrategy::Random);
        ss.set_class("a", &vec![vec![1.0, 2.0]; 5], &mut rng).unwrap();
        ss.set_class("b", &vec![vec![3.0, 4.0]; 3], &mut rng).unwrap();
        let means = ss.class_means();
        assert_eq!(means["a"], vec![1.0, 2.0]);
        assert_eq!(means["b"], vec![3.0, 4.0]);

        let registry = LabelRegistry::from_labels(["a", "b"]);
        let (features, labels) = ss.training_data(&registry).unwrap();
        assert_eq!(features.shape(), (8, 2));
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 5);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 3);

        // Missing registry entry is an error.
        let incomplete = LabelRegistry::from_labels(["a"]);
        assert!(matches!(
            ss.training_data(&incomplete),
            Err(CoreError::UnknownClass(_))
        ));
    }

    #[test]
    fn byte_accounting_matches_paper_arithmetic() {
        // 200 exemplars x 80 f32 features per class; five classes ≈
        // 0.3 MB total, within the paper's "roughly 0.5 MB" envelope.
        let mut rng = SeededRng::new(10);
        let mut ss = SupportSet::new(200, SelectionStrategy::Random);
        for label in ["drive", "e_scooter", "run", "still", "walk"] {
            ss.set_class(label, &gaussian_samples(200, 80, 0.0, 11), &mut rng)
                .unwrap();
        }
        assert_eq!(ss.bytes(), 5 * 200 * 80 * 4);
        let mb = ss.bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 0.5, "support set {mb:.2} MiB");
        assert_eq!(ss.num_classes(), 5);
        assert_eq!(ss.classes().len(), 5);
    }

    #[test]
    fn remove_and_replace_class() {
        let mut rng = SeededRng::new(12);
        let mut ss = SupportSet::new(10, SelectionStrategy::Random);
        ss.set_class("walk", &gaussian_samples(5, 4, 0.0, 13), &mut rng)
            .unwrap();
        assert!(ss.remove_class("walk"));
        assert!(!ss.remove_class("walk"));
        assert!(ss.samples("walk").is_none());

        // Calibration path: replace with user-specific data.
        ss.set_class("walk", &gaussian_samples(5, 4, 10.0, 14), &mut rng)
            .unwrap();
        let mean = &ss.class_means()["walk"];
        assert!(mean[0] > 5.0, "replacement data should dominate");
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = SeededRng::new(15);
        let mut ss = SupportSet::new(5, SelectionStrategy::Herding);
        ss.set_class("x", &gaussian_samples(8, 3, 0.0, 16), &mut rng)
            .unwrap();
        let json = serde_json::to_string(&ss).unwrap();
        let back: SupportSet = serde_json::from_str(&json).unwrap();
        assert_eq!(ss, back);
    }
}
