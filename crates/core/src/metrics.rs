//! Evaluation metrics: confusion matrix, accuracy, macro-F1 and the
//! catastrophic-forgetting measures used by the A1 experiment.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Label-keyed confusion matrix.
///
/// Internally a dense `n × n` count grid plus a label→index map, so
/// recording an observation is two `O(log n)` index lookups and one
/// array increment — no per-observation allocation and no linear label
/// scan. Million-window fleet evaluations stay linear in observations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// All labels, in first-seen order.
    labels: Vec<String>,
    /// Label → position in `labels` (and thus grid row/column).
    index: BTreeMap<String, usize>,
    /// Row-major `labels.len()²` grid: `grid[truth * n + predicted]`.
    grid: Vec<usize>,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of `label`, registering it (and growing the grid) if new.
    fn index_or_insert(&mut self, label: &str) -> usize {
        if let Some(&i) = self.index.get(label) {
            return i;
        }
        let old_n = self.labels.len();
        let new_n = old_n + 1;
        // Re-embed the old n×n grid into the new (n+1)×(n+1) one. Label
        // additions are rare (once per class) so the O(n²) copy is noise
        // next to the per-observation path.
        let mut grid = vec![0usize; new_n * new_n];
        for t in 0..old_n {
            grid[t * new_n..t * new_n + old_n]
                .copy_from_slice(&self.grid[t * old_n..(t + 1) * old_n]);
        }
        self.grid = grid;
        self.labels.push(label.to_string());
        self.index.insert(label.to_string(), old_n);
        old_n
    }

    /// Index of `label`, if it has been seen.
    fn index_of(&self, label: &str) -> Option<usize> {
        self.index.get(label).copied()
    }

    /// Record one `(truth, predicted)` observation.
    pub fn record(&mut self, truth: &str, predicted: &str) {
        let t = self.index_or_insert(truth);
        let p = self.index_or_insert(predicted);
        let n = self.labels.len();
        self.grid[t * n + p] += 1;
    }

    /// All labels seen, in first-seen order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.grid.iter().sum()
    }

    /// Count for a `(truth, predicted)` cell.
    pub fn count(&self, truth: &str, predicted: &str) -> usize {
        match (self.index_of(truth), self.index_of(predicted)) {
            (Some(t), Some(p)) => self.grid[t * self.labels.len() + p],
            _ => 0,
        }
    }

    /// Overall accuracy; `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = self.labels.len();
        let correct: usize = (0..n).map(|i| self.grid[i * n + i]).sum();
        correct as f64 / total as f64
    }

    /// Recall (per-class accuracy) for one label; `None` if the label has
    /// no ground-truth observations.
    pub fn recall(&self, label: &str) -> Option<f64> {
        let t = self.index_of(label)?;
        let n = self.labels.len();
        let truth_total: usize = self.grid[t * n..(t + 1) * n].iter().sum();
        if truth_total == 0 {
            return None;
        }
        Some(self.grid[t * n + t] as f64 / truth_total as f64)
    }

    /// Precision for one label; `None` if the label was never predicted.
    pub fn precision(&self, label: &str) -> Option<f64> {
        let p = self.index_of(label)?;
        let n = self.labels.len();
        let pred_total: usize = (0..n).map(|t| self.grid[t * n + p]).sum();
        if pred_total == 0 {
            return None;
        }
        Some(self.grid[p * n + p] as f64 / pred_total as f64)
    }

    /// F1 for one label; `None` when undefined.
    pub fn f1(&self, label: &str) -> Option<f64> {
        let p = self.precision(label)?;
        let r = self.recall(label)?;
        if p + r == 0.0 {
            return Some(0.0);
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Macro-averaged F1 over labels with ground truth; `0.0` when empty.
    pub fn macro_f1(&self) -> f64 {
        let scores: Vec<f64> = self
            .labels
            .iter()
            .filter_map(|l| self.f1(l).or(Some(0.0)).filter(|_| self.recall(l).is_some()))
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }

    /// Mean accuracy over a subset of labels (old classes in forgetting
    /// experiments); `0.0` if none of them have observations.
    pub fn subset_accuracy(&self, labels: &[&str]) -> f64 {
        let recalls: Vec<f64> = labels.iter().filter_map(|l| self.recall(l)).collect();
        if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        }
    }

    /// Render the matrix as an aligned text table (experiment reports).
    pub fn to_table(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let width = labels.iter().map(String::len).max().unwrap_or(5).max(5) + 2;
        let mut out = String::new();
        out.push_str(&format!("{:>width$}", "t\\p", width = width));
        for p in &labels {
            out.push_str(&format!("{p:>width$}"));
        }
        out.push('\n');
        for t in &labels {
            out.push_str(&format!("{t:>width$}"));
            for p in &labels {
                out.push_str(&format!("{:>width$}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

/// Forgetting measures comparing old-class accuracy before and after a
/// model update (the paper's catastrophic-forgetting concern, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForgettingReport {
    /// Mean old-class accuracy before the update.
    pub old_acc_before: f64,
    /// Mean old-class accuracy after the update.
    pub old_acc_after: f64,
    /// Accuracy on the newly learned class after the update.
    pub new_acc_after: f64,
}

impl ForgettingReport {
    /// Forgetting = accuracy lost on old classes (positive = forgot).
    pub fn forgetting(&self) -> f64 {
        self.old_acc_before - self.old_acc_after
    }

    /// Backward transfer (negative forgetting is positive transfer).
    pub fn backward_transfer(&self) -> f64 {
        -self.forgetting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new();
        // walk: 8/10 correct, 2 confused as run.
        for _ in 0..8 {
            cm.record("walk", "walk");
        }
        for _ in 0..2 {
            cm.record("walk", "run");
        }
        // run: 9/10 correct.
        for _ in 0..9 {
            cm.record("run", "run");
        }
        cm.record("run", "walk");
        cm
    }

    #[test]
    fn accuracy_and_counts() {
        let cm = sample();
        assert_eq!(cm.total(), 20);
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert_eq!(cm.count("walk", "run"), 2);
        assert_eq!(cm.count("run", "nope"), 0);
        assert_eq!(cm.labels().len(), 2);
    }

    #[test]
    fn recall_precision_f1() {
        let cm = sample();
        assert!((cm.recall("walk").unwrap() - 0.8).abs() < 1e-12);
        assert!((cm.recall("run").unwrap() - 0.9).abs() < 1e-12);
        // precision(walk) = 8 / 9
        assert!((cm.precision("walk").unwrap() - 8.0 / 9.0).abs() < 1e-12);
        assert!(cm.recall("nope").is_none());
        assert!(cm.precision("nope").is_none());
        let f1 = cm.f1("walk").unwrap();
        let p = 8.0 / 9.0;
        let r = 0.8;
        assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_averages_classes() {
        let cm = sample();
        let expected = (cm.f1("walk").unwrap() + cm.f1("run").unwrap()) / 2.0;
        assert!((cm.macro_f1() - expected).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new().macro_f1(), 0.0);
        assert_eq!(ConfusionMatrix::new().accuracy(), 0.0);
    }

    #[test]
    fn subset_accuracy_for_old_classes() {
        let mut cm = sample();
        // A new class with poor accuracy must not affect the old subset.
        cm.record("gesture_hi", "walk");
        let old = cm.subset_accuracy(&["walk", "run"]);
        assert!((old - 0.85).abs() < 1e-12);
        assert_eq!(cm.subset_accuracy(&["missing"]), 0.0);
    }

    #[test]
    fn a_never_predicted_class_has_zero_f1_in_macro() {
        let mut cm = ConfusionMatrix::new();
        cm.record("a", "a");
        cm.record("b", "a"); // b never predicted correctly nor at all
        let macro_f1 = cm.macro_f1();
        assert!(macro_f1 < 0.9);
        assert!(cm.f1("b").is_none()); // precision undefined
    }

    #[test]
    fn table_renders_all_cells() {
        let cm = sample();
        let table = cm.to_table();
        assert!(table.contains("walk"));
        assert!(table.contains("run"));
        assert!(table.contains('8'));
        assert!(table.contains('9'));
    }

    #[test]
    fn forgetting_report_math() {
        let r = ForgettingReport {
            old_acc_before: 0.9,
            old_acc_after: 0.7,
            new_acc_after: 0.95,
        };
        assert!((r.forgetting() - 0.2).abs() < 1e-12);
        assert!((r.backward_transfer() + 0.2).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let cm = sample();
        let json = serde_json::to_string(&cm).unwrap();
        let back: ConfusionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(cm, back);
        // The restored index still resolves cells.
        assert_eq!(back.count("walk", "run"), 2);
    }

    #[test]
    fn grid_growth_preserves_existing_counts() {
        // Interleave new-label introductions with observations so every
        // re-embedding of the grid is exercised, then check cells against
        // an order-independent oracle.
        let labels = ["a", "b", "c", "d", "e", "f", "g"];
        let mut cm = ConfusionMatrix::new();
        let mut oracle = std::collections::BTreeMap::new();
        for round in 0..6usize {
            for (i, t) in labels.iter().enumerate().take(2 + round) {
                let p = labels[(i + round) % (2 + round)];
                cm.record(t, p);
                *oracle.entry((*t, p)).or_insert(0usize) += 1;
            }
        }
        assert_eq!(cm.total(), oracle.values().sum::<usize>());
        for t in labels {
            for p in labels {
                assert_eq!(
                    cm.count(t, p),
                    oracle.get(&(t, p)).copied().unwrap_or(0),
                    "cell ({t}, {p})"
                );
            }
        }
        // First-seen order is preserved.
        assert_eq!(cm.labels()[0], "a");
        assert_eq!(cm.labels()[1], "b");
    }

    #[test]
    fn high_volume_recording_stays_consistent() {
        // The fleet-evaluation shape: few labels, many observations.
        let mut cm = ConfusionMatrix::new();
        let labels = ["walk", "run", "still", "drive", "e_scooter"];
        for i in 0..100_000usize {
            let t = labels[i % labels.len()];
            let p = labels[(i * 7 + i / 13) % labels.len()];
            cm.record(t, p);
        }
        assert_eq!(cm.total(), 100_000);
        assert_eq!(cm.labels().len(), 5);
        let cm_ref = &cm;
        let cell_sum: usize = labels
            .iter()
            .flat_map(|t| labels.iter().map(move |p| cm_ref.count(t, p)))
            .sum();
        assert_eq!(cell_sum, 100_000);
    }
}
