//! The Cloud → Edge bundle.
//!
//! §3.2: three artefacts are transferred into the Edge device — the
//! pre-processing function, the initial ML model, and the support set.
//! [`EdgeBundle`] packages exactly those (plus the label registry that
//! names the classes) into one versioned binary payload, and §4.2's claim
//! — "the entire data size that the demonstration needs on the Edge
//! device … does not exceed 5 MB" — is measured against
//! [`EdgeBundle::to_bytes`].
//!
//! Layout (little-endian, length-prefixed sections):
//!
//! ```text
//! bundle  := magic "MGBD" | u32 wire_version | u8 model_format
//!            | [section(lineage json)]            -- wire_version 2 only
//!            | section(pipeline json) | section(model)
//!            | section(support set json) | section(registry json)
//! section := u32 len | len bytes
//! ```
//!
//! Wire version 1 is the legacy pre-lineage layout; bundles without a
//! [`Lineage`] still serialize to it byte-verbatim, so unversioned
//! artefacts round-trip unchanged and decode as model version 0.

use crate::error::CoreError;
use crate::label::LabelRegistry;
use crate::precision::ResidentModel;
use crate::support_set::SupportSet;
use crate::version::{Fnv64, Lineage, ModelVersion};
use crate::Result;
use bytes::{Buf, Bytes};
use magneto_dsp::PreprocessingPipeline;
use magneto_nn::quantize::{QuantizedMlp, QuantizedSiamese};
use magneto_nn::serialize::{decode_mlp, encode_mlp};
use magneto_nn::SiameseNetwork;
use serde::{Deserialize, Serialize};

const MAGIC: &[u8; 4] = b"MGBD";
/// Legacy wire version: no lineage section.
const WIRE_LEGACY: u32 = 1;
/// Versioned wire: a lineage section follows the format byte.
const WIRE_LINEAGE: u32 = 2;
const FORMAT_F32: u8 = 0;
const FORMAT_QUANTIZED: u8 = 1;

/// The deployable artefact produced by Cloud initialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBundle {
    /// The pre-processing function (denoise → 80 features → normalise).
    pub pipeline: PreprocessingPipeline,
    /// The embedding model at the precision it was decoded (or built)
    /// at. A quantised bundle decodes straight into the `Int8` arm — no
    /// f32 weights are ever materialised.
    pub model: ResidentModel,
    /// Budgeted per-class exemplars.
    pub support_set: SupportSet,
    /// Class id registry.
    pub registry: LabelRegistry,
    /// Version lineage. `None` for legacy bundles, which serialize to
    /// the pre-lineage wire layout byte-verbatim and report
    /// [`ModelVersion::LEGACY`].
    pub lineage: Option<Lineage>,
}

/// Byte-level breakdown of a serialised bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BundleSizeReport {
    /// Pipeline section bytes.
    pub pipeline_bytes: usize,
    /// Model section bytes.
    pub model_bytes: usize,
    /// Support-set section bytes.
    pub support_set_bytes: usize,
    /// Registry section bytes.
    pub registry_bytes: usize,
    /// Total bundle bytes including framing.
    pub total_bytes: usize,
}

impl BundleSizeReport {
    /// Total size in MiB (binary mebibytes, for humans used to them).
    pub fn total_mib(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Total size in decimal megabytes — the unit of the paper's
    /// "does not exceed 5 MB".
    pub fn total_mb(&self) -> f64 {
        self.total_bytes as f64 / 1_000_000.0
    }

    /// Whether the paper's 5 MB budget is met. "MB" is decimal
    /// (5 MB = 5,000,000 bytes); the earlier MiB comparison silently
    /// granted a ~4.9% larger budget than the paper claims.
    pub fn within_5mb(&self) -> bool {
        self.total_bytes <= 5_000_000
    }
}

fn get_section(buf: &mut Bytes, what: &str) -> Result<Vec<u8>> {
    if buf.remaining() < 4 {
        return Err(CoreError::InvalidBundle(format!("{what} header truncated")));
    }
    let len = buf.get_u32_le() as usize;
    if len > 256 * 1024 * 1024 {
        return Err(CoreError::InvalidBundle(format!(
            "{what} section implausibly large ({len} bytes)"
        )));
    }
    if buf.remaining() < len {
        return Err(CoreError::InvalidBundle(format!("{what} body truncated")));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

impl EdgeBundle {
    /// The model section at the requested wire precision. An int8
    /// resident model writes its weights verbatim when `quantized`;
    /// mixed cases convert (f32→int8 quantises, int8→f32 dequantises).
    fn model_section(&self, quantized: bool) -> Vec<u8> {
        match (&self.model, quantized) {
            (ResidentModel::F32(net), false) => encode_mlp(net.backbone()),
            (ResidentModel::F32(net), true) => QuantizedMlp::quantize(net.backbone())
                .expect("a constructed backbone has no degenerate layers")
                .to_bytes(),
            (ResidentModel::Int8(q), true) => q.backbone().to_bytes(),
            (ResidentModel::Int8(q), false) => encode_mlp(
                &q.backbone()
                    .dequantize()
                    .expect("a constructed quantized backbone is consistent"),
            ),
        }
    }

    /// Stream the bundle's wire bytes into `out`, section by section —
    /// the same layout [`to_bytes`](Self::to_bytes) produces, without
    /// ever materialising the concatenated bundle. Consumers that only
    /// *scan* the bytes (hashing for a model key, checksumming) write
    /// into a digest sink instead of allocating a full serialized copy.
    ///
    /// # Errors
    /// Propagates writer I/O errors (an in-memory sink never fails).
    pub fn write_wire<W: std::io::Write>(&self, quantized: bool, out: &mut W) -> std::io::Result<()> {
        let support = serde_json::to_vec(&SupportEnvelope {
            margin: self.model.margin(),
            support_set: &self.support_set,
        })
        .expect("support set serialisation cannot fail");
        let registry = serde_json::to_vec(&self.registry).expect("registry serialisation");

        out.write_all(MAGIC)?;
        let wire_version = if self.lineage.is_some() {
            WIRE_LINEAGE
        } else {
            WIRE_LEGACY
        };
        out.write_all(&wire_version.to_le_bytes())?;
        out.write_all(&[if quantized { FORMAT_QUANTIZED } else { FORMAT_F32 }])?;
        if let Some(lineage) = &self.lineage {
            let section = serde_json::to_vec(lineage).expect("lineage serialisation");
            out.write_all(&(section.len() as u32).to_le_bytes())?;
            out.write_all(&section)?;
        }
        for section in [
            self.pipeline.to_bytes(),
            self.model_section(quantized),
            support,
            registry,
        ] {
            out.write_all(&(section.len() as u32).to_le_bytes())?;
            out.write_all(&section)?;
        }
        Ok(())
    }

    /// Serialise the bundle. With `quantized = true` the model section
    /// stores int8 weights (~4× smaller, slightly lossy).
    pub fn to_bytes(&self, quantized: bool) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_wire(quantized, &mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Deserialise a bundle produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] on any framing/content problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 9 {
            return Err(CoreError::InvalidBundle("bundle header truncated".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CoreError::InvalidBundle("bad magic".into()));
        }
        let wire_version = buf.get_u32_le();
        if wire_version != WIRE_LEGACY && wire_version != WIRE_LINEAGE {
            return Err(CoreError::InvalidBundle(format!(
                "unsupported bundle version {wire_version}"
            )));
        }
        let format = buf.get_u8();
        let lineage = if wire_version == WIRE_LINEAGE {
            let lineage_bytes = get_section(&mut buf, "lineage")?;
            let lineage: Lineage = serde_json::from_slice(&lineage_bytes)
                .map_err(|e| CoreError::InvalidBundle(format!("lineage: {e}")))?;
            Some(lineage)
        } else {
            None
        };
        let pipeline_bytes = get_section(&mut buf, "pipeline")?;
        let model_bytes = get_section(&mut buf, "model")?;
        let support_bytes = get_section(&mut buf, "support set")?;
        let registry_bytes = get_section(&mut buf, "registry")?;

        let pipeline = PreprocessingPipeline::from_bytes(&pipeline_bytes)?;
        let envelope: SupportEnvelopeOwned = serde_json::from_slice(&support_bytes)
            .map_err(|e| CoreError::InvalidBundle(format!("support set: {e}")))?;
        let registry: LabelRegistry = serde_json::from_slice(&registry_bytes)
            .map_err(|e| CoreError::InvalidBundle(format!("registry: {e}")))?;

        // A quantised model section stays quantised: the int8 weights
        // become the resident model directly, with zero f32 rehydration.
        let model = match format {
            FORMAT_F32 => ResidentModel::F32(SiameseNetwork::new(
                decode_mlp(&model_bytes)?,
                envelope.margin,
            )),
            FORMAT_QUANTIZED => ResidentModel::Int8(QuantizedSiamese::from_parts(
                QuantizedMlp::from_bytes(&model_bytes)?,
                envelope.margin,
            )),
            other => {
                return Err(CoreError::InvalidBundle(format!(
                    "unknown model format {other}"
                )))
            }
        };

        let bundle = EdgeBundle {
            pipeline,
            model,
            support_set: envelope.support_set,
            registry,
            lineage,
        };
        bundle.validate()?;
        Ok(bundle)
    }

    /// This bundle's model version: [`ModelVersion::LEGACY`] (v0) when
    /// no lineage is attached.
    pub fn version(&self) -> ModelVersion {
        self.lineage.map_or(ModelVersion::LEGACY, |l| l.version)
    }

    /// Attach a lineage, turning a legacy bundle into a versioned one.
    #[must_use]
    pub fn with_lineage(mut self, lineage: Lineage) -> EdgeBundle {
        self.lineage = Some(lineage);
        self
    }

    /// FNV-1a content hash over the full-precision wire bytes — the
    /// identity a child's [`Lineage::parent`] records. Streams through
    /// a digest sink; no serialized copy is materialised.
    pub fn content_hash(&self) -> u64 {
        let mut digest = Fnv64::new();
        self.write_wire(false, &mut digest)
            .expect("digest sink cannot fail");
        digest.finish()
    }

    /// A lineage for a direct successor of this bundle: next version,
    /// parent hash set to this bundle's content hash.
    pub fn child_lineage(&self) -> Lineage {
        Lineage {
            version: self.version().next(),
            parent: Some(self.content_hash()),
        }
    }

    /// Cross-component consistency checks (run automatically on decode).
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] describing the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        if let Some(lineage) = &self.lineage {
            if lineage.version.is_legacy() {
                return Err(CoreError::InvalidBundle(
                    "lineage carries the reserved legacy version v0".into(),
                ));
            }
        }
        if self.model.input_dim() != self.pipeline.output_dim() {
            return Err(CoreError::InvalidBundle(format!(
                "model expects {} features, pipeline produces {}",
                self.model.input_dim(),
                self.pipeline.output_dim()
            )));
        }
        for label in self.support_set.classes() {
            if !self.registry.contains(label) {
                return Err(CoreError::InvalidBundle(format!(
                    "support class `{label}` missing from registry"
                )));
            }
            if let Some(samples) = self.support_set.samples(label) {
                if samples
                    .iter()
                    .any(|s| s.len() != self.pipeline.output_dim())
                {
                    return Err(CoreError::InvalidBundle(format!(
                        "support samples for `{label}` have wrong dimension"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Measured size breakdown for a given precision.
    pub fn size_report(&self, quantized: bool) -> BundleSizeReport {
        let pipeline_bytes = self.pipeline.to_bytes().len();
        let model_bytes = self.model_section(quantized).len();
        let support_set_bytes = serde_json::to_vec(&SupportEnvelope {
            margin: self.model.margin(),
            support_set: &self.support_set,
        })
        .map(|v| v.len())
        .unwrap_or(0);
        let registry_bytes = serde_json::to_vec(&self.registry).map(|v| v.len()).unwrap_or(0);
        BundleSizeReport {
            pipeline_bytes,
            model_bytes,
            support_set_bytes,
            registry_bytes,
            total_bytes: self.to_bytes(quantized).len(),
        }
    }

    /// Serialised total at f32 precision (convenience).
    pub fn total_bytes(&self) -> usize {
        self.to_bytes(false).len()
    }
}

#[derive(Serialize)]
struct SupportEnvelope<'a> {
    margin: f32,
    support_set: &'a SupportSet,
}

#[derive(Deserialize)]
struct SupportEnvelopeOwned {
    margin: f32,
    support_set: SupportSet,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support_set::SelectionStrategy;
    use magneto_dsp::PipelineConfig;
    use magneto_nn::Mlp;
    use magneto_tensor::SeededRng;

    fn tiny_bundle(seed: u64) -> EdgeBundle {
        let mut rng = SeededRng::new(seed);
        let mut pipeline = PreprocessingPipeline::new(PipelineConfig::default());
        // Fit the normaliser on a few synthetic windows.
        let windows: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|k| {
                (0..22)
                    .map(|c| {
                        (0..120)
                            .map(|i| ((c + k) as f32 * 0.1 + i as f32 * 0.01).sin())
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = windows.iter().map(|w| w.as_slice()).collect();
        pipeline.fit_normalizer(&refs).unwrap();

        let backbone = Mlp::new(&[80, 16, 8], &mut rng).unwrap();
        let mut support = SupportSet::new(10, SelectionStrategy::Random);
        let samples: Vec<Vec<f32>> = (0..6).map(|_| vec![0.1; 80]).collect();
        support.set_class("walk", &samples, &mut rng).unwrap();
        support.set_class("run", &samples, &mut rng).unwrap();
        EdgeBundle {
            pipeline,
            model: SiameseNetwork::new(backbone, 1.0).into(),
            support_set: support,
            registry: LabelRegistry::from_labels(["walk", "run"]),
            lineage: None,
        }
    }

    #[test]
    fn roundtrip_f32() {
        let b = tiny_bundle(1);
        let bytes = b.to_bytes(false);
        let back = EdgeBundle::from_bytes(&bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn roundtrip_quantized_preserves_structure() {
        let b = tiny_bundle(2);
        let bytes = b.to_bytes(true);
        let back = EdgeBundle::from_bytes(&bytes).unwrap();
        // Weights are lossy but architecture and everything else is exact,
        // and the decoded model stays int8 — no f32 rehydration.
        assert_eq!(back.model.precision(), crate::precision::Precision::Int8);
        assert_eq!(back.model.dims(), b.model.dims());
        assert_eq!(back.support_set, b.support_set);
        assert_eq!(back.registry, b.registry);
        assert!(bytes.len() < b.to_bytes(false).len());
    }

    #[test]
    fn quantized_bundle_reserializes_verbatim() {
        // int8 → bytes → int8 → bytes is lossless: the resident weights
        // are written back without any dequantize/requantize round trip.
        let b = tiny_bundle(10);
        let bytes = b.to_bytes(true);
        let back = EdgeBundle::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(true), bytes);
    }

    #[test]
    fn size_report_is_consistent() {
        let b = tiny_bundle(3);
        let report = b.size_report(false);
        assert_eq!(report.total_bytes, b.total_bytes());
        let parts = report.pipeline_bytes
            + report.model_bytes
            + report.support_set_bytes
            + report.registry_bytes;
        // Total = parts + framing (9-byte header + 4 section headers).
        assert_eq!(report.total_bytes, parts + 9 + 16);
        assert!(report.total_mib() > 0.0);
    }

    #[test]
    fn corruption_rejected() {
        let b = tiny_bundle(4);
        let good = b.to_bytes(false);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            EdgeBundle::from_bytes(&bad),
            Err(CoreError::InvalidBundle(_))
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(EdgeBundle::from_bytes(&bad_version).is_err());
        assert!(EdgeBundle::from_bytes(&good[..good.len() / 2]).is_err());
        assert!(EdgeBundle::from_bytes(&[]).is_err());
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut b = tiny_bundle(5);
        // Registry missing a support class.
        b.registry = LabelRegistry::from_labels(["walk"]);
        assert!(matches!(b.validate(), Err(CoreError::InvalidBundle(_))));

        // Model input dim that does not match the pipeline.
        let mut b2 = tiny_bundle(6);
        let mut rng = SeededRng::new(7);
        b2.model = SiameseNetwork::new(Mlp::new(&[40, 8], &mut rng).unwrap(), 1.0).into();
        assert!(b2.validate().is_err());
    }

    #[test]
    fn decode_validates() {
        // A bundle whose support set references a class absent from the
        // registry must fail from_bytes, not just validate().
        let mut b = tiny_bundle(8);
        b.registry = LabelRegistry::from_labels(["walk"]);
        let bytes = b.to_bytes(false);
        assert!(EdgeBundle::from_bytes(&bytes).is_err());
    }

    #[test]
    fn margin_survives_roundtrip() {
        let mut b = tiny_bundle(9);
        b.model.set_margin(2.5);
        let back = EdgeBundle::from_bytes(&b.to_bytes(false)).unwrap();
        assert_eq!(back.model.margin(), 2.5);
        let back_q = EdgeBundle::from_bytes(&b.to_bytes(true)).unwrap();
        assert_eq!(back_q.model.margin(), 2.5);
    }

    #[test]
    fn within_5mb_uses_decimal_megabytes() {
        let at_budget = BundleSizeReport {
            pipeline_bytes: 0,
            model_bytes: 0,
            support_set_bytes: 0,
            registry_bytes: 0,
            total_bytes: 5_000_000,
        };
        assert!(at_budget.within_5mb());
        let one_over = BundleSizeReport {
            total_bytes: 5_000_001,
            ..at_budget
        };
        assert!(!one_over.within_5mb());
        // 5,000,001 bytes is under 5 MiB — the old MiB comparison would
        // have (wrongly) passed it.
        assert!(one_over.total_mib() < 5.0);
        assert!(one_over.total_mb() > 5.0);
    }

    #[test]
    fn legacy_bundle_serializes_byte_verbatim_and_reports_v0() {
        // A bundle with no lineage must keep the pre-versioning wire
        // layout exactly: wire version 1, no lineage section, and a
        // byte-identical re-serialization after decode.
        let b = tiny_bundle(20);
        assert_eq!(b.version(), ModelVersion::LEGACY);
        let bytes = b.to_bytes(false);
        assert_eq!(&bytes[4..8], &1u32.to_le_bytes());
        let back = EdgeBundle::from_bytes(&bytes).unwrap();
        assert_eq!(back.version(), ModelVersion::LEGACY);
        assert_eq!(back.to_bytes(false), bytes);
    }

    #[test]
    fn versioned_bundle_roundtrips_lineage() {
        let root = tiny_bundle(21).with_lineage(Lineage::root(1));
        for quantized in [false, true] {
            let bytes = root.to_bytes(quantized);
            assert_eq!(&bytes[4..8], &2u32.to_le_bytes());
            let back = EdgeBundle::from_bytes(&bytes).unwrap();
            assert_eq!(back.version(), ModelVersion(1));
            assert_eq!(back.lineage, root.lineage);
            // Versioned bundles re-serialize byte-identically too.
            assert_eq!(back.to_bytes(quantized), bytes);
        }
    }

    #[test]
    fn child_lineage_validates_against_parent() {
        let root = tiny_bundle(22).with_lineage(Lineage::root(1));
        let child = tiny_bundle(23).with_lineage(root.child_lineage());
        assert_eq!(child.version(), ModelVersion(2));
        child
            .lineage
            .unwrap()
            .validate_succession(root.version(), root.content_hash())
            .unwrap();
        // A tampered parent does not validate.
        let other = tiny_bundle(24);
        assert!(child
            .lineage
            .unwrap()
            .validate_succession(other.version(), other.content_hash())
            .is_err());
    }

    #[test]
    fn lineage_with_legacy_version_is_rejected() {
        let b = tiny_bundle(25).with_lineage(Lineage::root(0));
        assert!(b.validate().is_err());
        assert!(EdgeBundle::from_bytes(&b.to_bytes(false)).is_err());
    }

    #[test]
    fn content_hash_streams_the_f32_wire() {
        let b = tiny_bundle(26);
        let mut digest = Fnv64::new();
        digest.update(&b.to_bytes(false));
        assert_eq!(b.content_hash(), digest.finish());
        // Attaching lineage changes the wire bytes and thus the hash.
        let versioned = b.clone().with_lineage(Lineage::root(1));
        assert_ne!(versioned.content_hash(), digest.finish());
    }

    #[test]
    fn truncation_at_every_prefix_errors_without_panicking() {
        for b in [tiny_bundle(11), tiny_bundle(11).with_lineage(Lineage::root(3))] {
            for quantized in [false, true] {
                let good = b.to_bytes(quantized);
                for cut in 0..good.len() {
                    assert!(
                        EdgeBundle::from_bytes(&good[..cut]).is_err(),
                        "prefix of {cut}/{} bytes decoded successfully",
                        good.len()
                    );
                }
            }
        }
    }

    #[test]
    fn random_byte_flips_never_panic() {
        for b in [tiny_bundle(12), tiny_bundle(12).with_lineage(Lineage::root(2))] {
            for quantized in [false, true] {
                let good = b.to_bytes(quantized);
                let mut rng = SeededRng::new(13);
                for _ in 0..200 {
                    let mut bad = good.clone();
                    let pos = (rng.next_u64() as usize) % bad.len();
                    let bit = 1u8 << ((rng.next_u64() % 8) as u8);
                    bad[pos] ^= bit;
                    // Decoding corrupted input may fail or (for benign flips)
                    // succeed; it must never panic.
                    let _ = EdgeBundle::from_bytes(&bad);
                }
            }
        }
    }
}
