//! On-device incremental learning and calibration (§3.3).
//!
//! The paper's edge update loop:
//!
//! 1. **Samples recording** — the user records ~20–30 s of a new activity;
//! 2. **Support set update** — the fresh data is folded into the support
//!    set;
//! 3. **Model re-training** — the model is updated on the combined
//!    support set with a joint **contrastive + distillation** objective,
//!    where the teacher is the frozen pre-update model (this is what
//!    holds off catastrophic forgetting);
//!
//! then the NCM prototypes are recomputed in the new embedding space.
//! *Calibration* "mirrors the re-training process, with the distinction
//! that the data for the targeted activity within the support set is
//! replaced with newly acquired data".

use crate::embed::BatchEmbedder;
use crate::error::CoreError;
use crate::label::LabelRegistry;
use crate::ncm::NcmClassifier;
use crate::precision::{Precision, ResidentModel, ResidentSupport};
use crate::Result;
use magneto_nn::trainer::{train_siamese_masked, TrainerConfig, TrainingReport};
use magneto_nn::{Mlp, QuantizedSiamese};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Incremental-update configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Re-training hyper-parameters (defaults to
    /// [`TrainerConfig::edge_update`]: few epochs, distillation on).
    pub trainer: TrainerConfig,
    /// Distance metric for the rebuilt NCM classifier.
    pub metric: DistanceMetric,
    /// Disable the distillation term (A1 ablation).
    pub disable_distillation: bool,
    /// Disable support-set replay: re-train on the fresh recording only,
    /// the naive fine-tuning regime where catastrophic forgetting is at
    /// its worst (A1 ablation). The support set is still *updated* (the
    /// NCM needs prototypes); it is just excluded from the training set.
    pub disable_replay: bool,
    /// Post-training validation thresholds for the transactional update
    /// path ([`ModelState::update_transactional`]). `serde(default)`
    /// keeps configs serialised before this field existed loadable.
    #[serde(default)]
    pub validation: ValidationConfig,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            trainer: TrainerConfig::edge_update(),
            metric: DistanceMetric::Euclidean,
            disable_distillation: false,
            disable_replay: false,
            validation: ValidationConfig::default(),
        }
    }
}

/// Acceptance thresholds a freshly trained state must clear before the
/// transactional update commits it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Minimum post-update accuracy on the *old* classes' own support
    /// exemplars (the cheapest held-back forgetting probe the device
    /// has: data it already stores, classified through the new model).
    /// `<= 0` disables the check. Support exemplars are training data,
    /// so a healthy update scores near 1.0 here — a drop below 0.5 means
    /// the old embedding space collapsed.
    pub self_accuracy_floor: f32,
    /// Maximum allowed ratio of final epoch loss to first epoch loss.
    /// Healthy contrastive updates routinely grow the loss a few-fold
    /// early on (the new class reshapes the pair distribution), so the
    /// default only fires on order-of-magnitude blow-ups. `<= 0`
    /// disables the check.
    pub max_loss_growth: f32,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            self_accuracy_floor: 0.5,
            max_loss_growth: 10.0,
        }
    }
}

impl ValidationConfig {
    /// All checks except weight/loss finiteness disabled (the finiteness
    /// checks cannot be turned off — committing NaN weights is never
    /// acceptable).
    pub fn permissive() -> Self {
        ValidationConfig {
            self_accuracy_floor: 0.0,
            max_loss_growth: 0.0,
        }
    }
}

/// Why a transactional update refused to commit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RollbackReason {
    /// An epoch loss came out NaN/infinite during re-training.
    NonFiniteLoss {
        /// Zero-based epoch of the first non-finite loss.
        epoch: usize,
    },
    /// The trained weights contain a non-finite parameter.
    NonFiniteWeights,
    /// The loss trajectory grew past the configured ratio.
    LossDiverged {
        /// First epoch loss.
        first: f32,
        /// Final epoch loss.
        last: f32,
        /// The configured [`ValidationConfig::max_loss_growth`].
        max_growth: f32,
    },
    /// Old-class self-accuracy fell below the configured floor
    /// (catastrophic forgetting detected).
    SelfAccuracy {
        /// Measured post-update accuracy on old-class exemplars.
        after: f32,
        /// The configured [`ValidationConfig::self_accuracy_floor`].
        floor: f32,
    },
    /// A base-version migration found personalization it cannot
    /// re-derive through the new backbone (a prototype with no stored
    /// support rows to replay).
    MissingReplaySource,
}

impl std::fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackReason::NonFiniteLoss { epoch } => {
                write!(f, "non-finite training loss at epoch {epoch}")
            }
            RollbackReason::NonFiniteWeights => write!(f, "non-finite trained weights"),
            RollbackReason::LossDiverged {
                first,
                last,
                max_growth,
            } => write!(
                f,
                "loss diverged: {first} -> {last} (allowed growth {max_growth}x)"
            ),
            RollbackReason::SelfAccuracy { after, floor } => write!(
                f,
                "old-class self-accuracy {after:.3} fell below floor {floor:.3}"
            ),
            RollbackReason::MissingReplaySource => write!(
                f,
                "personalization cannot be replayed (prototype without stored support rows)"
            ),
        }
    }
}

/// Result of a transactional update: either the new state was validated
/// and committed, or the device was rolled back to its exact pre-update
/// state (model, support set, registry and prototypes all restored).
#[derive(Debug, Clone)]
pub enum UpdateOutcome {
    /// The update passed validation; the report describes the training.
    Committed(UpdateReport),
    /// The update failed validation; nothing changed on the device.
    RolledBack {
        /// Which validation gate rejected the trained state.
        reason: RollbackReason,
    },
}

impl UpdateOutcome {
    /// `true` when the update committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, UpdateOutcome::Committed(_))
    }

    /// The training report, when committed.
    pub fn report(&self) -> Option<&UpdateReport> {
        match self {
            UpdateOutcome::Committed(r) => Some(r),
            UpdateOutcome::RolledBack { .. } => None,
        }
    }

    /// The rollback reason, when rolled back.
    pub fn rollback_reason(&self) -> Option<RollbackReason> {
        match self {
            UpdateOutcome::Committed(_) => None,
            UpdateOutcome::RolledBack { reason } => Some(*reason),
        }
    }

    /// Unwrap into the report, converting a rollback into
    /// [`CoreError::UpdateRolledBack`] — for callers that treat a
    /// rollback as a hard failure (scripts, demos).
    ///
    /// # Errors
    /// [`CoreError::UpdateRolledBack`] when the update rolled back.
    pub fn committed(self) -> Result<UpdateReport> {
        match self {
            UpdateOutcome::Committed(r) => Ok(r),
            UpdateOutcome::RolledBack { reason } => Err(CoreError::UpdateRolledBack(reason)),
        }
    }
}

/// What kind of update is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Learn a class the model has never seen (§3.3 steps 1–3).
    NewActivity,
    /// Re-calibrate an existing class to this user's style (§3.3, final
    /// paragraph): its support data is *replaced* by the new recording.
    Calibration,
}

/// Outcome of an incremental update.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Training history of the re-training run.
    pub training: TrainingReport,
    /// Classes known after the update.
    pub classes_after: Vec<String>,
    /// Number of freshly recorded feature windows used.
    pub new_windows: usize,
}

/// Reusable storage for the frozen distillation teacher.
///
/// [`ModelState::update`] freezes the pre-update backbone every time it
/// runs; cloning a paper-sized backbone (~700k weights) per update is the
/// single largest allocation of the edge loop. The buffer keeps the
/// previous teacher's matrices alive and copies the new weights into them
/// in place, so every update after the first is allocation-free here.
///
/// It is a scratch cache, not model state: equality ignores it and clones
/// start cold (empty), keeping `ModelState`'s derived semantics unchanged.
#[derive(Debug, Default)]
struct TeacherBuf(Option<Mlp>);

impl TeacherBuf {
    /// Copy `src` into the buffer (allocating only on first use) and
    /// return the frozen teacher.
    fn freeze_from(&mut self, src: &Mlp) -> &Mlp {
        match &mut self.0 {
            Some(buf) => buf.copy_from(src),
            None => self.0 = Some(src.clone()),
        }
        self.0.as_ref().expect("teacher buffer just filled")
    }
}

impl Clone for TeacherBuf {
    fn clone(&self) -> Self {
        TeacherBuf(None)
    }
}

impl PartialEq for TeacherBuf {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// The full mutable model state living on the Edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// The embedding model at its resident precision.
    pub model: ResidentModel,
    /// Budgeted exemplar store at its resident precision.
    pub support_set: ResidentSupport,
    /// Class registry.
    pub registry: LabelRegistry,
    /// NCM classifier over current prototypes.
    pub ncm: NcmClassifier,
    /// Reusable distillation-teacher storage (scratch, not state).
    teacher_buf: TeacherBuf,
}

impl ModelState {
    /// Assemble state from bundle components, computing prototypes
    /// *through the resident model* so prototypes and query embeddings
    /// always share one (possibly quantised) embedding space.
    ///
    /// # Errors
    /// Propagates embedding/classifier construction failures.
    pub fn assemble(
        model: impl Into<ResidentModel>,
        support_set: impl Into<ResidentSupport>,
        registry: LabelRegistry,
        metric: DistanceMetric,
    ) -> Result<Self> {
        let model = model.into();
        let support_set = support_set.into();
        let ncm = build_ncm(&model, &support_set, metric)?;
        Ok(ModelState {
            model,
            support_set,
            registry,
            ncm,
            teacher_buf: TeacherBuf::default(),
        })
    }

    /// Recompute every class prototype in the current embedding space.
    ///
    /// # Errors
    /// Propagates embedding failures.
    pub fn rebuild_prototypes(&mut self) -> Result<()> {
        self.ncm = build_ncm(&self.model, &self.support_set, self.ncm.metric())?;
        Ok(())
    }

    /// Index every support exemplar on the classifier's quantized row
    /// index (DESIGN.md §16): each class's support features are embedded
    /// through the resident model — int8 devices stay in the int8
    /// embedding space — and attached as int8 exemplar rows, so
    /// classification scores each class by its *nearest* exemplar or
    /// prototype instead of the class mean alone. Returns the number of
    /// exemplar rows indexed. Call again after any support-set or
    /// backbone mutation (exemplars are replaced wholesale per class).
    ///
    /// # Errors
    /// Propagates embedding failures.
    pub fn attach_support_exemplars(&mut self) -> Result<usize> {
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        let mut attached = 0;
        for label in self.support_set.classes() {
            if self.ncm.prototype(&label).is_none() {
                continue;
            }
            self.support_set
                .class_features_into(&label, embedder.staging())?;
            embedder.embed_staged(&self.model, &mut embeddings)?;
            self.ncm.set_class_exemplars(&label, &embeddings)?;
            attached += embeddings.rows();
        }
        Ok(attached)
    }

    /// Calibrate an open-set rejection threshold: the given percentile of
    /// within-class distances (each support exemplar's embedding to its
    /// own class prototype), scaled by `margin`. Embeddings farther than
    /// this from *every* prototype are unlike anything the device knows —
    /// the "unknown activity" signal shown before a gesture is taught.
    ///
    /// Support exemplars are training data the contrastive objective has
    /// pulled tightly around the prototypes, so `margin = 1` only accepts
    /// near-replicas of training windows. A margin of 4–7 absorbs the
    /// distribution shift of unseen users/sessions while still rejecting
    /// genuinely novel activities (calibrate on your deployment with
    /// `eval_open_set`).
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] on an empty support set; embedding
    /// failures are propagated.
    pub fn rejection_threshold(&self, percentile: f32, margin: f32) -> Result<f32> {
        let mut dists = Vec::new();
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        for label in self.support_set.classes() {
            let Some(proto) = self.ncm.prototype(&label).map(<[f32]>::to_vec) else {
                continue;
            };
            // One batched forward per class; the embedder's staging matrix
            // and workspace are reused across classes. Distances are
            // measured through the resident model, so an int8 device
            // calibrates its threshold in the int8 embedding space.
            self.support_set
                .class_features_into(&label, embedder.staging())?;
            embedder.embed_staged(&self.model, &mut embeddings)?;
            for r in 0..embeddings.rows() {
                dists.push(self.ncm.metric().eval(embeddings.row(r), &proto));
            }
        }
        if dists.is_empty() {
            return Err(CoreError::InsufficientData(
                "no support samples to calibrate a rejection threshold".into(),
            ));
        }
        Ok(magneto_tensor::stats::percentile(&dists, percentile) * margin.max(0.0))
    }

    /// Apply an incremental update with freshly recorded features.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] when calibrating a class that does not
    /// exist; [`CoreError::InvalidConfig`] when learning a "new" class
    /// that already exists; [`CoreError::InsufficientData`] on an empty
    /// recording. Training errors are propagated.
    pub fn update(
        &mut self,
        label: &str,
        new_features: &[Vec<f32>],
        mode: UpdateMode,
        config: &IncrementalConfig,
        rng: &mut SeededRng,
    ) -> Result<UpdateReport> {
        if new_features.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "no recorded windows for `{label}`"
            )));
        }
        match mode {
            UpdateMode::NewActivity => {
                if self.registry.contains(label) {
                    return Err(CoreError::InvalidConfig(format!(
                        "class `{label}` already exists; use calibration"
                    )));
                }
            }
            UpdateMode::Calibration => {
                if !self.registry.contains(label) {
                    return Err(CoreError::UnknownClass(label.to_string()));
                }
            }
        }

        // Training needs f32 gradients: an int8 device rehydrates a
        // full-precision training copy first (the only moment f32
        // weights exist on an int8 deploy) and re-quantises on commit
        // below.
        let committed_precision = self.model.precision();
        if committed_precision == Precision::Int8 {
            self.model = ResidentModel::F32(self.model.to_f32()?);
        }

        // Freeze the pre-update model as the distillation teacher,
        // reusing the buffer from the previous update (no allocation
        // after the first update; skipped entirely in the
        // no-distillation ablation). On an int8 device the teacher is
        // the dequantised pre-update backbone — exactly the geometry
        // the device has been serving.
        if !config.disable_distillation {
            if let ResidentModel::F32(net) = &self.model {
                self.teacher_buf.freeze_from(net.backbone());
            }
        }

        // Step 2 — support set update. Both modes end with `label`'s
        // exemplars drawn from the fresh recording; for NewActivity the
        // class simply did not exist before.
        self.registry.get_or_insert(label);
        self.support_set.set_class(label, new_features, rng)?;

        // Step 3 — model re-training. With replay (the paper's method)
        // the training set is the combined support set and the
        // distillation term anchors *old-class* rows to the frozen
        // teacher (the teacher knows nothing about the target class, so
        // anchoring its rows would fight the contrastive term). Without
        // replay (ablation) training sees only the fresh recording and
        // distillation — if enabled — anchors those same rows, LwF-style,
        // as the only remaining link to the old geometry.
        let target_id = self
            .registry
            .id_of(label)
            .ok_or_else(|| CoreError::UnknownClass(label.to_string()))?;
        let (features, labels, distill_mask): (Matrix, Vec<usize>, Vec<bool>) =
            if config.disable_replay {
                let features = Matrix::from_rows(new_features)?;
                let labels = vec![target_id; new_features.len()];
                let mask = vec![true; new_features.len()];
                (features, labels, mask)
            } else {
                let (features, labels) = self.support_set.training_data(&self.registry)?;
                let mask = labels.iter().map(|&l| l != target_id).collect();
                (features, labels, mask)
            };
        let teacher_ref = if config.disable_distillation {
            None
        } else {
            self.teacher_buf.0.as_ref()
        };
        let training = {
            let ResidentModel::F32(net) = &mut self.model else {
                unreachable!("training model rehydrated to f32 above")
            };
            train_siamese_masked(
                net,
                &features,
                &labels,
                teacher_ref,
                Some(&distill_mask),
                &config.trainer,
            )?
        };

        // Commit: an int8 device re-quantises the trained weights
        // (Int8 → F32 → train → Int8 round trip) before prototypes are
        // rebuilt, so prototypes land in the embedding space that will
        // actually serve queries.
        if committed_precision == Precision::Int8 {
            let ResidentModel::F32(net) = &self.model else {
                unreachable!("training model is f32 until commit")
            };
            self.model =
                ResidentModel::Int8(QuantizedSiamese::quantize(net).map_err(CoreError::Nn)?);
        }

        // Prototypes move with the embedding space.
        self.rebuild_prototypes()?;
        Ok(UpdateReport {
            training,
            classes_after: self.registry.labels().to_vec(),
            new_windows: new_features.len(),
        })
    }

    /// [`update`](Self::update) wrapped in a transaction: the pre-update
    /// state is snapshotted, the trained state is validated (finite
    /// losses and weights, bounded loss growth, old-class self-accuracy
    /// floor — see [`ValidationConfig`]), and on any failure the device
    /// is restored to *exactly* its pre-update state and
    /// [`UpdateOutcome::RolledBack`] is returned instead of committing a
    /// poisoned model. This is the path the device API
    /// (`EdgeDevice::learn_new_activity` et al.) runs; the raw `update`
    /// remains available for experiments that study divergence itself.
    ///
    /// # Errors
    /// Precondition errors (unknown/duplicate class, empty recording)
    /// and training I/O errors propagate as before — the state is
    /// restored in those cases too. A *validation* failure is not an
    /// error: it returns `Ok(RolledBack { .. })`.
    pub fn update_transactional(
        &mut self,
        label: &str,
        new_features: &[Vec<f32>],
        mode: UpdateMode,
        config: &IncrementalConfig,
        rng: &mut SeededRng,
    ) -> Result<UpdateOutcome> {
        // Snapshot everything `update` can mutate. The teacher buffer is
        // scratch (cold clones are semantically identical), so it is not
        // part of the transaction.
        let model = self.model.clone();
        let support_set = self.support_set.clone();
        let registry = self.registry.clone();
        let ncm = self.ncm.clone();

        let verdict = self
            .update(label, new_features, mode, config, rng)
            .and_then(|report| {
                let gate =
                    self.validate_update(&report, &support_set, label, &config.validation)?;
                Ok((gate, report))
            });
        match verdict {
            Ok((None, report)) => Ok(UpdateOutcome::Committed(report)),
            Ok((Some(reason), _)) => {
                self.model = model;
                self.support_set = support_set;
                self.registry = registry;
                self.ncm = ncm;
                Ok(UpdateOutcome::RolledBack { reason })
            }
            Err(e) => {
                self.model = model;
                self.support_set = support_set;
                self.registry = registry;
                self.ncm = ncm;
                Err(e)
            }
        }
    }

    /// Post-training acceptance gates, in cost order. Returns the first
    /// failed gate, or `None` when the trained state is committable.
    fn validate_update(
        &self,
        report: &UpdateReport,
        pre_support: &ResidentSupport,
        target: &str,
        validation: &ValidationConfig,
    ) -> Result<Option<RollbackReason>> {
        // Gate 1 — every epoch loss finite. A NaN loss means NaN
        // gradients flowed; the weights are not trustworthy even if they
        // happen to read finite.
        let losses = &report.training.epoch_losses;
        if let Some(epoch) = losses.iter().position(|l| !l.is_finite()) {
            return Ok(Some(RollbackReason::NonFiniteLoss { epoch }));
        }
        // Gate 2 — every committed parameter finite (int8 deploys check
        // their scales/biases).
        if !self.model.all_finite() {
            return Ok(Some(RollbackReason::NonFiniteWeights));
        }
        // Gate 3 — bounded loss trajectory.
        if validation.max_loss_growth > 0.0 {
            if let (Some(&first), Some(&last)) = (losses.first(), losses.last()) {
                if last > first * validation.max_loss_growth {
                    return Ok(Some(RollbackReason::LossDiverged {
                        first,
                        last,
                        max_growth: validation.max_loss_growth,
                    }));
                }
            }
        }
        // Gate 4 — held-back forgetting probe: the old classes' own
        // support exemplars (as they existed *before* the update),
        // classified through the new model and prototypes.
        if validation.self_accuracy_floor > 0.0 {
            let mut embedder = BatchEmbedder::new();
            let mut embeddings = Matrix::default();
            let mut correct = 0usize;
            let mut total = 0usize;
            for label in pre_support.classes() {
                if label == target {
                    continue;
                }
                pre_support.class_features_into(&label, embedder.staging())?;
                embedder.embed_staged(&self.model, &mut embeddings)?;
                for r in 0..embeddings.rows() {
                    if self.ncm.classify(embeddings.row(r))?.label == label {
                        correct += 1;
                    }
                    total += 1;
                }
            }
            if total > 0 {
                let after = correct as f32 / total as f32;
                if after < validation.self_accuracy_floor {
                    return Ok(Some(RollbackReason::SelfAccuracy {
                        after,
                        floor: validation.self_accuracy_floor,
                    }));
                }
            }
        }
        Ok(None)
    }
}

/// Mission (i) of the support set: class prototypes for the NCM.
///
/// Prototypes are the mean of the *resident* model's embeddings — an
/// int8 device builds them through its int8 forward path, keeping the
/// prototypes, the rejection threshold and every query embedding in one
/// shared space.
fn build_ncm(
    model: &ResidentModel,
    support_set: &ResidentSupport,
    metric: DistanceMetric,
) -> Result<NcmClassifier> {
    let mut prototypes = Vec::with_capacity(support_set.num_classes());
    let mut embedder = BatchEmbedder::new();
    let mut embeddings = Matrix::default();
    for label in support_set.classes() {
        // All of a class's exemplars go through the backbone as one
        // (n_exemplars, 80) batch, with staging/scratch buffers shared
        // across classes.
        support_set.class_features_into(&label, embedder.staging())?;
        embedder.embed_staged(model, &mut embeddings)?;
        let prototype = embeddings.mean_rows()?;
        prototypes.push((label, prototype));
    }
    NcmClassifier::new(metric, prototypes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::QuantizedSupportSet;
    use crate::support_set::{SelectionStrategy, SupportSet};
    use magneto_nn::SiameseNetwork;

    /// Features for class `c`: a Gaussian blob around distinct corners.
    fn class_features(c: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|_| {
                (0..8)
                    .map(|d| rng.normal_with(if d % 4 == c % 4 { 3.0 } else { 0.0 }, 0.5))
                    .collect()
            })
            .collect()
    }

    fn base_state(seed: u64) -> ModelState {
        let mut rng = SeededRng::new(seed);
        let model = SiameseNetwork::new(Mlp::new(&[8, 16, 8], &mut rng).unwrap(), 1.0);
        let mut support = SupportSet::new(20, SelectionStrategy::Herding);
        let mut srng = SeededRng::new(seed + 1);
        support
            .set_class("walk", &class_features(0, 15, 10), &mut srng)
            .unwrap();
        support
            .set_class("run", &class_features(1, 15, 11), &mut srng)
            .unwrap();
        let registry = LabelRegistry::from_labels(["walk", "run"]);
        ModelState::assemble(model, support, registry, DistanceMetric::Euclidean).unwrap()
    }

    fn fast_config() -> IncrementalConfig {
        IncrementalConfig {
            trainer: TrainerConfig {
                epochs: 6,
                pairs_per_epoch: 128,
                batch_pairs: 32,
                learning_rate: 2e-3,
                distill_weight: 2.0,
                ..TrainerConfig::edge_update()
            },
            ..IncrementalConfig::default()
        }
    }

    #[test]
    fn assemble_builds_prototypes_for_all_classes() {
        let state = base_state(1);
        assert_eq!(state.ncm.num_classes(), 2);
        assert_eq!(state.ncm.dim(), 8);
        assert!(state.ncm.prototype("walk").is_some());
    }

    #[test]
    fn learning_a_new_activity_adds_the_class() {
        let mut state = base_state(2);
        let mut rng = SeededRng::new(3);
        let report = state
            .update(
                "gesture_hi",
                &class_features(2, 12, 12),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            report.classes_after,
            vec!["walk".to_string(), "run".to_string(), "gesture_hi".to_string()]
        );
        assert_eq!(report.new_windows, 12);
        assert_eq!(state.ncm.num_classes(), 3);
        assert!(state.support_set.samples("gesture_hi").is_some());
        // The new class is recognisable on fresh draws (majority).
        let probes = class_features(2, 10, 13);
        let correct = probes
            .iter()
            .filter(|p| {
                let emb = state.model.embed_one(p).unwrap();
                state.ncm.classify(&emb).unwrap().label == "gesture_hi"
            })
            .count();
        assert!(correct >= 7, "new-class recall {correct}/10");
    }

    #[test]
    fn old_classes_still_recognised_after_update() {
        let mut state = base_state(4);
        let mut rng = SeededRng::new(5);
        state
            .update(
                "jump",
                &class_features(3, 12, 14),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        // Probe each old class with fresh draws from its distribution.
        let mut correct = 0;
        let mut total = 0;
        for (c, label) in [(0usize, "walk"), (1usize, "run")] {
            for probe in class_features(c, 10, 20 + c as u64) {
                let emb = state.model.embed_one(&probe).unwrap();
                if state.ncm.classify(&emb).unwrap().label == label {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc >= 0.8, "old-class accuracy after update: {acc}");
    }

    /// `base_state` re-assembled at int8: quantised model + quantised
    /// support exemplars, prototypes built through the int8 forward path.
    fn int8_state(seed: u64) -> ModelState {
        let base = base_state(seed);
        let model = base.model.into_precision(Precision::Int8).unwrap();
        let support = QuantizedSupportSet::quantize(&base.support_set.to_f32().unwrap());
        ModelState::assemble(model, support, base.registry, DistanceMetric::Euclidean).unwrap()
    }

    #[test]
    fn int8_prototypes_live_in_the_int8_embedding_space() {
        let state = int8_state(40);
        assert_eq!(state.model.precision(), Precision::Int8);
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        for label in state.support_set.classes() {
            state
                .support_set
                .class_features_into(&label, embedder.staging())
                .unwrap();
            embedder.embed_staged(&state.model, &mut embeddings).unwrap();
            let expected = embeddings.mean_rows().unwrap();
            assert_eq!(
                state.ncm.prototype(&label).unwrap(),
                expected.as_slice(),
                "prototype for `{label}` must be the int8-model mean"
            );
        }
    }

    #[test]
    fn int8_update_trains_in_f32_and_recommits_int8() {
        let mut state = int8_state(42);
        let mut rng = SeededRng::new(43);
        let report = state
            .update(
                "gesture_hi",
                &class_features(2, 12, 44),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        // The committed state never keeps f32 weights resident.
        assert_eq!(state.model.precision(), Precision::Int8);
        assert_eq!(state.support_set.precision(), Precision::Int8);
        assert_eq!(report.new_windows, 12);
        assert_eq!(state.ncm.num_classes(), 3);
        // The new class is recognisable through the int8 path (majority).
        let probes = class_features(2, 10, 45);
        let correct = probes
            .iter()
            .filter(|p| {
                let emb = state.model.embed_one(p).unwrap();
                state.ncm.classify(&emb).unwrap().label == "gesture_hi"
            })
            .count();
        assert!(correct >= 7, "int8 new-class recall {correct}/10");
    }

    #[test]
    fn int8_rejection_threshold_calibrates_in_int8_space() {
        let f32_state = base_state(46);
        let int8 = int8_state(46);
        let t_f32 = f32_state.rejection_threshold(95.0, 1.0).unwrap();
        let t_int8 = int8.rejection_threshold(95.0, 1.0).unwrap();
        assert!(t_f32 > 0.0 && t_int8 > 0.0);
        // Same data, different embedding spaces: the calibrated values
        // track each other but need not match bitwise.
        let rel = (t_f32 - t_int8).abs() / t_f32.max(1e-9);
        assert!(rel < 0.5, "thresholds diverged: f32 {t_f32} vs int8 {t_int8}");
    }

    #[test]
    fn new_activity_on_existing_class_rejected() {
        let mut state = base_state(6);
        let mut rng = SeededRng::new(7);
        assert!(matches!(
            state.update(
                "walk",
                &class_features(0, 5, 15),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            ),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn calibration_requires_existing_class() {
        let mut state = base_state(8);
        let mut rng = SeededRng::new(9);
        assert!(matches!(
            state.update(
                "yoga",
                &class_features(0, 5, 16),
                UpdateMode::Calibration,
                &fast_config(),
                &mut rng,
            ),
            Err(CoreError::UnknownClass(_))
        ));
    }

    #[test]
    fn calibration_replaces_support_data() {
        let mut state = base_state(10);
        let mut rng = SeededRng::new(11);
        // The user's personal "walk" lives in a shifted region.
        let personal = class_features(3, 12, 17);
        state
            .update(
                "walk",
                &personal,
                UpdateMode::Calibration,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        // Support exemplars for walk are now from the personal recording.
        let stored = state.support_set.samples("walk").unwrap();
        assert!(stored.iter().all(|s| personal.contains(s)));
        // Class count unchanged.
        assert_eq!(state.ncm.num_classes(), 2);
    }

    #[test]
    fn empty_recording_rejected() {
        let mut state = base_state(12);
        let mut rng = SeededRng::new(13);
        assert!(matches!(
            state.update(
                "x",
                &[],
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng
            ),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn distillation_limits_embedding_drift() {
        let mut with = base_state(14);
        let mut without = base_state(14);
        // Fix the comparison set: the *old-class* support features as they
        // exist before the update, embedded by the pre-update model.
        let (old_features, _) = with.support_set.training_data(&with.registry).unwrap();
        let teacher_emb = with.model.embed(&old_features).unwrap();
        let new_data = class_features(2, 12, 18);
        let mut rng_a = SeededRng::new(15);
        let mut rng_b = SeededRng::new(15);
        let cfg = fast_config();
        let cfg_no_distill = IncrementalConfig {
            disable_distillation: true,
            ..cfg
        };
        with.update("g", &new_data, UpdateMode::NewActivity, &cfg, &mut rng_a)
            .unwrap();
        without
            .update("g", &new_data, UpdateMode::NewActivity, &cfg_no_distill, &mut rng_b)
            .unwrap();
        let drift = |state: &ModelState| {
            state
                .model
                .embed(&old_features)
                .unwrap()
                .sub(&teacher_emb)
                .unwrap()
                .frobenius_norm()
        };
        let d_with = drift(&with);
        let d_without = drift(&without);
        assert!(
            d_with < d_without,
            "distilled drift {d_with} should be below undistilled {d_without}"
        );
    }

    #[test]
    fn no_replay_fine_tuning_drifts_more_than_magneto() {
        // Mechanism check for the A1 ablation: training on the new
        // recording alone (no replay, no distillation) lets the old
        // classes' embeddings drift far more than the full MAGNETO update
        // (replay + distillation). The accuracy-level consequences are
        // exercised at system scale by `eval_forgetting`.
        let base = base_state(20);
        let (old_features, _) = base.support_set.training_data(&base.registry).unwrap();
        let before = base.model.embed(&old_features).unwrap();
        let drift = |state: &ModelState| {
            state
                .model
                .embed(&old_features)
                .unwrap()
                .sub(&before)
                .unwrap()
                .frobenius_norm()
        };
        let new_data = class_features(2, 12, 41);
        let mut cfg = fast_config();
        cfg.trainer.epochs = 20;
        cfg.trainer.learning_rate = 4e-3;

        let mut magneto = base.clone();
        let mut rng = SeededRng::new(21);
        magneto
            .update("g", &new_data, UpdateMode::NewActivity, &cfg, &mut rng)
            .unwrap();

        let mut naive = base.clone();
        let naive_cfg = IncrementalConfig {
            disable_replay: true,
            disable_distillation: true,
            ..cfg
        };
        let mut rng2 = SeededRng::new(21);
        naive
            .update("g", &new_data, UpdateMode::NewActivity, &naive_cfg, &mut rng2)
            .unwrap();

        let d_magneto = drift(&magneto);
        let d_naive = drift(&naive);
        assert!(
            d_naive > d_magneto,
            "naive drift {d_naive} should exceed magneto drift {d_magneto}"
        );
        // Both still know all three classes.
        assert_eq!(naive.ncm.num_classes(), 3);
        assert_eq!(magneto.ncm.num_classes(), 3);
    }

    #[test]
    fn warm_teacher_buffer_matches_cold_buffer_bitwise() {
        // After one update the teacher buffer is warm (holds the previous
        // teacher's matrices); a cloned state starts with a cold buffer.
        // The next update must produce bit-identical results either way —
        // the buffer is pure scratch.
        let mut warm = base_state(50);
        let cfg = fast_config();
        let mut rng = SeededRng::new(51);
        warm.update(
            "g1",
            &class_features(2, 10, 52),
            UpdateMode::NewActivity,
            &cfg,
            &mut rng,
        )
        .unwrap();
        let mut cold = warm.clone();
        assert_eq!(warm, cold);
        let data = class_features(3, 10, 54);
        let mut rng_w = SeededRng::new(53);
        let mut rng_c = SeededRng::new(53);
        warm.update("g2", &data, UpdateMode::NewActivity, &cfg, &mut rng_w)
            .unwrap();
        cold.update("g2", &data, UpdateMode::NewActivity, &cfg, &mut rng_c)
            .unwrap();
        assert_eq!(warm, cold);
        assert_eq!(warm.ncm.num_classes(), 4);
    }

    #[test]
    fn repeated_updates_accumulate_classes() {
        let mut state = base_state(16);
        let mut rng = SeededRng::new(17);
        let mut cfg = fast_config();
        cfg.trainer.epochs = 3;
        for (i, label) in ["a", "b", "c"].iter().enumerate() {
            state
                .update(
                    label,
                    &class_features(i + 2, 10, 30 + i as u64),
                    UpdateMode::NewActivity,
                    &cfg,
                    &mut rng,
                )
                .unwrap();
        }
        assert_eq!(state.ncm.num_classes(), 5);
        assert_eq!(state.registry.len(), 5);
        assert_eq!(state.support_set.num_classes(), 5);
    }

    #[test]
    fn transactional_commit_matches_raw_update() {
        let mut raw = base_state(60);
        let mut txn = raw.clone();
        let data = class_features(2, 10, 61);
        let cfg = fast_config();
        let mut rng_raw = SeededRng::new(62);
        let mut rng_txn = SeededRng::new(62);
        raw.update("g", &data, UpdateMode::NewActivity, &cfg, &mut rng_raw)
            .unwrap();
        let outcome = txn
            .update_transactional("g", &data, UpdateMode::NewActivity, &cfg, &mut rng_txn)
            .unwrap();
        assert!(outcome.is_committed());
        assert_eq!(outcome.report().unwrap().classes_after.len(), 3);
        // A committed transactional update is bit-identical to the raw path.
        assert_eq!(raw, txn);
    }

    #[test]
    fn impossible_accuracy_floor_rolls_back_to_exact_pre_state() {
        let mut state = base_state(63);
        let before = state.clone();
        let mut cfg = fast_config();
        cfg.validation.self_accuracy_floor = 1.5; // unattainable
        let mut rng = SeededRng::new(64);
        let outcome = state
            .update_transactional(
                "g",
                &class_features(2, 10, 65),
                UpdateMode::NewActivity,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(matches!(
            outcome.rollback_reason(),
            Some(RollbackReason::SelfAccuracy { .. })
        ));
        assert_eq!(state, before);
        // The typed error path reports the same reason.
        let err = outcome.committed().unwrap_err();
        assert!(matches!(err, CoreError::UpdateRolledBack(_)));
        assert!(err.to_string().contains("rolled back"));
    }

    #[test]
    fn loss_growth_gate_rolls_back() {
        let mut state = base_state(66);
        let before = state.clone();
        let mut cfg = fast_config();
        // Any epoch whose final loss exceeds first*1e-6 counts as divergence,
        // which real contrastive training cannot avoid.
        cfg.validation.max_loss_growth = 1e-6;
        let mut rng = SeededRng::new(67);
        let outcome = state
            .update_transactional(
                "g",
                &class_features(2, 10, 68),
                UpdateMode::NewActivity,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(matches!(
            outcome.rollback_reason(),
            Some(RollbackReason::LossDiverged { .. })
        ));
        assert_eq!(state, before);
    }

    #[test]
    fn training_error_still_restores_pre_state() {
        let mut state = base_state(69);
        let before = state.clone();
        let mut cfg = fast_config();
        // An absurd learning rate makes the trainer itself abort with
        // `Diverged`; the transaction must still restore the snapshot.
        cfg.trainer.learning_rate = 1e9;
        let mut rng = SeededRng::new(70);
        let result = state.update_transactional(
            "g",
            &class_features(2, 10, 71),
            UpdateMode::NewActivity,
            &cfg,
            &mut rng,
        );
        assert!(result.is_err());
        assert_eq!(state, before);
    }

    #[test]
    fn permissive_validation_never_rolls_back() {
        let mut state = base_state(72);
        let mut cfg = fast_config();
        cfg.validation = ValidationConfig::permissive();
        let mut rng = SeededRng::new(73);
        let outcome = state
            .update_transactional(
                "g",
                &class_features(2, 10, 74),
                UpdateMode::NewActivity,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(outcome.is_committed());
    }

    #[test]
    fn pre_validation_configs_deserialize_with_default_gates() {
        // Configs serialized before the validation field existed must load.
        let serialized = serde_json::to_string(&IncrementalConfig::default()).unwrap();
        let marker = ",\"validation\":";
        let start = serialized.find(marker).expect("validation key present");
        let end = serialized[start + 1..]
            .find('}')
            .map(|i| start + 1 + i + 1)
            .expect("validation object closes");
        let stripped = format!("{}{}", &serialized[..start], &serialized[end..]);
        let cfg: IncrementalConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(cfg.validation, ValidationConfig::default());
    }
}
