//! On-device incremental learning and calibration (§3.3).
//!
//! The paper's edge update loop:
//!
//! 1. **Samples recording** — the user records ~20–30 s of a new activity;
//! 2. **Support set update** — the fresh data is folded into the support
//!    set;
//! 3. **Model re-training** — the model is updated on the combined
//!    support set with a joint **contrastive + distillation** objective,
//!    where the teacher is the frozen pre-update model (this is what
//!    holds off catastrophic forgetting);
//!
//! then the NCM prototypes are recomputed in the new embedding space.
//! *Calibration* "mirrors the re-training process, with the distinction
//! that the data for the targeted activity within the support set is
//! replaced with newly acquired data".

use crate::embed::BatchEmbedder;
use crate::error::CoreError;
use crate::label::LabelRegistry;
use crate::ncm::NcmClassifier;
use crate::support_set::SupportSet;
use crate::Result;
use magneto_nn::trainer::{train_siamese_masked, TrainerConfig, TrainingReport};
use magneto_nn::{Mlp, SiameseNetwork};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Incremental-update configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Re-training hyper-parameters (defaults to
    /// [`TrainerConfig::edge_update`]: few epochs, distillation on).
    pub trainer: TrainerConfig,
    /// Distance metric for the rebuilt NCM classifier.
    pub metric: DistanceMetric,
    /// Disable the distillation term (A1 ablation).
    pub disable_distillation: bool,
    /// Disable support-set replay: re-train on the fresh recording only,
    /// the naive fine-tuning regime where catastrophic forgetting is at
    /// its worst (A1 ablation). The support set is still *updated* (the
    /// NCM needs prototypes); it is just excluded from the training set.
    pub disable_replay: bool,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            trainer: TrainerConfig::edge_update(),
            metric: DistanceMetric::Euclidean,
            disable_distillation: false,
            disable_replay: false,
        }
    }
}

/// What kind of update is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Learn a class the model has never seen (§3.3 steps 1–3).
    NewActivity,
    /// Re-calibrate an existing class to this user's style (§3.3, final
    /// paragraph): its support data is *replaced* by the new recording.
    Calibration,
}

/// Outcome of an incremental update.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Training history of the re-training run.
    pub training: TrainingReport,
    /// Classes known after the update.
    pub classes_after: Vec<String>,
    /// Number of freshly recorded feature windows used.
    pub new_windows: usize,
}

/// Reusable storage for the frozen distillation teacher.
///
/// [`ModelState::update`] freezes the pre-update backbone every time it
/// runs; cloning a paper-sized backbone (~700k weights) per update is the
/// single largest allocation of the edge loop. The buffer keeps the
/// previous teacher's matrices alive and copies the new weights into them
/// in place, so every update after the first is allocation-free here.
///
/// It is a scratch cache, not model state: equality ignores it and clones
/// start cold (empty), keeping `ModelState`'s derived semantics unchanged.
#[derive(Debug, Default)]
struct TeacherBuf(Option<Mlp>);

impl TeacherBuf {
    /// Copy `src` into the buffer (allocating only on first use) and
    /// return the frozen teacher.
    fn freeze_from(&mut self, src: &Mlp) -> &Mlp {
        match &mut self.0 {
            Some(buf) => buf.copy_from(src),
            None => self.0 = Some(src.clone()),
        }
        self.0.as_ref().expect("teacher buffer just filled")
    }
}

impl Clone for TeacherBuf {
    fn clone(&self) -> Self {
        TeacherBuf(None)
    }
}

impl PartialEq for TeacherBuf {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// The full mutable model state living on the Edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// The Siamese embedding model.
    pub model: SiameseNetwork,
    /// Budgeted exemplar store.
    pub support_set: SupportSet,
    /// Class registry.
    pub registry: LabelRegistry,
    /// NCM classifier over current prototypes.
    pub ncm: NcmClassifier,
    /// Reusable distillation-teacher storage (scratch, not state).
    teacher_buf: TeacherBuf,
}

impl ModelState {
    /// Assemble state from bundle components, computing prototypes.
    ///
    /// # Errors
    /// Propagates embedding/classifier construction failures.
    pub fn assemble(
        model: SiameseNetwork,
        support_set: SupportSet,
        registry: LabelRegistry,
        metric: DistanceMetric,
    ) -> Result<Self> {
        let ncm = build_ncm(&model, &support_set, metric)?;
        Ok(ModelState {
            model,
            support_set,
            registry,
            ncm,
            teacher_buf: TeacherBuf::default(),
        })
    }

    /// Recompute every class prototype in the current embedding space.
    ///
    /// # Errors
    /// Propagates embedding failures.
    pub fn rebuild_prototypes(&mut self) -> Result<()> {
        self.ncm = build_ncm(&self.model, &self.support_set, self.ncm.metric())?;
        Ok(())
    }

    /// Calibrate an open-set rejection threshold: the given percentile of
    /// within-class distances (each support exemplar's embedding to its
    /// own class prototype), scaled by `margin`. Embeddings farther than
    /// this from *every* prototype are unlike anything the device knows —
    /// the "unknown activity" signal shown before a gesture is taught.
    ///
    /// Support exemplars are training data the contrastive objective has
    /// pulled tightly around the prototypes, so `margin = 1` only accepts
    /// near-replicas of training windows. A margin of 4–7 absorbs the
    /// distribution shift of unseen users/sessions while still rejecting
    /// genuinely novel activities (calibrate on your deployment with
    /// `eval_open_set`).
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] on an empty support set; embedding
    /// failures are propagated.
    pub fn rejection_threshold(&self, percentile: f32, margin: f32) -> Result<f32> {
        let mut dists = Vec::new();
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        for label in self.support_set.classes() {
            let Some(proto) = self.ncm.prototype(label).map(<[f32]>::to_vec) else {
                continue;
            };
            // One batched forward per class; the embedder's staging matrix
            // and workspace are reused across classes.
            self.support_set
                .class_features_into(label, embedder.staging())?;
            embedder.embed_staged(&self.model, &mut embeddings)?;
            for r in 0..embeddings.rows() {
                dists.push(self.ncm.metric().eval(embeddings.row(r), &proto));
            }
        }
        if dists.is_empty() {
            return Err(CoreError::InsufficientData(
                "no support samples to calibrate a rejection threshold".into(),
            ));
        }
        Ok(magneto_tensor::stats::percentile(&dists, percentile) * margin.max(0.0))
    }

    /// Apply an incremental update with freshly recorded features.
    ///
    /// # Errors
    /// [`CoreError::UnknownClass`] when calibrating a class that does not
    /// exist; [`CoreError::InvalidConfig`] when learning a "new" class
    /// that already exists; [`CoreError::InsufficientData`] on an empty
    /// recording. Training errors are propagated.
    pub fn update(
        &mut self,
        label: &str,
        new_features: &[Vec<f32>],
        mode: UpdateMode,
        config: &IncrementalConfig,
        rng: &mut SeededRng,
    ) -> Result<UpdateReport> {
        if new_features.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "no recorded windows for `{label}`"
            )));
        }
        match mode {
            UpdateMode::NewActivity => {
                if self.registry.contains(label) {
                    return Err(CoreError::InvalidConfig(format!(
                        "class `{label}` already exists; use calibration"
                    )));
                }
            }
            UpdateMode::Calibration => {
                if !self.registry.contains(label) {
                    return Err(CoreError::UnknownClass(label.to_string()));
                }
            }
        }

        // Freeze the pre-update model as the distillation teacher,
        // reusing the buffer from the previous update (no allocation
        // after the first update; skipped entirely in the
        // no-distillation ablation).
        if !config.disable_distillation {
            self.teacher_buf.freeze_from(self.model.backbone());
        }

        // Step 2 — support set update. Both modes end with `label`'s
        // exemplars drawn from the fresh recording; for NewActivity the
        // class simply did not exist before.
        self.registry.get_or_insert(label);
        self.support_set.set_class(label, new_features, rng)?;

        // Step 3 — model re-training. With replay (the paper's method)
        // the training set is the combined support set and the
        // distillation term anchors *old-class* rows to the frozen
        // teacher (the teacher knows nothing about the target class, so
        // anchoring its rows would fight the contrastive term). Without
        // replay (ablation) training sees only the fresh recording and
        // distillation — if enabled — anchors those same rows, LwF-style,
        // as the only remaining link to the old geometry.
        let target_id = self
            .registry
            .id_of(label)
            .ok_or_else(|| CoreError::UnknownClass(label.to_string()))?;
        let (features, labels, distill_mask): (Matrix, Vec<usize>, Vec<bool>) =
            if config.disable_replay {
                let features = Matrix::from_rows(new_features)?;
                let labels = vec![target_id; new_features.len()];
                let mask = vec![true; new_features.len()];
                (features, labels, mask)
            } else {
                let (features, labels) = self.support_set.training_data(&self.registry)?;
                let mask = labels.iter().map(|&l| l != target_id).collect();
                (features, labels, mask)
            };
        let teacher_ref = if config.disable_distillation {
            None
        } else {
            self.teacher_buf.0.as_ref()
        };
        let training = train_siamese_masked(
            &mut self.model,
            &features,
            &labels,
            teacher_ref,
            Some(&distill_mask),
            &config.trainer,
        )?;

        // Prototypes move with the embedding space.
        self.rebuild_prototypes()?;
        Ok(UpdateReport {
            training,
            classes_after: self.registry.labels().to_vec(),
            new_windows: new_features.len(),
        })
    }
}

/// Mission (i) of the support set: class prototypes for the NCM.
fn build_ncm(
    model: &SiameseNetwork,
    support_set: &SupportSet,
    metric: DistanceMetric,
) -> Result<NcmClassifier> {
    let mut prototypes = Vec::with_capacity(support_set.num_classes());
    let mut embedder = BatchEmbedder::new();
    let mut embeddings = Matrix::default();
    for label in support_set.classes() {
        // All of a class's exemplars go through the backbone as one
        // (n_exemplars, 80) batch, with staging/scratch buffers shared
        // across classes.
        support_set.class_features_into(label, embedder.staging())?;
        embedder.embed_staged(model, &mut embeddings)?;
        let prototype = embeddings.mean_rows()?;
        prototypes.push((label.to_string(), prototype));
    }
    NcmClassifier::new(metric, prototypes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support_set::SelectionStrategy;
    use magneto_nn::Mlp;

    /// Features for class `c`: a Gaussian blob around distinct corners.
    fn class_features(c: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|_| {
                (0..8)
                    .map(|d| rng.normal_with(if d % 4 == c % 4 { 3.0 } else { 0.0 }, 0.5))
                    .collect()
            })
            .collect()
    }

    fn base_state(seed: u64) -> ModelState {
        let mut rng = SeededRng::new(seed);
        let model = SiameseNetwork::new(Mlp::new(&[8, 16, 8], &mut rng).unwrap(), 1.0);
        let mut support = SupportSet::new(20, SelectionStrategy::Herding);
        let mut srng = SeededRng::new(seed + 1);
        support
            .set_class("walk", &class_features(0, 15, 10), &mut srng)
            .unwrap();
        support
            .set_class("run", &class_features(1, 15, 11), &mut srng)
            .unwrap();
        let registry = LabelRegistry::from_labels(["walk", "run"]);
        ModelState::assemble(model, support, registry, DistanceMetric::Euclidean).unwrap()
    }

    fn fast_config() -> IncrementalConfig {
        IncrementalConfig {
            trainer: TrainerConfig {
                epochs: 6,
                pairs_per_epoch: 128,
                batch_pairs: 32,
                learning_rate: 2e-3,
                distill_weight: 2.0,
                ..TrainerConfig::edge_update()
            },
            ..IncrementalConfig::default()
        }
    }

    #[test]
    fn assemble_builds_prototypes_for_all_classes() {
        let state = base_state(1);
        assert_eq!(state.ncm.num_classes(), 2);
        assert_eq!(state.ncm.dim(), 8);
        assert!(state.ncm.prototype("walk").is_some());
    }

    #[test]
    fn learning_a_new_activity_adds_the_class() {
        let mut state = base_state(2);
        let mut rng = SeededRng::new(3);
        let report = state
            .update(
                "gesture_hi",
                &class_features(2, 12, 12),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            report.classes_after,
            vec!["walk".to_string(), "run".to_string(), "gesture_hi".to_string()]
        );
        assert_eq!(report.new_windows, 12);
        assert_eq!(state.ncm.num_classes(), 3);
        assert!(state.support_set.samples("gesture_hi").is_some());
        // The new class is recognisable on fresh draws (majority).
        let probes = class_features(2, 10, 13);
        let correct = probes
            .iter()
            .filter(|p| {
                let emb = state.model.embed_one(p).unwrap();
                state.ncm.classify(&emb).unwrap().label == "gesture_hi"
            })
            .count();
        assert!(correct >= 7, "new-class recall {correct}/10");
    }

    #[test]
    fn old_classes_still_recognised_after_update() {
        let mut state = base_state(4);
        let mut rng = SeededRng::new(5);
        state
            .update(
                "jump",
                &class_features(3, 12, 14),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        // Probe each old class with fresh draws from its distribution.
        let mut correct = 0;
        let mut total = 0;
        for (c, label) in [(0usize, "walk"), (1usize, "run")] {
            for probe in class_features(c, 10, 20 + c as u64) {
                let emb = state.model.embed_one(&probe).unwrap();
                if state.ncm.classify(&emb).unwrap().label == label {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc >= 0.8, "old-class accuracy after update: {acc}");
    }

    #[test]
    fn new_activity_on_existing_class_rejected() {
        let mut state = base_state(6);
        let mut rng = SeededRng::new(7);
        assert!(matches!(
            state.update(
                "walk",
                &class_features(0, 5, 15),
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng,
            ),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn calibration_requires_existing_class() {
        let mut state = base_state(8);
        let mut rng = SeededRng::new(9);
        assert!(matches!(
            state.update(
                "yoga",
                &class_features(0, 5, 16),
                UpdateMode::Calibration,
                &fast_config(),
                &mut rng,
            ),
            Err(CoreError::UnknownClass(_))
        ));
    }

    #[test]
    fn calibration_replaces_support_data() {
        let mut state = base_state(10);
        let mut rng = SeededRng::new(11);
        // The user's personal "walk" lives in a shifted region.
        let personal = class_features(3, 12, 17);
        state
            .update(
                "walk",
                &personal,
                UpdateMode::Calibration,
                &fast_config(),
                &mut rng,
            )
            .unwrap();
        // Support exemplars for walk are now from the personal recording.
        let stored = state.support_set.samples("walk").unwrap();
        assert!(stored.iter().all(|s| personal.contains(s)));
        // Class count unchanged.
        assert_eq!(state.ncm.num_classes(), 2);
    }

    #[test]
    fn empty_recording_rejected() {
        let mut state = base_state(12);
        let mut rng = SeededRng::new(13);
        assert!(matches!(
            state.update(
                "x",
                &[],
                UpdateMode::NewActivity,
                &fast_config(),
                &mut rng
            ),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn distillation_limits_embedding_drift() {
        let mut with = base_state(14);
        let mut without = base_state(14);
        // Fix the comparison set: the *old-class* support features as they
        // exist before the update, embedded by the pre-update model.
        let (old_features, _) = with.support_set.training_data(&with.registry).unwrap();
        let teacher_emb = with.model.embed(&old_features).unwrap();
        let new_data = class_features(2, 12, 18);
        let mut rng_a = SeededRng::new(15);
        let mut rng_b = SeededRng::new(15);
        let cfg = fast_config();
        let cfg_no_distill = IncrementalConfig {
            disable_distillation: true,
            ..cfg
        };
        with.update("g", &new_data, UpdateMode::NewActivity, &cfg, &mut rng_a)
            .unwrap();
        without
            .update("g", &new_data, UpdateMode::NewActivity, &cfg_no_distill, &mut rng_b)
            .unwrap();
        let drift = |state: &ModelState| {
            state
                .model
                .embed(&old_features)
                .unwrap()
                .sub(&teacher_emb)
                .unwrap()
                .frobenius_norm()
        };
        let d_with = drift(&with);
        let d_without = drift(&without);
        assert!(
            d_with < d_without,
            "distilled drift {d_with} should be below undistilled {d_without}"
        );
    }

    #[test]
    fn no_replay_fine_tuning_drifts_more_than_magneto() {
        // Mechanism check for the A1 ablation: training on the new
        // recording alone (no replay, no distillation) lets the old
        // classes' embeddings drift far more than the full MAGNETO update
        // (replay + distillation). The accuracy-level consequences are
        // exercised at system scale by `eval_forgetting`.
        let base = base_state(20);
        let (old_features, _) = base.support_set.training_data(&base.registry).unwrap();
        let before = base.model.embed(&old_features).unwrap();
        let drift = |state: &ModelState| {
            state
                .model
                .embed(&old_features)
                .unwrap()
                .sub(&before)
                .unwrap()
                .frobenius_norm()
        };
        let new_data = class_features(2, 12, 41);
        let mut cfg = fast_config();
        cfg.trainer.epochs = 20;
        cfg.trainer.learning_rate = 4e-3;

        let mut magneto = base.clone();
        let mut rng = SeededRng::new(21);
        magneto
            .update("g", &new_data, UpdateMode::NewActivity, &cfg, &mut rng)
            .unwrap();

        let mut naive = base.clone();
        let naive_cfg = IncrementalConfig {
            disable_replay: true,
            disable_distillation: true,
            ..cfg
        };
        let mut rng2 = SeededRng::new(21);
        naive
            .update("g", &new_data, UpdateMode::NewActivity, &naive_cfg, &mut rng2)
            .unwrap();

        let d_magneto = drift(&magneto);
        let d_naive = drift(&naive);
        assert!(
            d_naive > d_magneto,
            "naive drift {d_naive} should exceed magneto drift {d_magneto}"
        );
        // Both still know all three classes.
        assert_eq!(naive.ncm.num_classes(), 3);
        assert_eq!(magneto.ncm.num_classes(), 3);
    }

    #[test]
    fn warm_teacher_buffer_matches_cold_buffer_bitwise() {
        // After one update the teacher buffer is warm (holds the previous
        // teacher's matrices); a cloned state starts with a cold buffer.
        // The next update must produce bit-identical results either way —
        // the buffer is pure scratch.
        let mut warm = base_state(50);
        let cfg = fast_config();
        let mut rng = SeededRng::new(51);
        warm.update(
            "g1",
            &class_features(2, 10, 52),
            UpdateMode::NewActivity,
            &cfg,
            &mut rng,
        )
        .unwrap();
        let mut cold = warm.clone();
        assert_eq!(warm, cold);
        let data = class_features(3, 10, 54);
        let mut rng_w = SeededRng::new(53);
        let mut rng_c = SeededRng::new(53);
        warm.update("g2", &data, UpdateMode::NewActivity, &cfg, &mut rng_w)
            .unwrap();
        cold.update("g2", &data, UpdateMode::NewActivity, &cfg, &mut rng_c)
            .unwrap();
        assert_eq!(warm, cold);
        assert_eq!(warm.ncm.num_classes(), 4);
    }

    #[test]
    fn repeated_updates_accumulate_classes() {
        let mut state = base_state(16);
        let mut rng = SeededRng::new(17);
        let mut cfg = fast_config();
        cfg.trainer.epochs = 3;
        for (i, label) in ["a", "b", "c"].iter().enumerate() {
            state
                .update(
                    label,
                    &class_features(i + 2, 10, 30 + i as u64),
                    UpdateMode::NewActivity,
                    &cfg,
                    &mut rng,
                )
                .unwrap();
        }
        assert_eq!(state.ncm.num_classes(), 5);
        assert_eq!(state.registry.len(), 5);
        assert_eq!(state.support_set.num_classes(), 5);
    }
}
