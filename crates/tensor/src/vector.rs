//! Vector kernels: distances, similarities and small helpers.
//!
//! The Nearest-Class-Mean classifier at the heart of MAGNETO's edge
//! inference reduces to "argmin over class prototypes of a distance"; all
//! the distance functions it supports live here.

use serde::{Deserialize, Serialize};

/// Distance metric selector used by the NCM classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Euclidean (L2) distance — the metric used in the paper's NCM
    /// formulation (Mensink et al. via Zuo et al., EDBT 2023).
    #[default]
    Euclidean,
    /// Squared Euclidean distance (same argmin as Euclidean, cheaper).
    SquaredEuclidean,
    /// Cosine distance `1 - cos(a, b)` — natural for L2-normalised
    /// contrastive embeddings.
    Cosine,
    /// Manhattan (L1) distance.
    Manhattan,
}

impl DistanceMetric {
    /// Evaluate the metric between two equal-length vectors.
    ///
    /// # Panics
    /// Debug-asserts equal lengths; in release builds the shorter length
    /// governs (standard zip semantics), which callers must not rely on.
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            DistanceMetric::Euclidean => euclidean(a, b),
            DistanceMetric::SquaredEuclidean => squared_euclidean(a, b),
            DistanceMetric::Cosine => cosine_distance(a, b),
            DistanceMetric::Manhattan => manhattan(a, b),
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Cosine similarity in `[-1, 1]`; `0.0` when either vector is ~zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity`.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// L2-normalise a vector in place; zero vectors are left untouched.
pub fn l2_normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 1e-12 {
        let inv = 1.0 / n;
        for x in v {
            *x *= inv;
        }
    }
}

/// Element-wise mean of a set of equal-length vectors.
///
/// Returns `None` for an empty set.
pub fn mean_vector(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut out = vec![0.0f32; first.len()];
    for v in vectors {
        for (o, &x) in out.iter_mut().zip(v.iter()) {
            *o += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    Some(out)
}

/// Index of the minimum value (first on ties). `None` when empty or when
/// every value is NaN.
pub fn argmin(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (first on ties). `None` when empty or when
/// every value is NaN.
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Numerically-stable softmax.
pub fn softmax(values: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    softmax_into(values, &mut out);
    out
}

/// Scratch-reusing [`softmax`] (§9 `_into` convention): clears `out` and
/// fills it with the softmax of `values`. The operation sequence per
/// element is identical to `softmax`, so results are bit-equal.
pub fn softmax_into(values: &[f32], out: &mut Vec<f32>) {
    out.clear();
    if values.is_empty() {
        return;
    }
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    out.extend(values.iter().map(|&v| (v - max).exp()));
    let sum: f32 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn distances_known_values() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-6);
        assert!((squared_euclidean(&a, &b) - 25.0).abs() < 1e-6);
        assert!((manhattan(&a, &b) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn distance_identity_of_indiscernibles() {
        let a = [1.5, -2.5, 3.0];
        for m in [
            DistanceMetric::Euclidean,
            DistanceMetric::SquaredEuclidean,
            DistanceMetric::Cosine,
            DistanceMetric::Manhattan,
        ] {
            assert!(m.eval(&a, &a).abs() < 1e-6, "{m:?} self-distance nonzero");
        }
    }

    #[test]
    fn cosine_extremes() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        // Zero vector yields 0 similarity, not NaN.
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn l2_normalize_vector() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_vector_averages() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let m = mean_vector(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 3.0]);
        assert!(mean_vector(&[]).is_none());
    }

    #[test]
    fn argmin_argmax_ties_and_nan() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 5.0, 5.0]), Some(1));
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f32::NAN, 2.0]), Some(1));
        assert_eq!(argmin(&[f32::NAN]), None);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Large values must not overflow.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn metric_eval_dispatch() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((DistanceMetric::Euclidean.eval(&a, &b) - 2.0f32.sqrt()).abs() < 1e-6);
        assert!((DistanceMetric::SquaredEuclidean.eval(&a, &b) - 2.0).abs() < 1e-6);
        assert!((DistanceMetric::Cosine.eval(&a, &b) - 1.0).abs() < 1e-6);
        assert!((DistanceMetric::Manhattan.eval(&a, &b) - 2.0).abs() < 1e-6);
        assert_eq!(DistanceMetric::default(), DistanceMetric::Euclidean);
    }
}
