//! Deterministic RNG facade.
//!
//! Everything random in the reproduction — synthetic sensor data, weight
//! initialisation, pair sampling, support-set selection — draws from a
//! [`SeededRng`], and parent seeds can be split into independent child
//! streams with [`SeededRng::split`]. Re-running any experiment with the
//! same seed reproduces the same numbers bit-for-bit.
//!
//! The generator is a self-contained xoshiro256++ seeded through
//! SplitMix64 (the reference seeding procedure), so the crate has no
//! external RNG dependency and the stream is stable across platforms.

/// A seeded, splittable random-number generator.
///
/// xoshiro256++ with SplitMix64 seeding, plus a stable `split` operation
/// and a few convenience samplers used throughout the workspace.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
}

impl SeededRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, per the
        // xoshiro reference implementation.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SeededRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }

    /// Derive an independent child generator for a named subsystem.
    ///
    /// The label is hashed (FNV-1a) into the child seed, so
    /// `rng.split("sensors")` and `rng.split("weights")` are decorrelated
    /// streams and the split is stable across runs and platforms.
    pub fn split(&mut self, label: &str) -> SeededRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mix = self.next_u64();
        SeededRng::new(h ^ mix.rotate_left(17))
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` (24 random mantissa bits).
    fn unit_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[low, high)`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        if low == high {
            return low;
        }
        self.unit_f32() * (high - low) + low
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller: two uniforms -> one normal (the second is discarded
        // for simplicity; this is not a hot path).
        let u1: f32 = self.unit_f32().max(1e-10);
        let u2: f32 = self.unit_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Uniform integer in `[0, n)`. Returns `0` when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            // Lemire's multiply-shift range reduction (bias is negligible
            // for the sizes used here and the stream stays deterministic).
            ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            // Consume a draw so the stream advances consistently.
            let _ = self.next_u64();
            return true;
        }
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (all of them when
    /// `k >= n`), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_is_deterministic_and_label_sensitive() {
        let mut p1 = SeededRng::new(7);
        let mut p2 = SeededRng::new(7);
        let mut a = p1.split("sensors");
        let mut b = p2.split("sensors");
        assert_eq!(a.next_u64(), b.next_u64());

        let mut p3 = SeededRng::new(7);
        let mut c = p3.split("weights");
        let mut p4 = SeededRng::new(7);
        let mut d = p4.split("sensors");
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
        assert_eq!(rng.uniform(1.5, 1.5), 1.5);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = SeededRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.normal_with(10.0, 2.0)).sum::<f32>() / n as f32;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn index_and_chance_edges() {
        let mut rng = SeededRng::new(9);
        assert_eq!(rng.index(0), 0);
        for _ in 0..100 {
            assert!(rng.index(4) < 4);
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range p is clamped instead of panicking.
        assert!(rng.chance(2.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SeededRng::new(17);
        let s = rng.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
        // k >= n returns everything.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
        assert!(rng.sample_indices(0, 5).is_empty());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SeededRng::new(21);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Astronomically unlikely to stay all-zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_zero_one_is_bernoulli_mean() {
        let mut rng = SeededRng::new(23);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
