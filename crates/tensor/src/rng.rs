//! Deterministic RNG facade.
//!
//! Everything random in the reproduction — synthetic sensor data, weight
//! initialisation, pair sampling, support-set selection — draws from a
//! [`SeededRng`], and parent seeds can be split into independent child
//! streams with [`SeededRng::split`]. Re-running any experiment with the
//! same seed reproduces the same numbers bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, splittable random-number generator.
///
/// Thin wrapper over [`rand::rngs::StdRng`] that adds a stable `split`
/// operation and a few convenience samplers used throughout the workspace.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator for a named subsystem.
    ///
    /// The label is hashed (FNV-1a) into the child seed, so
    /// `rng.split("sensors")` and `rng.split("weights")` are decorrelated
    /// streams and the split is stable across runs and platforms.
    pub fn split(&mut self, label: &str) -> SeededRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mix = self.inner.gen::<u64>();
        SeededRng::new(h ^ mix.rotate_left(17))
    }

    /// Uniform `f32` in `[low, high)`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        if low == high {
            return low;
        }
        self.inner.gen::<f32>() * (high - low) + low
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller: two uniforms -> one normal (the second is discarded
        // for simplicity; this is not a hot path).
        let u1: f32 = self.inner.gen::<f32>().max(1e-10);
        let u2: f32 = self.inner.gen::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Uniform integer in `[0, n)`. Returns `0` when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (all of them when
    /// `k >= n`), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Access the underlying `rand` RNG (for APIs that need `impl Rng`).
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_is_deterministic_and_label_sensitive() {
        let mut p1 = SeededRng::new(7);
        let mut p2 = SeededRng::new(7);
        let mut a = p1.split("sensors");
        let mut b = p2.split("sensors");
        assert_eq!(a.next_u64(), b.next_u64());

        let mut p3 = SeededRng::new(7);
        let mut c = p3.split("weights");
        let mut p4 = SeededRng::new(7);
        let mut d = p4.split("sensors");
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
        assert_eq!(rng.uniform(1.5, 1.5), 1.5);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = SeededRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.normal_with(10.0, 2.0)).sum::<f32>() / n as f32;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn index_and_chance_edges() {
        let mut rng = SeededRng::new(9);
        assert_eq!(rng.index(0), 0);
        for _ in 0..100 {
            assert!(rng.index(4) < 4);
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range p is clamped instead of panicking.
        assert!(rng.chance(2.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SeededRng::new(17);
        let s = rng.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
        // k >= n returns everything.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
        assert!(rng.sample_indices(0, 5).is_empty());
    }
}
