//! Autotuned kernel launch plan.
//!
//! PR 1 hard-coded the GEMM dispatch constants (`TILED_MIN_ROWS`, the
//! 4×32 register tile, the 256-deep k-panel) to values measured on one
//! development laptop. Real Edge hardware spans an order of magnitude in
//! core count, vector width and cache size, so this module makes the
//! launch configuration a *value* — a [`KernelPlan`] — instead of a set
//! of constants. A plan is produced three ways:
//!
//! * [`KernelPlan::inline`] / [`KernelPlan::host_default`] — safe
//!   defaults that reproduce the PR-1 constants exactly (`inline` pins
//!   one thread; `host_default` adds the machine's core count);
//! * [`KernelPlan::autotune`] — a startup micro-benchmark pass that
//!   times tile shapes × dispatch thresholds × thread counts on the
//!   actual host and keeps the fastest combination;
//! * [`KernelPlan::load_or_default`] — reload a previously autotuned
//!   plan cached on disk (the Edge runtime stores it next to the model
//!   bundle), falling back to `host_default` when the file is missing,
//!   corrupt, or written by an incompatible version.
//!
//! Plans only steer *scheduling*: for any one fixed plan the kernels in
//! [`crate::matrix`] produce bit-identical results at every thread
//! count (see `DESIGN.md` §11 for the argument), so caching or retuning
//! a plan can never change what a model computes — only how fast.
//!
//! Privacy note (paper Definition 1): a plan describes the *device*, not
//! the user — thread count and cache-friendly tile sizes. It is written
//! only to device-local storage and never leaves the Edge.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::pool::Exec;
use crate::rng::SeededRng;
use crate::tiling::Backend;
use crate::Result;

/// Format version stamped into serialized plans; bump on layout change
/// so stale cached plans fall back to defaults instead of misdispatching.
/// v3 added the micro-kernel [`Backend`] choice; v2 added the int8
/// kernel constants (`i8_tile_cols`, `i8_tiled_min_rows`). Plans cached
/// on disk by any previous version are rejected and the runtime falls
/// back to [`KernelPlan::host_default`].
pub const PLAN_VERSION: u32 = 3;

/// Hard cap on pool threads a plan may request.
pub const MAX_THREADS: usize = 16;

/// Launch configuration for every GEMM in the crate.
///
/// `Copy` on purpose: a plan is six small integers, cloned freely into
/// closures and across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelPlan {
    /// Format version ([`PLAN_VERSION`]) for cached plans.
    pub version: u32,
    /// Total compute threads (pool workers + the calling thread).
    /// `1` means fully sequential — no pool is created.
    pub threads: usize,
    /// Register-tile width of the batched matmul kernel (16 or 32).
    pub tile_cols: usize,
    /// Minimum batch rows before `matmul` leaves the zero-skipping axpy
    /// kernel for the register-tiled one (PR-1's `TILED_MIN_ROWS`).
    pub tiled_min_rows: usize,
    /// k-panel depth of the tiled kernel (how much of `rhs` stays
    /// L1-resident between row blocks).
    pub panel_k: usize,
    /// Minimum output rows before a GEMM is split across pool threads;
    /// below this the dispatch overhead outweighs the parallelism.
    pub par_min_rows: usize,
    /// Register-tile width of the int8 GEMM kernel (16 or 32 output
    /// columns per strip).
    pub i8_tile_cols: usize,
    /// Minimum batch rows before the int8 matmul leaves the single-row
    /// kernel for the register-tiled one.
    pub i8_tiled_min_rows: usize,
    /// Micro-kernel instance executing the f32 register tiles. Defaults
    /// to [`Backend::Scalar`] (the bit-identity reference) when absent
    /// from a serialized plan; only [`KernelPlan::autotune`] or an
    /// explicit [`KernelPlan::with_backend`] select a SIMD instance, and
    /// [`KernelPlan::sanitized`] degrades any backend the host cannot
    /// run back to scalar.
    #[serde(default)]
    pub backend: Backend,
    /// Micro-kernel instance executing the int8 GEMM tiles, tuned
    /// independently of `backend`: the widening i8→i32 multiply has a
    /// very different instruction profile from the f32 FMA, so the
    /// fastest instance for one family routinely loses for the other
    /// (on AVX2 the `mullo_epi32` chain can trail an auto-vectorised
    /// scalar build). Same defaulting and sanitization rules as
    /// `backend`.
    #[serde(default)]
    pub i8_backend: Backend,
}

impl Default for KernelPlan {
    fn default() -> Self {
        KernelPlan::inline()
    }
}

impl KernelPlan {
    /// The sequential plan: PR-1's exact constants, one thread.
    ///
    /// This is the reference configuration every parallel run is
    /// property-tested to match bit-for-bit.
    pub fn inline() -> Self {
        KernelPlan {
            version: PLAN_VERSION,
            threads: 1,
            tile_cols: 32,
            tiled_min_rows: 16,
            panel_k: 256,
            par_min_rows: 32,
            i8_tile_cols: 32,
            i8_tiled_min_rows: 16,
            backend: Backend::Scalar,
            i8_backend: Backend::Scalar,
        }
    }

    /// Safe defaults for this host: PR-1 tile constants plus the
    /// machine's available core count (capped at [`MAX_THREADS`]).
    pub fn host_default() -> Self {
        KernelPlan {
            threads: available_threads(),
            ..KernelPlan::inline()
        }
    }

    /// The same plan with `threads` replaced (clamped to
    /// `1..=`[`MAX_THREADS`]) — used by benchmarks and property tests to
    /// sweep pool sizes with the tile configuration held fixed.
    pub fn with_threads(self, threads: usize) -> Self {
        KernelPlan {
            threads: threads.clamp(1, MAX_THREADS),
            ..self
        }
    }

    /// The same plan with *both* micro-kernel backends (`backend` and
    /// `i8_backend`) replaced, degraded to [`Backend::Scalar`] when the
    /// host cannot run the requested one — used by the smoke benchmarks
    /// to force the SIMD/scalar comparison and by applications honouring
    /// a user override.
    pub fn with_backend(self, backend: Backend) -> Self {
        let backend = if backend.is_available() {
            backend
        } else {
            Backend::Scalar
        };
        KernelPlan {
            backend,
            i8_backend: backend,
            ..self
        }
    }

    /// Clamp every field into the range the kernels support. Applied to
    /// every plan that crosses a trust boundary (deserialized from disk,
    /// handed in by an application) so a corrupt value can degrade
    /// performance but never break dispatch.
    pub fn sanitized(self) -> Self {
        KernelPlan {
            version: PLAN_VERSION,
            threads: self.threads.clamp(1, MAX_THREADS),
            // Only the two monomorphized tile widths exist.
            tile_cols: if self.tile_cols <= 16 { 16 } else { 32 },
            tiled_min_rows: self.tiled_min_rows.clamp(4, 4096),
            panel_k: self.panel_k.clamp(32, 8192),
            par_min_rows: self.par_min_rows.clamp(8, 1 << 20),
            i8_tile_cols: if self.i8_tile_cols <= 16 { 16 } else { 32 },
            i8_tiled_min_rows: self.i8_tiled_min_rows.clamp(4, 4096),
            // A cached plan may name a backend this host lacks (bundle
            // copied between devices, CPU migration): degrade to the
            // always-available scalar instance instead of faulting.
            backend: if self.backend.is_available() {
                self.backend
            } else {
                Backend::Scalar
            },
            i8_backend: if self.i8_backend.is_available() {
                self.i8_backend
            } else {
                Backend::Scalar
            },
        }
    }

    /// One-line human-readable summary for startup banners.
    pub fn describe(&self) -> String {
        format!(
            "backend={} threads={} tile=4x{} panel_k={} tiled_min_rows={} par_min_rows={} i8_backend={} i8_tile=4x{} i8_tiled_min_rows={}",
            self.backend,
            self.threads,
            self.tile_cols,
            self.panel_k,
            self.tiled_min_rows,
            self.par_min_rows,
            self.i8_backend,
            self.i8_tile_cols,
            self.i8_tiled_min_rows
        )
    }

    // -- persistence ------------------------------------------------------

    /// Serialize to pretty JSON (the on-disk cache format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("KernelPlan serializes infallibly")
    }

    /// Parse a plan from JSON, rejecting incompatible versions.
    ///
    /// # Errors
    /// Returns [`TensorError::Decode`] on malformed JSON or a version
    /// mismatch.
    pub fn from_json(json: &str) -> Result<Self> {
        let plan: KernelPlan = serde_json::from_str(json)
            .map_err(|e| TensorError::Decode(format!("kernel plan: {e}")))?;
        if plan.version != PLAN_VERSION {
            return Err(TensorError::Decode(format!(
                "kernel plan version {} (expected {PLAN_VERSION})",
                plan.version
            )));
        }
        Ok(plan.sanitized())
    }

    /// Write the plan to `path` atomically (temp file + rename), so a
    /// crash mid-write leaves either the old plan or none at all.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Load a plan from `path`.
    ///
    /// # Errors
    /// Returns [`TensorError::Decode`] when the file is unreadable,
    /// malformed, or version-incompatible.
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| TensorError::Decode(format!("kernel plan {}: {e}", path.display())))?;
        KernelPlan::from_json(&json)
    }

    /// Load a cached plan, falling back to [`KernelPlan::host_default`]
    /// when the file is missing, corrupt, or version-incompatible — the
    /// "safe defaults" contract the Edge runtime relies on at boot.
    pub fn load_or_default(path: &Path) -> Self {
        KernelPlan::load(path).unwrap_or_else(|_| KernelPlan::host_default())
    }

    // -- autotune ---------------------------------------------------------

    /// Micro-benchmark tile shapes × dispatch thresholds × thread counts
    /// on this host and return the fastest plan.
    ///
    /// Takes tens of milliseconds; intended as a one-off startup pass
    /// whose result is cached with [`KernelPlan::save`]. The search is
    /// staged (tile shape at one thread, then the axpy↔tiled threshold,
    /// then thread count on a training-shaped workload) rather than a
    /// full grid, and thread-count selection applies 5% hysteresis in
    /// favour of fewer threads so measurement noise on a quiet host
    /// cannot talk a phone-class SoC into waking extra cores.
    pub fn autotune() -> Self {
        autotune_impl(AUTOTUNE_REPS)
    }
}

/// Available cores, capped at [`MAX_THREADS`]; `1` when the count is
/// unavailable.
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Best-of-N repetitions per candidate; the minimum over reps filters
/// scheduler noise far better than the mean does.
const AUTOTUNE_REPS: usize = 3;

/// Timed iterations inside one repetition.
const AUTOTUNE_ITERS: usize = 4;

/// Representative shapes: a training mini-batch flowing through the
/// widest trunk layers of the paper's MLP (batch × 128 → 128).
const TUNE_M: usize = 64;
const TUNE_K: usize = 128;
const TUNE_N: usize = 128;

fn autotune_impl(reps: usize) -> KernelPlan {
    let mut rng = SeededRng::new(0x4d41_474e_4554_4f21); // "MAGNETO!"
    let a = sparse_matrix(TUNE_M, TUNE_K, &mut rng);
    let b = dense_matrix(TUNE_K, TUNE_N, &mut rng);
    let mut out = Matrix::zeros(TUNE_M, TUNE_N);

    // Stage 1: backend × tile shape, single-threaded. The best
    // configuration is kept *per backend* so the SIMD-vs-scalar decision
    // compares each instance at its own preferred tile shape.
    let mut per_backend: Vec<(f64, KernelPlan)> = Vec::new();
    for backend in Backend::candidates() {
        let mut best = (f64::INFINITY, KernelPlan::inline());
        for &tile_cols in &[16usize, 32] {
            for &panel_k in &[128usize, 256] {
                let plan = KernelPlan {
                    backend,
                    tile_cols,
                    panel_k,
                    // Force the tiled kernel so the tile shape is what's timed.
                    tiled_min_rows: 4,
                    ..KernelPlan::inline()
                };
                let exec = Exec::from_plan(plan);
                let t = bench(reps, || {
                    a.matmul_into_exec(&b, &mut out, &exec).expect("tune shapes agree");
                });
                if t < best.0 {
                    best = (t, plan);
                }
            }
        }
        per_backend.push(best);
    }
    // Scalar is always per_backend[0]; a SIMD candidate, when the host
    // has one, is the only other entry. Prefer SIMD within a 5%
    // hysteresis window: on builds whose "scalar" already auto-vectorises
    // (-C target-cpu=native) the two often tie, and the explicit kernels'
    // performance is guaranteed across compilers and build flags where
    // the auto-vectoriser's is not.
    let (t_scalar, scalar_best) = per_backend[0];
    let (tile_cols, panel_k, backend) = match per_backend.get(1) {
        Some(&(t_simd, simd_best)) if t_simd <= t_scalar * 1.05 => {
            (simd_best.tile_cols, simd_best.panel_k, simd_best.backend)
        }
        _ => (scalar_best.tile_cols, scalar_best.panel_k, Backend::Scalar),
    };

    // Stage 1b: int8 backend × tile shape, single-threaded. The i8
    // kernel gets its own backend decision as well as its own
    // register-tile width: the widening i8→i32 multiply has a different
    // instruction profile from the f32 FMA, and the fastest instance
    // for one family routinely loses for the other. Best configuration
    // is kept per backend, then compared with the same SIMD-preference
    // hysteresis as the f32 stage.
    let w_q = crate::quant::QuantMatrix::quantize(&b).expect("tune weights quantize");
    let mut scratch = crate::quant::QuantScratch::default();
    let mut i8_per_backend: Vec<(f64, KernelPlan)> = Vec::new();
    for i8_backend in Backend::candidates() {
        let mut best = (f64::INFINITY, KernelPlan::inline());
        for &i8_tile_cols in &[16usize, 32] {
            let plan = KernelPlan {
                i8_backend,
                i8_tile_cols,
                // Force the tiled kernel so the tile shape is what's timed.
                i8_tiled_min_rows: 4,
                ..KernelPlan::inline()
            };
            let exec = Exec::from_plan(plan);
            let t = bench(reps, || {
                w_q.matmul_bias_act_into_exec(
                    &a,
                    &[0.0; TUNE_N],
                    |v| v,
                    &mut out,
                    &mut scratch,
                    &exec,
                )
                .expect("tune shapes agree");
            });
            if t < best.0 {
                best = (t, plan);
            }
        }
        i8_per_backend.push(best);
    }
    let (i8_t_scalar, i8_scalar_best) = i8_per_backend[0];
    let (i8_tile_cols, i8_backend) = match i8_per_backend.get(1) {
        Some(&(t_simd, simd_best)) if t_simd <= i8_t_scalar * 1.05 => {
            (simd_best.i8_tile_cols, simd_best.i8_backend)
        }
        _ => (i8_scalar_best.i8_tile_cols, Backend::Scalar),
    };

    // Stage 2: axpy↔tiled crossover. Time both kernels at candidate batch
    // sizes and set the threshold to the smallest batch where the tiled
    // kernel wins (post-ReLU sparsity favours axpy's zero-skip below it).
    let mut tiled_min_rows = 4 * TUNE_M; // pessimistic: axpy everywhere
    for &rows in &[8usize, 16, 32] {
        let a_small = sparse_matrix(rows, TUNE_K, &mut rng);
        let mut o_small = Matrix::zeros(rows, TUNE_N);
        let axpy = Exec::from_plan(KernelPlan {
            backend,
            tiled_min_rows: usize::MAX,
            ..KernelPlan::inline()
        });
        let tiled = Exec::from_plan(KernelPlan {
            backend,
            tile_cols,
            panel_k,
            tiled_min_rows: 1,
            ..KernelPlan::inline()
        });
        let t_axpy = bench(reps, || {
            a_small.matmul_into_exec(&b, &mut o_small, &axpy).expect("tune shapes agree");
        });
        let t_tiled = bench(reps, || {
            a_small.matmul_into_exec(&b, &mut o_small, &tiled).expect("tune shapes agree");
        });
        if t_tiled < t_axpy {
            tiled_min_rows = rows;
            break;
        }
    }

    // Stage 3: thread count on a training-shaped workload (forward GEMM +
    // both backward GEMMs), with hysteresis towards fewer threads.
    let tuned = KernelPlan {
        backend,
        tile_cols,
        panel_k,
        tiled_min_rows,
        i8_backend,
        i8_tile_cols,
        ..KernelPlan::inline()
    }
    .sanitized();
    let delta = dense_matrix(TUNE_M, TUNE_N, &mut rng);
    let w = dense_matrix(TUNE_K, TUNE_N, &mut rng);
    let mut dw = Matrix::zeros(TUNE_K, TUNE_N);
    let mut dx = Matrix::zeros(TUNE_M, TUNE_K);
    let max_threads = available_threads();
    let mut timings: Vec<(usize, f64)> = Vec::new();
    for &threads in &[1usize, 2, 4, 8, 16] {
        if threads > max_threads {
            break;
        }
        let exec = Exec::from_plan(tuned.with_threads(threads));
        let t = bench(reps, || {
            a.matmul_into_exec(&b, &mut out, &exec).expect("tune shapes agree");
            a.transpose_matmul_into_exec(&delta, &mut dw, &exec)
                .expect("tune shapes agree");
            delta
                .matmul_transpose_into_exec(&w, &mut dx, &exec)
                .expect("tune shapes agree");
        });
        timings.push((threads, t));
    }
    let best_time = timings.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    let threads = timings
        .iter()
        .find(|&&(_, t)| t <= best_time * 1.05)
        .map(|&(n, _)| n)
        .unwrap_or(1);

    tuned.with_threads(threads)
}

/// Minimum wall-time over `reps` repetitions of [`AUTOTUNE_ITERS`] calls.
fn bench(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, settle the branch predictor
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        for _ in 0..AUTOTUNE_ITERS {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Uniform matrix with ~50% exact zeros — the post-ReLU activation
/// profile the zero-skipping kernels are specialised for.
fn sparse_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.chance(0.5) {
                0.0
            } else {
                rng.uniform(-1.0, 1.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized to shape")
}

/// Dense uniform matrix (weights, deltas).
fn dense_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("sized to shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_plan_matches_pr1_constants() {
        let p = KernelPlan::inline();
        assert_eq!(p.threads, 1);
        assert_eq!(p.tile_cols, 32);
        assert_eq!(p.tiled_min_rows, crate::matrix::TILED_MIN_ROWS);
        assert_eq!(p.panel_k, 256);
    }

    #[test]
    fn sanitize_clamps_garbage() {
        let p = KernelPlan {
            version: 999,
            threads: 0,
            tile_cols: 7,
            tiled_min_rows: 0,
            panel_k: 1,
            par_min_rows: 0,
            i8_tile_cols: 999,
            i8_tiled_min_rows: 0,
            backend: Backend::Neon,
            i8_backend: Backend::Avx2,
        }
        .sanitized();
        assert_eq!(p.version, PLAN_VERSION);
        assert_eq!(p.threads, 1);
        assert_eq!(p.tile_cols, 16);
        assert!(p.tiled_min_rows >= 4);
        assert!(p.panel_k >= 32);
        assert!(p.par_min_rows >= 8);
        assert_eq!(p.i8_tile_cols, 32);
        assert!(p.i8_tiled_min_rows >= 4);
        // An unavailable backend degrades to scalar; an available one
        // survives. Either way the sanitized plan can always dispatch.
        assert!(p.backend.is_available());
        assert!(p.i8_backend.is_available());
    }

    #[test]
    fn with_backend_degrades_unavailable_to_scalar() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            let p = KernelPlan::inline().with_backend(b);
            assert!(p.backend.is_available());
            assert_eq!(p.i8_backend, p.backend, "with_backend forces both families");
            if b.is_available() {
                assert_eq!(p.backend, b);
            } else {
                assert_eq!(p.backend, Backend::Scalar);
            }
        }
    }

    #[test]
    fn v2_plan_without_backend_is_rejected_and_falls_back() {
        // A faithful v2 cache file: no `backend` field, version 2. The
        // serde default lets it *parse*, but the version gate must still
        // reject it so stale tunings re-run instead of mis-steering.
        let v2_json = r#"{
            "version": 2,
            "threads": 4,
            "tile_cols": 16,
            "tiled_min_rows": 8,
            "panel_k": 128,
            "par_min_rows": 32,
            "i8_tile_cols": 16,
            "i8_tiled_min_rows": 8
        }"#;
        assert!(matches!(
            KernelPlan::from_json(v2_json),
            Err(TensorError::Decode(_))
        ));
        let dir = std::env::temp_dir().join("magneto_plan_v2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        std::fs::write(&path, v2_json).unwrap();
        assert_eq!(KernelPlan::load_or_default(&path), KernelPlan::host_default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn current_version_plan_without_backend_defaults_to_scalar() {
        // Forward-compat within v3: hand-edited plans may omit the
        // backend; serde's default fills in the safe scalar instance.
        let json = format!(
            r#"{{
            "version": {PLAN_VERSION},
            "threads": 2,
            "tile_cols": 32,
            "tiled_min_rows": 16,
            "panel_k": 256,
            "par_min_rows": 32,
            "i8_tile_cols": 32,
            "i8_tiled_min_rows": 16
        }}"#
        );
        let plan = KernelPlan::from_json(&json).unwrap();
        assert_eq!(plan.backend, Backend::Scalar);
        assert_eq!(plan.i8_backend, Backend::Scalar);
    }

    #[test]
    fn corrupt_plan_file_falls_back_to_default() {
        let dir = std::env::temp_dir().join("magneto_plan_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        std::fs::write(&path, "{ not json at all").unwrap();
        assert_eq!(KernelPlan::load_or_default(&path), KernelPlan::host_default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_roundtrip_preserves_plan() {
        let p = KernelPlan::host_default().with_threads(3);
        let back = KernelPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut p = KernelPlan::inline();
        p.version = PLAN_VERSION + 1;
        let json = serde_json::to_string(&p).unwrap();
        assert!(matches!(
            KernelPlan::from_json(&json),
            Err(TensorError::Decode(_))
        ));
    }

    #[test]
    fn describe_mentions_threads_tile_and_backend() {
        let d = KernelPlan::inline().describe();
        assert!(d.contains("backend=scalar"));
        assert!(d.contains("threads=1"));
        assert!(d.contains("tile=4x32"));
        assert!(d.contains("i8_backend=scalar"));
        assert!(d.contains("i8_tile=4x32"));
    }
}
