//! Autotuned kernel launch plan.
//!
//! PR 1 hard-coded the GEMM dispatch constants (`TILED_MIN_ROWS`, the
//! 4×32 register tile, the 256-deep k-panel) to values measured on one
//! development laptop. Real Edge hardware spans an order of magnitude in
//! core count, vector width and cache size, so this module makes the
//! launch configuration a *value* — a [`KernelPlan`] — instead of a set
//! of constants. A plan is produced three ways:
//!
//! * [`KernelPlan::inline`] / [`KernelPlan::host_default`] — safe
//!   defaults that reproduce the PR-1 constants exactly (`inline` pins
//!   one thread; `host_default` adds the machine's core count);
//! * [`KernelPlan::autotune`] — a startup micro-benchmark pass that
//!   times tile shapes × dispatch thresholds × thread counts on the
//!   actual host and keeps the fastest combination;
//! * [`KernelPlan::load_or_default`] — reload a previously autotuned
//!   plan cached on disk (the Edge runtime stores it next to the model
//!   bundle), falling back to `host_default` when the file is missing,
//!   corrupt, or written by an incompatible version.
//!
//! Plans only steer *scheduling*: for any one fixed plan the kernels in
//! [`crate::matrix`] produce bit-identical results at every thread
//! count (see `DESIGN.md` §11 for the argument), so caching or retuning
//! a plan can never change what a model computes — only how fast.
//!
//! Privacy note (paper Definition 1): a plan describes the *device*, not
//! the user — thread count and cache-friendly tile sizes. It is written
//! only to device-local storage and never leaves the Edge.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::pool::Exec;
use crate::rng::SeededRng;
use crate::Result;

/// Format version stamped into serialized plans; bump on layout change
/// so stale cached plans fall back to defaults instead of misdispatching.
/// v2 added the int8 kernel constants (`i8_tile_cols`,
/// `i8_tiled_min_rows`); v1 plans cached on disk are rejected and the
/// runtime falls back to [`KernelPlan::host_default`].
pub const PLAN_VERSION: u32 = 2;

/// Hard cap on pool threads a plan may request.
pub const MAX_THREADS: usize = 16;

/// Launch configuration for every GEMM in the crate.
///
/// `Copy` on purpose: a plan is six small integers, cloned freely into
/// closures and across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelPlan {
    /// Format version ([`PLAN_VERSION`]) for cached plans.
    pub version: u32,
    /// Total compute threads (pool workers + the calling thread).
    /// `1` means fully sequential — no pool is created.
    pub threads: usize,
    /// Register-tile width of the batched matmul kernel (16 or 32).
    pub tile_cols: usize,
    /// Minimum batch rows before `matmul` leaves the zero-skipping axpy
    /// kernel for the register-tiled one (PR-1's `TILED_MIN_ROWS`).
    pub tiled_min_rows: usize,
    /// k-panel depth of the tiled kernel (how much of `rhs` stays
    /// L1-resident between row blocks).
    pub panel_k: usize,
    /// Minimum output rows before a GEMM is split across pool threads;
    /// below this the dispatch overhead outweighs the parallelism.
    pub par_min_rows: usize,
    /// Register-tile width of the int8 GEMM kernel (16 or 32 output
    /// columns per strip).
    pub i8_tile_cols: usize,
    /// Minimum batch rows before the int8 matmul leaves the single-row
    /// kernel for the register-tiled one.
    pub i8_tiled_min_rows: usize,
}

impl Default for KernelPlan {
    fn default() -> Self {
        KernelPlan::inline()
    }
}

impl KernelPlan {
    /// The sequential plan: PR-1's exact constants, one thread.
    ///
    /// This is the reference configuration every parallel run is
    /// property-tested to match bit-for-bit.
    pub fn inline() -> Self {
        KernelPlan {
            version: PLAN_VERSION,
            threads: 1,
            tile_cols: 32,
            tiled_min_rows: 16,
            panel_k: 256,
            par_min_rows: 32,
            i8_tile_cols: 32,
            i8_tiled_min_rows: 16,
        }
    }

    /// Safe defaults for this host: PR-1 tile constants plus the
    /// machine's available core count (capped at [`MAX_THREADS`]).
    pub fn host_default() -> Self {
        KernelPlan {
            threads: available_threads(),
            ..KernelPlan::inline()
        }
    }

    /// The same plan with `threads` replaced (clamped to
    /// `1..=`[`MAX_THREADS`]) — used by benchmarks and property tests to
    /// sweep pool sizes with the tile configuration held fixed.
    pub fn with_threads(self, threads: usize) -> Self {
        KernelPlan {
            threads: threads.clamp(1, MAX_THREADS),
            ..self
        }
    }

    /// Clamp every field into the range the kernels support. Applied to
    /// every plan that crosses a trust boundary (deserialized from disk,
    /// handed in by an application) so a corrupt value can degrade
    /// performance but never break dispatch.
    pub fn sanitized(self) -> Self {
        KernelPlan {
            version: PLAN_VERSION,
            threads: self.threads.clamp(1, MAX_THREADS),
            // Only the two monomorphized tile widths exist.
            tile_cols: if self.tile_cols <= 16 { 16 } else { 32 },
            tiled_min_rows: self.tiled_min_rows.clamp(4, 4096),
            panel_k: self.panel_k.clamp(32, 8192),
            par_min_rows: self.par_min_rows.clamp(8, 1 << 20),
            i8_tile_cols: if self.i8_tile_cols <= 16 { 16 } else { 32 },
            i8_tiled_min_rows: self.i8_tiled_min_rows.clamp(4, 4096),
        }
    }

    /// One-line human-readable summary for startup banners.
    pub fn describe(&self) -> String {
        format!(
            "threads={} tile=4x{} panel_k={} tiled_min_rows={} par_min_rows={} i8_tile=4x{} i8_tiled_min_rows={}",
            self.threads,
            self.tile_cols,
            self.panel_k,
            self.tiled_min_rows,
            self.par_min_rows,
            self.i8_tile_cols,
            self.i8_tiled_min_rows
        )
    }

    // -- persistence ------------------------------------------------------

    /// Serialize to pretty JSON (the on-disk cache format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("KernelPlan serializes infallibly")
    }

    /// Parse a plan from JSON, rejecting incompatible versions.
    ///
    /// # Errors
    /// Returns [`TensorError::Decode`] on malformed JSON or a version
    /// mismatch.
    pub fn from_json(json: &str) -> Result<Self> {
        let plan: KernelPlan = serde_json::from_str(json)
            .map_err(|e| TensorError::Decode(format!("kernel plan: {e}")))?;
        if plan.version != PLAN_VERSION {
            return Err(TensorError::Decode(format!(
                "kernel plan version {} (expected {PLAN_VERSION})",
                plan.version
            )));
        }
        Ok(plan.sanitized())
    }

    /// Write the plan to `path` atomically (temp file + rename), so a
    /// crash mid-write leaves either the old plan or none at all.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Load a plan from `path`.
    ///
    /// # Errors
    /// Returns [`TensorError::Decode`] when the file is unreadable,
    /// malformed, or version-incompatible.
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| TensorError::Decode(format!("kernel plan {}: {e}", path.display())))?;
        KernelPlan::from_json(&json)
    }

    /// Load a cached plan, falling back to [`KernelPlan::host_default`]
    /// when the file is missing, corrupt, or version-incompatible — the
    /// "safe defaults" contract the Edge runtime relies on at boot.
    pub fn load_or_default(path: &Path) -> Self {
        KernelPlan::load(path).unwrap_or_else(|_| KernelPlan::host_default())
    }

    // -- autotune ---------------------------------------------------------

    /// Micro-benchmark tile shapes × dispatch thresholds × thread counts
    /// on this host and return the fastest plan.
    ///
    /// Takes tens of milliseconds; intended as a one-off startup pass
    /// whose result is cached with [`KernelPlan::save`]. The search is
    /// staged (tile shape at one thread, then the axpy↔tiled threshold,
    /// then thread count on a training-shaped workload) rather than a
    /// full grid, and thread-count selection applies 5% hysteresis in
    /// favour of fewer threads so measurement noise on a quiet host
    /// cannot talk a phone-class SoC into waking extra cores.
    pub fn autotune() -> Self {
        autotune_impl(AUTOTUNE_REPS)
    }
}

/// Available cores, capped at [`MAX_THREADS`]; `1` when the count is
/// unavailable.
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Best-of-N repetitions per candidate; the minimum over reps filters
/// scheduler noise far better than the mean does.
const AUTOTUNE_REPS: usize = 3;

/// Timed iterations inside one repetition.
const AUTOTUNE_ITERS: usize = 4;

/// Representative shapes: a training mini-batch flowing through the
/// widest trunk layers of the paper's MLP (batch × 128 → 128).
const TUNE_M: usize = 64;
const TUNE_K: usize = 128;
const TUNE_N: usize = 128;

fn autotune_impl(reps: usize) -> KernelPlan {
    let mut rng = SeededRng::new(0x4d41_474e_4554_4f21); // "MAGNETO!"
    let a = sparse_matrix(TUNE_M, TUNE_K, &mut rng);
    let b = dense_matrix(TUNE_K, TUNE_N, &mut rng);
    let mut out = Matrix::zeros(TUNE_M, TUNE_N);

    // Stage 1: tile shape, single-threaded.
    let mut best = (f64::INFINITY, KernelPlan::inline());
    for &tile_cols in &[16usize, 32] {
        for &panel_k in &[128usize, 256] {
            let plan = KernelPlan {
                tile_cols,
                panel_k,
                // Force the tiled kernel so the tile shape is what's timed.
                tiled_min_rows: 4,
                ..KernelPlan::inline()
            };
            let exec = Exec::from_plan(plan);
            let t = bench(reps, || {
                a.matmul_into_exec(&b, &mut out, &exec).expect("tune shapes agree");
            });
            if t < best.0 {
                best = (t, plan);
            }
        }
    }
    let (tile_cols, panel_k) = (best.1.tile_cols, best.1.panel_k);

    // Stage 1b: int8 tile shape, single-threaded. The i8 kernel has its
    // own register-tile width because the widening i8→i32 multiply
    // changes the register pressure profile versus the f32 FMA kernel.
    let w_q = crate::quant::QuantMatrix::quantize(&b).expect("tune weights quantize");
    let mut scratch = crate::quant::QuantScratch::default();
    let mut i8_best = (f64::INFINITY, 32usize);
    for &i8_tile_cols in &[16usize, 32] {
        let plan = KernelPlan {
            i8_tile_cols,
            // Force the tiled kernel so the tile shape is what's timed.
            i8_tiled_min_rows: 4,
            ..KernelPlan::inline()
        };
        let exec = Exec::from_plan(plan);
        let t = bench(reps, || {
            w_q.matmul_bias_act_into_exec(&a, &[0.0; TUNE_N], |v| v, &mut out, &mut scratch, &exec)
                .expect("tune shapes agree");
        });
        if t < i8_best.0 {
            i8_best = (t, i8_tile_cols);
        }
    }
    let i8_tile_cols = i8_best.1;

    // Stage 2: axpy↔tiled crossover. Time both kernels at candidate batch
    // sizes and set the threshold to the smallest batch where the tiled
    // kernel wins (post-ReLU sparsity favours axpy's zero-skip below it).
    let mut tiled_min_rows = 4 * TUNE_M; // pessimistic: axpy everywhere
    for &rows in &[8usize, 16, 32] {
        let a_small = sparse_matrix(rows, TUNE_K, &mut rng);
        let mut o_small = Matrix::zeros(rows, TUNE_N);
        let axpy = Exec::from_plan(KernelPlan {
            tiled_min_rows: usize::MAX,
            ..KernelPlan::inline()
        });
        let tiled = Exec::from_plan(KernelPlan {
            tile_cols,
            panel_k,
            tiled_min_rows: 1,
            ..KernelPlan::inline()
        });
        let t_axpy = bench(reps, || {
            a_small.matmul_into_exec(&b, &mut o_small, &axpy).expect("tune shapes agree");
        });
        let t_tiled = bench(reps, || {
            a_small.matmul_into_exec(&b, &mut o_small, &tiled).expect("tune shapes agree");
        });
        if t_tiled < t_axpy {
            tiled_min_rows = rows;
            break;
        }
    }

    // Stage 3: thread count on a training-shaped workload (forward GEMM +
    // both backward GEMMs), with hysteresis towards fewer threads.
    let tuned = KernelPlan {
        tile_cols,
        panel_k,
        tiled_min_rows,
        i8_tile_cols,
        ..KernelPlan::inline()
    }
    .sanitized();
    let delta = dense_matrix(TUNE_M, TUNE_N, &mut rng);
    let w = dense_matrix(TUNE_K, TUNE_N, &mut rng);
    let mut dw = Matrix::zeros(TUNE_K, TUNE_N);
    let mut dx = Matrix::zeros(TUNE_M, TUNE_K);
    let max_threads = available_threads();
    let mut timings: Vec<(usize, f64)> = Vec::new();
    for &threads in &[1usize, 2, 4, 8, 16] {
        if threads > max_threads {
            break;
        }
        let exec = Exec::from_plan(tuned.with_threads(threads));
        let t = bench(reps, || {
            a.matmul_into_exec(&b, &mut out, &exec).expect("tune shapes agree");
            a.transpose_matmul_into_exec(&delta, &mut dw, &exec)
                .expect("tune shapes agree");
            delta
                .matmul_transpose_into_exec(&w, &mut dx, &exec)
                .expect("tune shapes agree");
        });
        timings.push((threads, t));
    }
    let best_time = timings.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    let threads = timings
        .iter()
        .find(|&&(_, t)| t <= best_time * 1.05)
        .map(|&(n, _)| n)
        .unwrap_or(1);

    tuned.with_threads(threads)
}

/// Minimum wall-time over `reps` repetitions of [`AUTOTUNE_ITERS`] calls.
fn bench(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, settle the branch predictor
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        for _ in 0..AUTOTUNE_ITERS {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Uniform matrix with ~50% exact zeros — the post-ReLU activation
/// profile the zero-skipping kernels are specialised for.
fn sparse_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.chance(0.5) {
                0.0
            } else {
                rng.uniform(-1.0, 1.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized to shape")
}

/// Dense uniform matrix (weights, deltas).
fn dense_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("sized to shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_plan_matches_pr1_constants() {
        let p = KernelPlan::inline();
        assert_eq!(p.threads, 1);
        assert_eq!(p.tile_cols, 32);
        assert_eq!(p.tiled_min_rows, crate::matrix::TILED_MIN_ROWS);
        assert_eq!(p.panel_k, 256);
    }

    #[test]
    fn sanitize_clamps_garbage() {
        let p = KernelPlan {
            version: 999,
            threads: 0,
            tile_cols: 7,
            tiled_min_rows: 0,
            panel_k: 1,
            par_min_rows: 0,
            i8_tile_cols: 999,
            i8_tiled_min_rows: 0,
        }
        .sanitized();
        assert_eq!(p.version, PLAN_VERSION);
        assert_eq!(p.threads, 1);
        assert_eq!(p.tile_cols, 16);
        assert!(p.tiled_min_rows >= 4);
        assert!(p.panel_k >= 32);
        assert!(p.par_min_rows >= 8);
        assert_eq!(p.i8_tile_cols, 32);
        assert!(p.i8_tiled_min_rows >= 4);
    }

    #[test]
    fn json_roundtrip_preserves_plan() {
        let p = KernelPlan::host_default().with_threads(3);
        let back = KernelPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut p = KernelPlan::inline();
        p.version = PLAN_VERSION + 1;
        let json = serde_json::to_string(&p).unwrap();
        assert!(matches!(
            KernelPlan::from_json(&json),
            Err(TensorError::Decode(_))
        ));
    }

    #[test]
    fn describe_mentions_threads_and_tile() {
        let d = KernelPlan::inline().describe();
        assert!(d.contains("threads=1"));
        assert!(d.contains("tile=4x32"));
        assert!(d.contains("i8_tile=4x32"));
    }
}
