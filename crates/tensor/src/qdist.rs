//! Per-row-scale int8 row store and coarse distance scans — the tensor
//! substrate of the sublinear NCM index (DESIGN.md §16).
//!
//! A [`QuantRowStore`] holds a pool of equal-length rows (class
//! prototypes and support exemplars) quantised with the same symmetric
//! per-row scheme `quant.rs` uses for activations: `scale = max_abs/127`
//! (1.0 for all-zero rows so dequantisation is exact for them), values
//! rounded and clamped to `[-127, 127]`. Alongside each row it caches
//! the integer squared norm `Σ qᵢ²`, so one i8×i8→i32 dot against a
//! quantised query reconstructs an approximate squared-L2 or cosine
//! distance with two multiplies — the *coarse* stage of the two-stage
//! search. The exact stage re-scores a handful of candidate rows in f32;
//! that happens in `magneto-core`, which owns the f32 vectors.
//!
//! The dot kernels dispatch per [`Backend`] like every other kernel
//! family (PR 6): integer accumulation is exact, so scalar, AVX2 and
//! NEON instances are bit-identical and need no accuracy gate.

use crate::kernels::{qdot4_dispatch, qdot_dispatch};
use crate::quant::MAX_QUANT_K;
use crate::tiling::Backend;
use crate::{Result, TensorError};

/// Quantise one f32 row with the per-row symmetric scheme, appending to
/// `out`; returns the row's scale. All-zero rows get scale 1.0.
pub fn quantize_row(row: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    out.extend(
        row.iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// A pool of int8 rows with one scale and one integer squared norm per
/// row. Row order is caller-managed (swap-remove compaction); the store
/// itself is position-addressed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantRowStore {
    dim: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
    sqnorms: Vec<i32>,
}

impl QuantRowStore {
    /// An empty store of `dim`-wide rows.
    ///
    /// # Errors
    /// [`TensorError::EmptyInput`] for `dim == 0`; [`TensorError::Decode`]
    /// when `dim` exceeds the i32-accumulator-safe bound.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(TensorError::EmptyInput("QuantRowStore::new"));
        }
        if dim > MAX_QUANT_K {
            return Err(TensorError::Decode(format!(
                "quantized row dim {dim} exceeds accumulator-safe bound {MAX_QUANT_K}"
            )));
        }
        Ok(Self {
            dim,
            data: Vec::new(),
            scales: Vec::new(),
            sqnorms: Vec::new(),
        })
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Resident bytes of the quantised pool.
    pub fn bytes(&self) -> usize {
        self.data.len() + 4 * self.scales.len() + 4 * self.sqnorms.len()
    }

    /// Quantise `row` and append it; returns the new row's position.
    /// `row.len()` must equal [`Self::dim`].
    pub fn push(&mut self, row: &[f32]) -> usize {
        debug_assert_eq!(row.len(), self.dim);
        let scale = quantize_row(row, &mut self.data);
        self.finish_push(scale)
    }

    /// Append an already-quantised row (e.g. decoded from a bundle) with
    /// its scale; the squared norm is recomputed. `q.len()` must equal
    /// [`Self::dim`].
    pub fn push_quantized(&mut self, q: &[i8], scale: f32) -> usize {
        debug_assert_eq!(q.len(), self.dim);
        self.data.extend_from_slice(q);
        self.finish_push(scale)
    }

    fn finish_push(&mut self, scale: f32) -> usize {
        let i = self.scales.len();
        let q = &self.data[i * self.dim..(i + 1) * self.dim];
        self.sqnorms.push(q.iter().map(|&v| {
            let v = i32::from(v);
            v * v
        }).sum());
        self.scales.push(scale);
        i
    }

    /// Re-quantise row `i` from new f32 contents in place.
    pub fn replace(&mut self, i: usize, row: &[f32]) {
        debug_assert_eq!(row.len(), self.dim);
        let mut tmp = Vec::with_capacity(self.dim);
        let scale = quantize_row(row, &mut tmp);
        self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tmp);
        self.scales[i] = scale;
        self.sqnorms[i] = tmp.iter().map(|&v| {
            let v = i32::from(v);
            v * v
        }).sum();
    }

    /// Remove row `i` by moving the last row into its slot (O(dim)).
    /// The caller owns any position bookkeeping this invalidates.
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.data.truncate(last * self.dim);
        self.scales.swap_remove(i);
        self.sqnorms.swap_remove(i);
    }

    /// The quantised contents of row `i`.
    pub fn row_q(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The scale of row `i`.
    pub fn scale(&self, i: usize) -> f32 {
        self.scales[i]
    }

    /// Dequantise row `i` into `out` (`out.len()` must equal the dim).
    pub fn dequantize_into(&self, i: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        let scale = self.scales[i];
        for (o, &q) in out.iter_mut().zip(self.row_q(i).iter()) {
            *o = f32::from(q) * scale;
        }
    }

    /// Coarse squared-L2 distances from a quantised query to every row,
    /// written into `out` (cleared and refilled):
    /// `‖q‖² − 2·sq·sᵢ·⟨q,rᵢ⟩ + sᵢ²·‖rᵢ‖²`, all norms exact in the
    /// quantised domain, clamped at 0 so downstream `sqrt` never sees a
    /// rounding-induced negative. Rows are scanned in blocks of four
    /// sharing the query loads.
    pub fn coarse_sq_l2(
        &self,
        backend: Backend,
        q: &[i8],
        q_scale: f32,
        q_sqnorm: i32,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(q.len(), self.dim);
        let qn2 = q_scale * q_scale * q_sqnorm as f32;
        self.scan(backend, q, out, |i, dot| {
            let s = self.scales[i];
            let d = qn2 - 2.0 * (q_scale * s) * dot as f32 + s * s * self.sqnorms[i] as f32;
            d.max(0.0)
        });
    }

    /// Coarse cosine distances from a quantised query to every row,
    /// written into `out` (cleared and refilled). Near-zero norms yield
    /// distance 1.0, mirroring [`crate::vector::cosine_similarity`]'s
    /// zero-vector convention; results are clamped to `[0, 2]`.
    pub fn coarse_cosine(
        &self,
        backend: Backend,
        q: &[i8],
        q_scale: f32,
        q_sqnorm: i32,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(q.len(), self.dim);
        let qn = q_scale * (q_sqnorm as f32).sqrt();
        self.scan(backend, q, out, |i, dot| {
            let rn = self.scales[i] * (self.sqnorms[i] as f32).sqrt();
            if qn < 1e-12 || rn < 1e-12 {
                1.0
            } else {
                let sim = (q_scale * self.scales[i] * dot as f32) / (qn * rn);
                (1.0 - sim).clamp(0.0, 2.0)
            }
        });
    }

    /// Shared scan driver: blocked qdot4 over full 4-row groups, qdot
    /// tail, `score(i, dot)` epilogue per row.
    fn scan(
        &self,
        backend: Backend,
        q: &[i8],
        out: &mut Vec<f32>,
        score: impl Fn(usize, i32) -> f32,
    ) {
        let n = self.len();
        out.clear();
        out.reserve(n);
        let d = self.dim;
        let mut i = 0;
        while i + 4 <= n {
            let at = i * d;
            let dots = qdot4_dispatch(
                backend,
                q,
                &self.data[at..at + d],
                &self.data[at + d..at + 2 * d],
                &self.data[at + 2 * d..at + 3 * d],
                &self.data[at + 3 * d..at + 4 * d],
            );
            for (r, &dot) in dots.iter().enumerate() {
                out.push(score(i + r, dot));
            }
            i += 4;
        }
        while i < n {
            let dot = qdot_dispatch(backend, q, self.row_q(i));
            out.push(score(i, dot));
            i += 1;
        }
    }
}

/// Quantise a query row for coarse scans: appends to `out` (not
/// cleared) and returns `(scale, integer squared norm)`.
pub fn quantize_query(row: &[f32], out: &mut Vec<i8>) -> (f32, i32) {
    let start = out.len();
    let scale = quantize_row(row, out);
    let sqnorm = out[start..]
        .iter()
        .map(|&v| {
            let v = i32::from(v);
            v * v
        })
        .sum();
    (scale, sqnorm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use crate::vector;

    fn random_row(rng: &mut SeededRng, dim: usize, span: f32) -> Vec<f32> {
        (0..dim).map(|_| rng.uniform(-span, span)).collect()
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let mut rng = SeededRng::new(11);
        for dim in [1usize, 7, 8, 17, 64] {
            let row = random_row(&mut rng, dim, 4.0);
            let mut store = QuantRowStore::new(dim).unwrap();
            store.push(&row);
            let mut back = vec![0.0f32; dim];
            store.dequantize_into(0, &mut back);
            let tol = store.scale(0) * 0.5 + 1e-6;
            for (a, b) in row.iter().zip(back.iter()) {
                assert!((a - b).abs() <= tol, "dim {dim}: {a} vs {b} (tol {tol})");
            }
        }
    }

    #[test]
    fn zero_row_dequantizes_exactly() {
        let mut store = QuantRowStore::new(5).unwrap();
        store.push(&[0.0; 5]);
        assert_eq!(store.scale(0), 1.0);
        let mut back = vec![9.0f32; 5];
        store.dequantize_into(0, &mut back);
        assert_eq!(back, vec![0.0; 5]);
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(QuantRowStore::new(0).is_err());
        assert!(QuantRowStore::new(MAX_QUANT_K + 1).is_err());
    }

    #[test]
    fn push_quantized_matches_push() {
        let mut rng = SeededRng::new(12);
        let row = random_row(&mut rng, 33, 2.0);
        let mut a = QuantRowStore::new(33).unwrap();
        a.push(&row);
        let mut b = QuantRowStore::new(33).unwrap();
        b.push_quantized(a.row_q(0), a.scale(0));
        assert_eq!(a, b);
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut store = QuantRowStore::new(3).unwrap();
        store.push(&[1.0, 0.0, 0.0]);
        store.push(&[0.0, 1.0, 0.0]);
        store.push(&[0.0, 0.0, 1.0]);
        store.swap_remove(0);
        assert_eq!(store.len(), 2);
        let mut row = vec![0.0f32; 3];
        store.dequantize_into(0, &mut row);
        assert_eq!(row, vec![0.0, 0.0, 1.0]);
        store.dequantize_into(1, &mut row);
        assert_eq!(row, vec![0.0, 1.0, 0.0]);
        // Removing the last row needs no move.
        store.swap_remove(1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn replace_requantizes_in_place() {
        let mut store = QuantRowStore::new(4).unwrap();
        store.push(&[1.0, 2.0, 3.0, 4.0]);
        store.push(&[5.0, 6.0, 7.0, 8.0]);
        store.replace(0, &[-4.0, -3.0, -2.0, -1.0]);
        let mut fresh = QuantRowStore::new(4).unwrap();
        fresh.push(&[-4.0, -3.0, -2.0, -1.0]);
        assert_eq!(store.row_q(0), fresh.row_q(0));
        assert_eq!(store.scale(0), fresh.scale(0));
        let mut row = vec![0.0f32; 4];
        store.dequantize_into(1, &mut row);
        assert!((row[0] - 5.0).abs() < 0.05);
    }

    #[test]
    fn coarse_sq_l2_tracks_exact_distance() {
        let mut rng = SeededRng::new(13);
        for dim in [1usize, 2, 8, 31, 64, 80] {
            let mut store = QuantRowStore::new(dim).unwrap();
            let rows: Vec<Vec<f32>> = (0..13).map(|_| random_row(&mut rng, dim, 3.0)).collect();
            for r in &rows {
                store.push(r);
            }
            let query = random_row(&mut rng, dim, 3.0);
            let mut q = Vec::new();
            let (qs, qn) = quantize_query(&query, &mut q);
            let mut coarse = Vec::new();
            store.coarse_sq_l2(Backend::Scalar, &q, qs, qn, &mut coarse);
            assert_eq!(coarse.len(), rows.len());
            for (row, &c) in rows.iter().zip(coarse.iter()) {
                let exact = vector::squared_euclidean(&query, row);
                // Per-element quantisation error is ≤ scale/2; the
                // squared-distance error scales with dim and magnitude.
                let tol = 0.05 * dim as f32 + 0.05 * exact + 1e-3;
                assert!((c - exact).abs() <= tol, "dim {dim}: {c} vs {exact}");
                assert!(c >= 0.0);
            }
        }
    }

    #[test]
    fn coarse_cosine_tracks_exact_distance_and_handles_zero() {
        let mut rng = SeededRng::new(14);
        let dim = 48;
        let mut store = QuantRowStore::new(dim).unwrap();
        let rows: Vec<Vec<f32>> = (0..9).map(|_| random_row(&mut rng, dim, 2.0)).collect();
        for r in &rows {
            store.push(r);
        }
        store.push(&vec![0.0; dim]);
        let query = random_row(&mut rng, dim, 2.0);
        let mut q = Vec::new();
        let (qs, qn) = quantize_query(&query, &mut q);
        let mut coarse = Vec::new();
        store.coarse_cosine(Backend::Scalar, &q, qs, qn, &mut coarse);
        for (row, &c) in rows.iter().zip(coarse.iter()) {
            let exact = vector::cosine_distance(&query, row);
            assert!((c - exact).abs() <= 0.05, "{c} vs {exact}");
            assert!((0.0..=2.0).contains(&c));
        }
        // The all-zero row follows the zero-vector convention.
        assert_eq!(coarse[rows.len()], 1.0);
    }

    #[test]
    fn qdot4_matches_four_qdots_over_ragged_dims() {
        let mut rng = SeededRng::new(15);
        for dim in [1usize, 3, 7, 8, 9, 15, 16, 17, 33, 64, 100] {
            let mut store = QuantRowStore::new(dim).unwrap();
            for _ in 0..4 {
                store.push(&random_row(&mut rng, dim, 5.0));
            }
            let query = random_row(&mut rng, dim, 5.0);
            let mut q = Vec::new();
            quantize_query(&query, &mut q);
            let block = qdot4_dispatch(
                Backend::Scalar,
                &q,
                store.row_q(0),
                store.row_q(1),
                store.row_q(2),
                store.row_q(3),
            );
            for r in 0..4 {
                assert_eq!(block[r], qdot_dispatch(Backend::Scalar, &q, store.row_q(r)));
            }
        }
    }

    #[test]
    fn simd_qdot_bit_identical_to_scalar() {
        let Some(simd) = Backend::detect_simd() else {
            return; // scalar-only host: nothing to compare
        };
        let mut rng = SeededRng::new(16);
        for dim in [1usize, 7, 8, 15, 16, 17, 31, 32, 33, 64, 80, 127, 128] {
            let mut store = QuantRowStore::new(dim).unwrap();
            for _ in 0..5 {
                store.push(&random_row(&mut rng, dim, 6.0));
            }
            let query = random_row(&mut rng, dim, 6.0);
            let mut q = Vec::new();
            let (qs, qn) = quantize_query(&query, &mut q);
            for r in 0..5 {
                assert_eq!(
                    qdot_dispatch(Backend::Scalar, &q, store.row_q(r)),
                    qdot_dispatch(simd, &q, store.row_q(r)),
                    "qdot dim {dim} row {r}"
                );
            }
            let s4 = qdot4_dispatch(
                Backend::Scalar,
                &q,
                store.row_q(0),
                store.row_q(1),
                store.row_q(2),
                store.row_q(3),
            );
            let v4 = qdot4_dispatch(
                simd,
                &q,
                store.row_q(0),
                store.row_q(1),
                store.row_q(2),
                store.row_q(3),
            );
            assert_eq!(s4, v4, "qdot4 dim {dim}");
            // The coarse scans (integer dots + per-row f32 epilogue in
            // scan order) must also match bitwise across backends.
            let mut a = Vec::new();
            let mut b = Vec::new();
            store.coarse_sq_l2(Backend::Scalar, &q, qs, qn, &mut a);
            store.coarse_sq_l2(simd, &q, qs, qn, &mut b);
            assert_eq!(a, b, "coarse_sq_l2 dim {dim}");
            store.coarse_cosine(Backend::Scalar, &q, qs, qn, &mut a);
            store.coarse_cosine(simd, &q, qs, qn, &mut b);
            assert_eq!(a, b, "coarse_cosine dim {dim}");
        }
    }
}
