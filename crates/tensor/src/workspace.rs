//! Reusable scratch memory for the batched execution path.
//!
//! Every hot loop in the workspace (training steps, batched embedding,
//! streaming inference) needs short-lived matrices whose shapes repeat
//! from iteration to iteration. A [`Workspace`] is a small pool of
//! `Vec<f32>` allocations those loops draw from: [`Workspace::take`]
//! hands out a zeroed matrix backed by a recycled buffer, and
//! [`Workspace::give`] returns the buffer to the pool when the caller is
//! done. After the first iteration warms the pool, the steady state
//! performs no heap allocation at all.
//!
//! Ownership rules (see DESIGN.md):
//!
//! * a `Workspace` is owned by exactly one driver loop (a trainer, a
//!   streaming session, a batch embedder) — it is never shared;
//! * callees receive `&mut Workspace` and must `give` back everything
//!   they `take` before returning, so the pool's size reaches a fixed
//!   point after one iteration;
//! * buffers carry no shape memory — `take(rows, cols)` always returns a
//!   fully zeroed matrix of exactly the requested shape.

use crate::matrix::Matrix;
use crate::pool::Exec;
use crate::quant::QuantScratch;
use crate::tiling::Backend;

/// A pool of recycled `f32` buffers backing temporary matrices, plus
/// the [`Exec`] compute context the owning driver loop's kernels run
/// on. Riding the execution context here means every batched hot path
/// that already threads a `Workspace` (training steps, batch embedding,
/// streaming inference) picks up the autotuned [`crate::plan::KernelPlan`]
/// and the shared compute pool without any signature changes.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    exec: Exec,
    quant: QuantScratch,
}

impl Workspace {
    /// An empty workspace; buffers are allocated lazily on first use and
    /// kernels run on the process-wide [`Exec::global`] context.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// An empty workspace whose kernels run on `exec` — how benchmarks
    /// and property tests pin a specific pool size or plan.
    pub fn with_exec(exec: Exec) -> Self {
        Workspace {
            pool: Vec::new(),
            exec,
            quant: QuantScratch::new(),
        }
    }

    /// The compute context this workspace's kernels run on.
    pub fn exec(&self) -> &Exec {
        &self.exec
    }

    /// Replace the compute context (e.g. after installing an autotuned
    /// plan mid-session).
    pub fn set_exec(&mut self, exec: Exec) {
        self.exec = exec;
    }

    /// The micro-kernel backend this workspace's kernels dispatch to
    /// (surfaced for banners and telemetry; see [`Exec::backend`]).
    pub fn backend(&self) -> Backend {
        self.exec.backend()
    }

    /// Borrow a zeroed `rows x cols` matrix, reusing a pooled allocation
    /// when one is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf).expect("workspace buffer sized to shape")
    }

    /// Return a matrix's backing buffer to the pool for reuse.
    pub fn give(&mut self, m: Matrix) {
        self.pool.push(m.into_vec());
    }

    /// Number of idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Scratch buffers for the int8 kernels' dynamic activation
    /// quantisation (see [`crate::quant`]). Reused across calls like the
    /// f32 pool, so the quantised forward path is allocation-free once
    /// warm.
    pub fn quant_scratch(&mut self) -> &mut QuantScratch {
        &mut self.quant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_matrix_of_requested_shape() {
        let mut ws = Workspace::new();
        let m = ws.take(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn give_then_take_reuses_the_allocation() {
        let mut ws = Workspace::new();
        let mut m = ws.take(8, 8);
        m.set(0, 0, 42.0);
        let ptr = m.as_slice().as_ptr();
        let cap = m.as_slice().len();
        ws.give(m);
        assert_eq!(ws.pooled(), 1);
        // Same-or-smaller shape must reuse the pooled buffer and be
        // fully re-zeroed despite the earlier write.
        let again = ws.take(4, 4);
        assert_eq!(ws.pooled(), 0);
        assert!(again.as_slice().iter().all(|&v| v == 0.0));
        assert!(cap >= again.as_slice().len());
        assert_eq!(again.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn pool_reaches_fixed_point() {
        let mut ws = Workspace::new();
        for _ in 0..10 {
            let a = ws.take(2, 3);
            let b = ws.take(3, 2);
            ws.give(a);
            ws.give(b);
        }
        assert_eq!(ws.pooled(), 2);
    }
}
