//! # magneto-tensor
//!
//! Dense linear-algebra substrate for the MAGNETO Edge-AI platform.
//!
//! The MAGNETO paper (EDBT 2024) implements its models in PyTorch; the
//! offline Rust crate ecosystem available to this reproduction has no
//! mature deep-learning stack, so everything the neural network and the
//! classifiers need is built here from scratch:
//!
//! * [`Matrix`] — row-major `f32` dense matrix with the handful of BLAS-like
//!   operations a fully-connected network needs (matmul, transpose,
//!   broadcast row ops, element-wise maps).
//! * [`vector`] — distance and similarity kernels (Euclidean, cosine,
//!   Manhattan) used by the Nearest-Class-Mean classifier.
//! * [`init`] — Xavier/He/uniform weight initialisers.
//! * [`stats`] — scalar statistics (mean, variance, skewness, kurtosis,
//!   percentiles, correlation) shared by the DSP feature extractor.
//! * [`rng`] — a small deterministic RNG facade so every experiment is
//!   reproducible from a single seed.
//! * [`serialize`] — compact little-endian binary encoding used for the
//!   Cloud → Edge bundle (the paper's < 5 MB footprint claim is measured
//!   against these encodings).
//! * [`workspace`] — a scratch-buffer pool so the batched hot path
//!   (training steps, batch embedding, streaming inference) reuses
//!   allocations instead of re-allocating every call.
//! * [`pool`] — a deterministic fixed-partition compute pool: GEMMs are
//!   split over output row panels across cores with results
//!   bit-identical to the sequential path at any thread count.
//! * [`plan`] — the autotuned [`KernelPlan`] (tile shape, dispatch
//!   thresholds, thread count) that steers every kernel, cached on
//!   device next to the model bundle.
//! * [`quant`] — the int8 execution seam: [`QuantMatrix`] weights with
//!   per-output-channel scales, dynamic per-row activation quantisation,
//!   and an i8×i8→i32 fused GEMM that is bit-identical across pool
//!   sizes (integer accumulation + a per-element f32 epilogue).
//!
//! Design notes: matrices are plain `Vec<f32>` in row-major order. The
//! backbone network in the paper is a 5-layer MLP (80→1024→512→128→64→128),
//! small enough that a cache-blocked scalar matmul with manual loop
//! ordering (i-k-j, k-panelled) is more than fast enough on laptop-class
//! hardware, and far simpler to audit than SIMD intrinsics. Hot-path
//! kernels come in `_into` form (`matmul_into`, `matmul_transpose_into`,
//! `transpose_matmul_into`) writing into caller-owned outputs; the
//! allocating variants are thin shims over them.

// Every `unsafe` operation must sit in its own explicit `unsafe` block
// (with a `// SAFETY:` comment — `make lint-unsafe` greps for it), even
// inside `unsafe fn`s like the `#[target_feature]` SIMD kernels.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod error;
pub mod init;
pub(crate) mod kernels;
pub mod matrix;
pub mod plan;
pub mod pool;
pub mod qdist;
pub mod quant;
pub mod rng;
pub mod serialize;
pub mod stats;
pub mod tiling;
pub mod vector;
pub mod workspace;

pub use error::TensorError;
pub use matrix::Matrix;
pub use plan::KernelPlan;
pub use pool::{install_global, ComputePool, Exec};
pub use qdist::QuantRowStore;
pub use quant::{Precision, QuantMatrix, QuantScratch};
pub use rng::SeededRng;
pub use tiling::{Backend, TilingScheme};
pub use workspace::Workspace;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
