//! Portable scalar micro-kernels — the always-available [`Backend::Scalar`]
//! instances and the bit-identity reference for every other backend.
//!
//! These bodies are the PR-1 kernels moved behind the
//! [`TilingScheme`](crate::tiling::TilingScheme) seam *unchanged*: the
//! float operation sequence per output element is exactly what
//! `matrix.rs`/`quant.rs` executed before the refactor (the tiled kernel
//! now reads the packed stage buffer instead of the strided rhs, which
//! changes addresses but not values or accumulation order), so the
//! existing property harness — tiled ≡ axpy, blocked ≡ naive oracle,
//! bit-identical across pool sizes — passes on them unchanged.
//!
//! The loops are written lane-parallel (independent accumulator chains,
//! fixed-width inner loops) so the compiler auto-vectorises them under
//! `-C target-cpu=native`; the explicit-SIMD backends exist to make that
//! performance guaranteed rather than optimizer-dependent.

use super::fma;
use crate::matrix::TILE_ROWS;
use crate::quant::QTILE_ROWS;

/// Accumulator lanes for the dot-product kernels — wide enough for one
/// 256-bit vector register of `f32`.
pub(crate) const LANES: usize = 8;

/// Broadcast-FMA over one k-panel for a 4-row × `TC`-column register
/// tile. `stage` is the packed `(k1 - k0) × TC` rhs strip; accumulators
/// arrive loaded from the output panel and leave ready to store back,
/// continuing the same ascending-`k` accumulation across panels.
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
pub(crate) fn tile_fma<const TC: usize>(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    k0: usize,
    k1: usize,
    stage: &[f32],
    acc: &mut [[f32; TC]; TILE_ROWS],
) {
    for k in k0..k1 {
        let at = (k - k0) * TC;
        let b: &[f32; TC] = stage[at..at + TC].try_into().unwrap();
        let x0 = a0[k];
        let x1 = a1[k];
        let x2 = a2[k];
        let x3 = a3[k];
        for l in 0..TC {
            let bl = b[l];
            acc[0][l] = fma(x0, bl, acc[0][l]);
            acc[1][l] = fma(x1, bl, acc[1][l]);
            acc[2][l] = fma(x2, bl, acc[2][l]);
            acc[3][l] = fma(x3, bl, acc[3][l]);
        }
    }
}

/// Row remainder of the tiled kernel: one output row over a `TC`-wide
/// strip of the packed stage, zero-skip restored (post-ReLU rows are
/// ~50% zeros).
pub(crate) fn row_tail_fma<const TC: usize>(
    a: &[f32],
    k0: usize,
    k1: usize,
    stage: &[f32],
    acc: &mut [f32; TC],
) {
    for (k, &x) in a[k0..k1].iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        let at = k * TC;
        let b: &[f32; TC] = stage[at..at + TC].try_into().unwrap();
        for l in 0..TC {
            acc[l] = fma(x, b[l], acc[l]);
        }
    }
}

/// `out += x * b`, the streaming row update of the axpy kernels (the
/// per-sample forward, the gradient scatter, and the tiled kernel's
/// column tail). Zero-skip is the *caller's* job so every call site
/// keeps its original skip decision.
pub(crate) fn axpy(x: f32, b: &[f32], out: &mut [f32]) {
    for (o, &bv) in out.iter_mut().zip(b.iter()) {
        *o = fma(x, bv, *o);
    }
}

/// Lane-parallel dot product: eight independent accumulator chains the
/// compiler turns into one vector FMA stream, plus a scalar tail.
pub(crate) fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let k = a.len();
    let chunks = k / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let ac = &a[c * LANES..(c + 1) * LANES];
        let bc = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] = fma(ac[l], bc[l], acc[l]);
        }
    }
    let mut s: f32 = acc.iter().sum();
    for t in chunks * LANES..k {
        s = fma(a[t], b[t], s);
    }
    s
}

/// 2×4 register tile of dot products: each loaded `a` chunk feeds four
/// outputs and each `b` chunk feeds two, so the kernel performs eight
/// FMAs per six vector loads with no stores inside the loop.
pub(crate) fn tile_2x4(
    a0: &[f32],
    a1: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [[f32; 4]; 2] {
    let k = a0.len();
    let chunks = k / LANES;
    let mut acc = [[[0.0f32; LANES]; 4]; 2];
    for c in 0..chunks {
        let base = c * LANES;
        let a0c = &a0[base..base + LANES];
        let a1c = &a1[base..base + LANES];
        let b0c = &b0[base..base + LANES];
        let b1c = &b1[base..base + LANES];
        let b2c = &b2[base..base + LANES];
        let b3c = &b3[base..base + LANES];
        for l in 0..LANES {
            let x0 = a0c[l];
            let x1 = a1c[l];
            acc[0][0][l] = fma(x0, b0c[l], acc[0][0][l]);
            acc[0][1][l] = fma(x0, b1c[l], acc[0][1][l]);
            acc[0][2][l] = fma(x0, b2c[l], acc[0][2][l]);
            acc[0][3][l] = fma(x0, b3c[l], acc[0][3][l]);
            acc[1][0][l] = fma(x1, b0c[l], acc[1][0][l]);
            acc[1][1][l] = fma(x1, b1c[l], acc[1][1][l]);
            acc[1][2][l] = fma(x1, b2c[l], acc[1][2][l]);
            acc[1][3][l] = fma(x1, b3c[l], acc[1][3][l]);
        }
    }
    let mut out = [[0.0f32; 4]; 2];
    for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
        for (lanes, o) in acc_row.iter().zip(out_row.iter_mut()) {
            *o = lanes.iter().sum();
        }
    }
    for t in chunks * LANES..k {
        let x0 = a0[t];
        let x1 = a1[t];
        out[0][0] = fma(x0, b0[t], out[0][0]);
        out[0][1] = fma(x0, b1[t], out[0][1]);
        out[0][2] = fma(x0, b2[t], out[0][2]);
        out[0][3] = fma(x0, b3[t], out[0][3]);
        out[1][0] = fma(x1, b0[t], out[1][0]);
        out[1][1] = fma(x1, b1[t], out[1][1]);
        out[1][2] = fma(x1, b2[t], out[1][2]);
        out[1][3] = fma(x1, b3[t], out[1][3]);
    }
    out
}

/// i32 accumulators for a 4-row × `TC`-column int8 tile.
pub(crate) fn qtile<const TC: usize>(
    x_q: &[i8],
    k: usize,
    w: &[i8],
    n: usize,
    i0: usize,
    j0: usize,
    acc: &mut [[i32; TC]; QTILE_ROWS],
) {
    for a in acc.iter_mut() {
        *a = [0; TC];
    }
    let x0 = &x_q[i0 * k..(i0 + 1) * k];
    let x1 = &x_q[(i0 + 1) * k..(i0 + 2) * k];
    let x2 = &x_q[(i0 + 2) * k..(i0 + 3) * k];
    let x3 = &x_q[(i0 + 3) * k..(i0 + 4) * k];
    for kk in 0..k {
        let xv0 = i32::from(x0[kk]);
        let xv1 = i32::from(x1[kk]);
        let xv2 = i32::from(x2[kk]);
        let xv3 = i32::from(x3[kk]);
        if (xv0 | xv1 | xv2 | xv3) == 0 {
            // All four rows hit a post-ReLU zero; integer adds of zero
            // are exact no-ops, so skipping cannot change results.
            continue;
        }
        let w_row = &w[kk * n + j0..kk * n + j0 + TC];
        for (t, &wq) in w_row.iter().enumerate() {
            let wv = i32::from(wq);
            acc[0][t] += xv0 * wv;
            acc[1][t] += xv1 * wv;
            acc[2][t] += xv2 * wv;
            acc[3][t] += xv3 * wv;
        }
    }
}

/// i8×i8→i32 dot product of two packed rows — the coarse-distance
/// primitive of the quantized NCM index. Exact integer accumulation, so
/// every backend instance is bit-identical by construction.
pub(crate) fn qdot(a: &[i8], b: &[i8]) -> i32 {
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        s += i32::from(x) * i32::from(y);
    }
    s
}

/// Four row dot products against one shared query: the register-tiled
/// form of [`qdot`] (the SIMD instances amortise the query loads across
/// the four rows; here it is just four calls).
pub(crate) fn qdot4(q: &[i8], r0: &[i8], r1: &[i8], r2: &[i8], r3: &[i8]) -> [i32; 4] {
    [qdot(q, r0), qdot(q, r1), qdot(q, r2), qdot(q, r3)]
}

/// i32 accumulators for one int8 row over a `jw`-wide column strip.
pub(crate) fn qrow<const TC: usize>(
    x_row: &[i8],
    w: &[i8],
    n: usize,
    j0: usize,
    jw: usize,
    acc: &mut [i32; TC],
) {
    *acc = [0; TC];
    for (kk, &xq) in x_row.iter().enumerate() {
        let xv = i32::from(xq);
        if xv == 0 {
            continue;
        }
        let w_row = &w[kk * n + j0..kk * n + j0 + jw];
        for (t, &wq) in w_row.iter().enumerate() {
            acc[t] += xv * i32::from(wq);
        }
    }
}
