//! AVX2 + FMA micro-kernels (`x86_64`, runtime-detected).
//!
//! Every function here mirrors its scalar sibling's *loop and
//! accumulation structure*: each output element is one fused
//! multiply-add chain in ascending `k`, and horizontal reductions store
//! the vector lanes to an array and sum them in the same sequential
//! order as the scalar lane sums. On an FMA-contracted build (the
//! workspace passes `-C target-cpu=native`) that typically makes the
//! f32 results bit-equal to scalar, but the contract is only the
//! DESIGN.md §14 accuracy-agreement gate — never byte equality. The
//! int8 kernels accumulate in exact integer arithmetic and *are*
//! bit-identical to scalar.
//!
//! Callers must only dispatch here after
//! [`Backend::Avx2.is_available()`](crate::tiling::Backend::is_available)
//! returned true — the `#[target_feature]` functions are `unsafe`
//! precisely because executing them on a non-AVX2 host is undefined.

use std::arch::x86_64::*;

use super::fma;
use crate::matrix::TILE_ROWS;
use crate::quant::QTILE_ROWS;

/// f32 lanes per 256-bit vector.
const VL: usize = 8;

/// AVX2 instance of [`super::scalar::tile_fma`]: broadcast-FMA over one
/// k-panel for a 4-row × `TC`-column tile, reading the packed stage.
///
/// # Safety
/// Requires AVX2 + FMA at runtime. `TC` must be a multiple of 8, and
/// `stage` must hold at least `(k1 - k0) * TC` elements.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
pub(crate) unsafe fn tile_fma<const TC: usize>(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    k0: usize,
    k1: usize,
    stage: &[f32],
    acc: &mut [[f32; TC]; TILE_ROWS],
) {
    debug_assert!(TC.is_multiple_of(VL) && TC / VL <= 4);
    debug_assert!(stage.len() >= (k1 - k0) * TC);
    let nv = TC / VL;
    let mut vacc = [[_mm256_setzero_ps(); 4]; TILE_ROWS];
    for (row, vrow) in acc.iter().zip(vacc.iter_mut()) {
        for (v, lane) in vrow.iter_mut().take(nv).enumerate() {
            // SAFETY: `v * VL + VL <= TC`, in bounds of the `[f32; TC]` row.
            *lane = unsafe { _mm256_loadu_ps(row.as_ptr().add(v * VL)) };
        }
    }
    for k in k0..k1 {
        let x = [
            _mm256_set1_ps(a0[k]),
            _mm256_set1_ps(a1[k]),
            _mm256_set1_ps(a2[k]),
            _mm256_set1_ps(a3[k]),
        ];
        let at = (k - k0) * TC;
        for v in 0..nv {
            // SAFETY: `at + v * VL + VL <= (k1 - k0) * TC <= stage.len()`.
            let b = unsafe { _mm256_loadu_ps(stage.as_ptr().add(at + v * VL)) };
            for (xr, vrow) in x.iter().zip(vacc.iter_mut()) {
                vrow[v] = _mm256_fmadd_ps(*xr, b, vrow[v]);
            }
        }
    }
    for (row, vrow) in acc.iter_mut().zip(vacc.iter()) {
        for (v, lane) in vrow.iter().take(nv).enumerate() {
            // SAFETY: same bounds as the load above.
            unsafe { _mm256_storeu_ps(row.as_mut_ptr().add(v * VL), *lane) };
        }
    }
}

/// AVX2 instance of [`super::scalar::axpy`]: `out += x * b` with a
/// scalar tail. The caller decides the zero-skip.
///
/// # Safety
/// Requires AVX2 + FMA at runtime. `b.len()` must be ≥ `out.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn axpy(x: f32, b: &[f32], out: &mut [f32]) {
    let n = out.len();
    debug_assert!(b.len() >= n);
    let xv = _mm256_set1_ps(x);
    let mut i = 0;
    while i + VL <= n {
        // SAFETY: `i + VL <= n <= b.len()`, so both 8-lane windows are
        // in bounds; `out` is exclusively borrowed.
        unsafe {
            let bv = _mm256_loadu_ps(b.as_ptr().add(i));
            let ov = _mm256_loadu_ps(out.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_fmadd_ps(xv, bv, ov));
        }
        i += VL;
    }
    while i < n {
        out[i] = fma(x, b[i], out[i]);
        i += 1;
    }
}

/// Sum the lanes of `v` sequentially, mirroring the scalar kernels'
/// `acc.iter().sum()` reduction order.
#[target_feature(enable = "avx2")]
unsafe fn hsum_ordered(v: __m256) -> f32 {
    let mut lanes = [0.0f32; VL];
    // SAFETY: `lanes` is exactly one 256-bit vector wide.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), v) };
    lanes.iter().sum()
}

/// AVX2 instance of [`super::scalar::dot_lanes`].
///
/// # Safety
/// Requires AVX2 + FMA at runtime. `b.len()` must be ≥ `a.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let k = a.len();
    debug_assert!(b.len() >= k);
    let chunks = k / VL;
    let mut acc = _mm256_setzero_ps();
    for c in 0..chunks {
        // SAFETY: `c * VL + VL <= k` for both operands.
        unsafe {
            let av = _mm256_loadu_ps(a.as_ptr().add(c * VL));
            let bv = _mm256_loadu_ps(b.as_ptr().add(c * VL));
            acc = _mm256_fmadd_ps(av, bv, acc);
        }
    }
    // SAFETY: AVX2 is enabled for this function.
    let mut s = unsafe { hsum_ordered(acc) };
    for t in chunks * VL..k {
        s = fma(a[t], b[t], s);
    }
    s
}

/// AVX2 instance of [`super::scalar::tile_2x4`]: eight vector
/// accumulators, six loads and eight FMAs per 8-deep chunk.
///
/// # Safety
/// Requires AVX2 + FMA at runtime. All six slices must be at least
/// `a0.len()` long.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn tile_2x4(
    a0: &[f32],
    a1: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [[f32; 4]; 2] {
    let k = a0.len();
    debug_assert!(
        a1.len() >= k && b0.len() >= k && b1.len() >= k && b2.len() >= k && b3.len() >= k
    );
    let chunks = k / VL;
    let mut acc = [[_mm256_setzero_ps(); 4]; 2];
    for c in 0..chunks {
        let base = c * VL;
        // SAFETY: `base + VL <= k`, in bounds of every operand slice.
        unsafe {
            let x0 = _mm256_loadu_ps(a0.as_ptr().add(base));
            let x1 = _mm256_loadu_ps(a1.as_ptr().add(base));
            let bv = [
                _mm256_loadu_ps(b0.as_ptr().add(base)),
                _mm256_loadu_ps(b1.as_ptr().add(base)),
                _mm256_loadu_ps(b2.as_ptr().add(base)),
                _mm256_loadu_ps(b3.as_ptr().add(base)),
            ];
            for (j, &b) in bv.iter().enumerate() {
                acc[0][j] = _mm256_fmadd_ps(x0, b, acc[0][j]);
                acc[1][j] = _mm256_fmadd_ps(x1, b, acc[1][j]);
            }
        }
    }
    let mut out = [[0.0f32; 4]; 2];
    for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
        for (v, o) in acc_row.iter().zip(out_row.iter_mut()) {
            // SAFETY: AVX2 is enabled for this function.
            *o = unsafe { hsum_ordered(*v) };
        }
    }
    for t in chunks * VL..k {
        let x0 = a0[t];
        let x1 = a1[t];
        out[0][0] = fma(x0, b0[t], out[0][0]);
        out[0][1] = fma(x0, b1[t], out[0][1]);
        out[0][2] = fma(x0, b2[t], out[0][2]);
        out[0][3] = fma(x0, b3[t], out[0][3]);
        out[1][0] = fma(x1, b0[t], out[1][0]);
        out[1][1] = fma(x1, b1[t], out[1][1]);
        out[1][2] = fma(x1, b2[t], out[1][2]);
        out[1][3] = fma(x1, b3[t], out[1][3]);
    }
    out
}

/// Widen 8 int8 weights at `p` to 8 lanes of i32.
///
/// # Safety
/// Requires AVX2 at runtime; `p` must be valid for an 8-byte read.
#[target_feature(enable = "avx2")]
unsafe fn load8_i8_as_i32(p: *const i8) -> __m256i {
    // SAFETY: caller guarantees 8 readable bytes at `p`; `loadl` reads
    // exactly the low 64 bits.
    let bytes = unsafe { _mm_loadl_epi64(p.cast()) };
    _mm256_cvtepi8_epi32(bytes)
}

/// AVX2 instance of [`super::scalar::qtile`]: i8×i8→i32 for a 4-row ×
/// `TC`-column tile. Integer accumulation is exactly associative, so
/// this is bit-identical to the scalar kernel by construction.
///
/// Column strips are processed one vector (8 outputs) at a time with
/// four row accumulators live — 4 × (`TC`/8) vector registers would
/// spill at `TC = 32`, re-reading the L1-resident x rows per strip is
/// cheaper.
///
/// # Safety
/// Requires AVX2 at runtime. `TC` must be a multiple of 8,
/// `j0 + TC <= n`, and the slices must cover a full `4 × k` (resp.
/// `k × n`) block starting at `i0` (resp. row 0).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn qtile<const TC: usize>(
    x_q: &[i8],
    k: usize,
    w: &[i8],
    n: usize,
    i0: usize,
    j0: usize,
    acc: &mut [[i32; TC]; QTILE_ROWS],
) {
    debug_assert!(TC.is_multiple_of(VL));
    debug_assert!(j0 + TC <= n && w.len() >= k * n && x_q.len() >= (i0 + QTILE_ROWS) * k);
    let x0 = &x_q[i0 * k..(i0 + 1) * k];
    let x1 = &x_q[(i0 + 1) * k..(i0 + 2) * k];
    let x2 = &x_q[(i0 + 2) * k..(i0 + 3) * k];
    let x3 = &x_q[(i0 + 3) * k..(i0 + 4) * k];
    for v in 0..TC / VL {
        let mut vacc = [_mm256_setzero_si256(); QTILE_ROWS];
        for kk in 0..k {
            let xv0 = i32::from(x0[kk]);
            let xv1 = i32::from(x1[kk]);
            let xv2 = i32::from(x2[kk]);
            let xv3 = i32::from(x3[kk]);
            if (xv0 | xv1 | xv2 | xv3) == 0 {
                // Same post-ReLU zero skip as scalar: adding exact
                // integer zeros is a no-op either way.
                continue;
            }
            // SAFETY: `kk * n + j0 + v * VL + VL <= kk * n + n <= k * n`,
            // so 8 bytes are readable.
            let wv = unsafe { load8_i8_as_i32(w.as_ptr().add(kk * n + j0 + v * VL)) };
            vacc[0] = _mm256_add_epi32(vacc[0], _mm256_mullo_epi32(_mm256_set1_epi32(xv0), wv));
            vacc[1] = _mm256_add_epi32(vacc[1], _mm256_mullo_epi32(_mm256_set1_epi32(xv1), wv));
            vacc[2] = _mm256_add_epi32(vacc[2], _mm256_mullo_epi32(_mm256_set1_epi32(xv2), wv));
            vacc[3] = _mm256_add_epi32(vacc[3], _mm256_mullo_epi32(_mm256_set1_epi32(xv3), wv));
        }
        for (row, vr) in acc.iter_mut().zip(vacc.iter()) {
            // SAFETY: `v * VL + VL <= TC`, in bounds of the `[i32; TC]` row.
            unsafe { _mm256_storeu_si256(row.as_mut_ptr().add(v * VL).cast(), *vr) };
        }
    }
}

/// Sum the 8 i32 lanes of `v` (exact: integer addition is associative).
///
/// # Safety
/// Requires AVX2 at runtime.
#[target_feature(enable = "avx2")]
unsafe fn hsum_i32(v: __m256i) -> i32 {
    let mut lanes = [0i32; VL];
    // SAFETY: `lanes` is exactly one 256-bit vector wide.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
    lanes.iter().sum()
}

/// i8 elements consumed per vector step of the qdot kernels.
const QSTEP: usize = 16;

/// Load 16 int8 values at `p` widened to 16 lanes of i16.
///
/// # Safety
/// Requires AVX2 at runtime; `p` must be valid for a 16-byte read.
#[target_feature(enable = "avx2")]
unsafe fn load16_i8_as_i16(p: *const i8) -> __m256i {
    // SAFETY: caller guarantees 16 readable bytes at `p`.
    let bytes = unsafe { _mm_loadu_si128(p.cast()) };
    _mm256_cvtepi8_epi16(bytes)
}

/// AVX2 instance of [`super::scalar::qdot`]: widen both rows to i16 and
/// multiply-accumulate pairs with `madd_epi16` (products of two i8
/// values fit i16×i16→i32 exactly; a pair sum is ≤ 2·127², far from
/// overflow), 16 elements per step with a scalar tail. Unlike the
/// broadcast int8 GEMM kernels — where `mullo_epi32` lost to
/// auto-vectorised scalar on the autotune host — this row-vs-row shape
/// maps directly onto the i16 MAC unit. Bit-identical to scalar (exact
/// integer accumulation).
///
/// # Safety
/// Requires AVX2 at runtime. `b.len()` must be ≥ `a.len()`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn qdot(a: &[i8], b: &[i8]) -> i32 {
    let k = a.len();
    debug_assert!(b.len() >= k);
    let chunks = k / QSTEP;
    let mut acc = _mm256_setzero_si256();
    for c in 0..chunks {
        // SAFETY: `c * QSTEP + QSTEP <= k`, in bounds of both operands.
        unsafe {
            let av = load16_i8_as_i16(a.as_ptr().add(c * QSTEP));
            let bv = load16_i8_as_i16(b.as_ptr().add(c * QSTEP));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
        }
    }
    // SAFETY: AVX2 is enabled for this function.
    let mut s = unsafe { hsum_i32(acc) };
    for t in chunks * QSTEP..k {
        s += i32::from(a[t]) * i32::from(b[t]);
    }
    s
}

/// AVX2 instance of [`super::scalar::qdot4`]: four rows against one
/// query, the query chunk loaded once per step and reused across the
/// four row MACs. Bit-identical to scalar (exact integer accumulation).
///
/// # Safety
/// Requires AVX2 at runtime. All four row slices must be at least
/// `q.len()` long.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn qdot4(q: &[i8], r0: &[i8], r1: &[i8], r2: &[i8], r3: &[i8]) -> [i32; 4] {
    let k = q.len();
    debug_assert!(r0.len() >= k && r1.len() >= k && r2.len() >= k && r3.len() >= k);
    let chunks = k / QSTEP;
    let mut acc = [_mm256_setzero_si256(); 4];
    for c in 0..chunks {
        let at = c * QSTEP;
        // SAFETY: `at + QSTEP <= k`, in bounds of the query and (by the
        // length contract) of every row.
        unsafe {
            let qv = load16_i8_as_i16(q.as_ptr().add(at));
            let rv = [
                load16_i8_as_i16(r0.as_ptr().add(at)),
                load16_i8_as_i16(r1.as_ptr().add(at)),
                load16_i8_as_i16(r2.as_ptr().add(at)),
                load16_i8_as_i16(r3.as_ptr().add(at)),
            ];
            for (a, &r) in acc.iter_mut().zip(rv.iter()) {
                *a = _mm256_add_epi32(*a, _mm256_madd_epi16(qv, r));
            }
        }
    }
    let mut out = [0i32; 4];
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        // SAFETY: AVX2 is enabled for this function.
        *o = unsafe { hsum_i32(a) };
    }
    for t in chunks * QSTEP..k {
        let qv = i32::from(q[t]);
        out[0] += qv * i32::from(r0[t]);
        out[1] += qv * i32::from(r1[t]);
        out[2] += qv * i32::from(r2[t]);
        out[3] += qv * i32::from(r3[t]);
    }
    out
}

/// AVX2 instance of [`super::scalar::qrow`]: one int8 row over a
/// `jw`-wide strip, vectorised in 8-output chunks with a scalar tail
/// for ragged strip widths. Bit-identical to scalar (exact integers).
///
/// # Safety
/// Requires AVX2 at runtime. `j0 + jw <= n` and `w` must cover
/// `x_row.len() × n`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn qrow<const TC: usize>(
    x_row: &[i8],
    w: &[i8],
    n: usize,
    j0: usize,
    jw: usize,
    acc: &mut [i32; TC],
) {
    debug_assert!(jw <= TC && j0 + jw <= n && w.len() >= x_row.len() * n);
    *acc = [0; TC];
    let vw = jw / VL;
    for v in 0..vw {
        let mut vacc = _mm256_setzero_si256();
        for (kk, &xq) in x_row.iter().enumerate() {
            let xv = i32::from(xq);
            if xv == 0 {
                continue;
            }
            // SAFETY: `kk * n + j0 + v * VL + VL <= (kk + 1) * n <= w.len()`.
            let wv = unsafe { load8_i8_as_i32(w.as_ptr().add(kk * n + j0 + v * VL)) };
            vacc = _mm256_add_epi32(vacc, _mm256_mullo_epi32(_mm256_set1_epi32(xv), wv));
        }
        // SAFETY: `v * VL + VL <= jw <= TC`, in bounds of `acc`.
        unsafe { _mm256_storeu_si256(acc.as_mut_ptr().add(v * VL).cast(), vacc) };
    }
    // Ragged tail of the strip (jw % 8 columns), scalar.
    for (kk, &xq) in x_row.iter().enumerate() {
        let xv = i32::from(xq);
        if xv == 0 {
            continue;
        }
        let w_row = &w[kk * n + j0 + vw * VL..kk * n + j0 + jw];
        for (t, &wq) in w_row.iter().enumerate() {
            acc[vw * VL + t] += xv * i32::from(wq);
        }
    }
}
