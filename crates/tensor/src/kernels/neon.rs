//! NEON micro-kernels (`aarch64`).
//!
//! NEON is a baseline feature of aarch64, so unlike the AVX2 instances
//! these are safe functions — the only `unsafe` is the raw loads and
//! stores. Structure mirrors the scalar kernels the same way
//! [`super::avx2`] does: one fused multiply-add chain per output element
//! in ascending `k`, sequential lane sums for reductions. The float
//! contract is the DESIGN.md §14 accuracy-agreement gate; the int8
//! kernels are bit-identical to scalar (exact integer arithmetic).

// Whether the pure-register NEON intrinsics (`vdupq_n_f32`,
// `vfmaq_n_f32`, ...) require `unsafe` depends on the rustc version:
// newer compilers make them safe to call where the feature is a baseline
// target feature. The blocks below keep working either way.
#![allow(unused_unsafe)]

use std::arch::aarch64::*;

use super::fma;
use crate::matrix::TILE_ROWS;
use crate::quant::QTILE_ROWS;

/// f32 lanes per 128-bit vector.
const VL: usize = 4;

/// NEON instance of [`super::scalar::tile_fma`]. Column strips are
/// processed one vector (4 outputs) at a time with the four row
/// accumulators live, re-reading the L1-resident lhs rows per strip
/// instead of spilling `4 × TC/4` accumulators.
pub(crate) fn tile_fma<const TC: usize>(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    k0: usize,
    k1: usize,
    stage: &[f32],
    acc: &mut [[f32; TC]; TILE_ROWS],
) {
    debug_assert!(TC % VL == 0);
    debug_assert!(stage.len() >= (k1 - k0) * TC);
    for v in 0..TC / VL {
        // SAFETY: pure register op, no memory access.
        let mut vacc = [unsafe { vdupq_n_f32(0.0) }; TILE_ROWS];
        for (row, lane) in acc.iter().zip(vacc.iter_mut()) {
            // SAFETY: `v * VL + VL <= TC`, in bounds of the `[f32; TC]` row.
            *lane = unsafe { vld1q_f32(row.as_ptr().add(v * VL)) };
        }
        for k in k0..k1 {
            // SAFETY: `(k - k0) * TC + v * VL + VL <= (k1 - k0) * TC`.
            let b = unsafe { vld1q_f32(stage.as_ptr().add((k - k0) * TC + v * VL)) };
            // SAFETY: pure register ops, no memory access.
            unsafe {
                vacc[0] = vfmaq_n_f32(vacc[0], b, a0[k]);
                vacc[1] = vfmaq_n_f32(vacc[1], b, a1[k]);
                vacc[2] = vfmaq_n_f32(vacc[2], b, a2[k]);
                vacc[3] = vfmaq_n_f32(vacc[3], b, a3[k]);
            }
        }
        for (row, lane) in acc.iter_mut().zip(vacc.iter()) {
            // SAFETY: same bounds as the load above.
            unsafe { vst1q_f32(row.as_mut_ptr().add(v * VL), *lane) };
        }
    }
}

/// NEON instance of [`super::scalar::axpy`]: `out += x * b` with a
/// scalar tail. The caller decides the zero-skip.
pub(crate) fn axpy(x: f32, b: &[f32], out: &mut [f32]) {
    let n = out.len();
    debug_assert!(b.len() >= n);
    let mut i = 0;
    while i + VL <= n {
        // SAFETY: `i + VL <= n <= b.len()`; `out` is exclusively borrowed.
        unsafe {
            let bv = vld1q_f32(b.as_ptr().add(i));
            let ov = vld1q_f32(out.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(i), vfmaq_n_f32(ov, bv, x));
        }
        i += VL;
    }
    while i < n {
        out[i] = fma(x, b[i], out[i]);
        i += 1;
    }
}

/// Sum the lanes of `v` sequentially, mirroring the scalar kernels'
/// ordered reductions.
fn hsum_ordered(v: float32x4_t) -> f32 {
    let mut lanes = [0.0f32; VL];
    // SAFETY: `lanes` is exactly one 128-bit vector wide.
    unsafe { vst1q_f32(lanes.as_mut_ptr(), v) };
    lanes.iter().sum()
}

/// NEON instance of [`super::scalar::dot_lanes`].
pub(crate) fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let k = a.len();
    debug_assert!(b.len() >= k);
    let chunks = k / VL;
    // SAFETY: pure register op, no memory access.
    let mut acc = unsafe { vdupq_n_f32(0.0) };
    for c in 0..chunks {
        // SAFETY: `c * VL + VL <= k` for both operands.
        unsafe {
            let av = vld1q_f32(a.as_ptr().add(c * VL));
            let bv = vld1q_f32(b.as_ptr().add(c * VL));
            acc = vfmaq_f32(acc, av, bv);
        }
    }
    let mut s = hsum_ordered(acc);
    for t in chunks * VL..k {
        s = fma(a[t], b[t], s);
    }
    s
}

/// NEON instance of [`super::scalar::tile_2x4`]: eight vector
/// accumulators, six loads and eight FMAs per 4-deep chunk.
pub(crate) fn tile_2x4(
    a0: &[f32],
    a1: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [[f32; 4]; 2] {
    let k = a0.len();
    debug_assert!(
        a1.len() >= k && b0.len() >= k && b1.len() >= k && b2.len() >= k && b3.len() >= k
    );
    let chunks = k / VL;
    // SAFETY: pure register op, no memory access.
    let mut acc = [[unsafe { vdupq_n_f32(0.0) }; 4]; 2];
    for c in 0..chunks {
        let base = c * VL;
        // SAFETY: `base + VL <= k`, in bounds of every operand slice.
        unsafe {
            let x0 = vld1q_f32(a0.as_ptr().add(base));
            let x1 = vld1q_f32(a1.as_ptr().add(base));
            let bv = [
                vld1q_f32(b0.as_ptr().add(base)),
                vld1q_f32(b1.as_ptr().add(base)),
                vld1q_f32(b2.as_ptr().add(base)),
                vld1q_f32(b3.as_ptr().add(base)),
            ];
            for (j, &b) in bv.iter().enumerate() {
                acc[0][j] = vfmaq_f32(acc[0][j], x0, b);
                acc[1][j] = vfmaq_f32(acc[1][j], x1, b);
            }
        }
    }
    let mut out = [[0.0f32; 4]; 2];
    for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
        for (v, o) in acc_row.iter().zip(out_row.iter_mut()) {
            *o = hsum_ordered(*v);
        }
    }
    for t in chunks * VL..k {
        let x0 = a0[t];
        let x1 = a1[t];
        out[0][0] = fma(x0, b0[t], out[0][0]);
        out[0][1] = fma(x0, b1[t], out[0][1]);
        out[0][2] = fma(x0, b2[t], out[0][2]);
        out[0][3] = fma(x0, b3[t], out[0][3]);
        out[1][0] = fma(x1, b0[t], out[1][0]);
        out[1][1] = fma(x1, b1[t], out[1][1]);
        out[1][2] = fma(x1, b2[t], out[1][2]);
        out[1][3] = fma(x1, b3[t], out[1][3]);
    }
    out
}

/// Widen 8 int8 weights at `p` to two i32 vectors (low 4, high 4).
///
/// # Safety
/// `p` must be valid for an 8-byte read.
unsafe fn load8_i8_as_i32(p: *const i8) -> (int32x4_t, int32x4_t) {
    // SAFETY: caller guarantees 8 readable bytes at `p`; `vld1_s8` reads
    // exactly 8.
    let w8 = unsafe { vld1_s8(p) };
    let w16 = unsafe { vmovl_s8(w8) };
    // SAFETY: pure register ops.
    unsafe {
        (
            vmovl_s16(vget_low_s16(w16)),
            vmovl_s16(vget_high_s16(w16)),
        )
    }
}

/// NEON instance of [`super::scalar::qtile`]: i8×i8→i32 for a 4-row ×
/// `TC`-column tile. Bit-identical to scalar (exact integers).
pub(crate) fn qtile<const TC: usize>(
    x_q: &[i8],
    k: usize,
    w: &[i8],
    n: usize,
    i0: usize,
    j0: usize,
    acc: &mut [[i32; TC]; QTILE_ROWS],
) {
    debug_assert!(TC % 8 == 0);
    debug_assert!(j0 + TC <= n && w.len() >= k * n && x_q.len() >= (i0 + QTILE_ROWS) * k);
    let xs = [
        &x_q[i0 * k..(i0 + 1) * k],
        &x_q[(i0 + 1) * k..(i0 + 2) * k],
        &x_q[(i0 + 2) * k..(i0 + 3) * k],
        &x_q[(i0 + 3) * k..(i0 + 4) * k],
    ];
    for v in 0..TC / 8 {
        // SAFETY: pure register ops, no memory access.
        let mut lo = [unsafe { vdupq_n_s32(0) }; QTILE_ROWS];
        let mut hi = [unsafe { vdupq_n_s32(0) }; QTILE_ROWS];
        for kk in 0..k {
            let xv = [
                i32::from(xs[0][kk]),
                i32::from(xs[1][kk]),
                i32::from(xs[2][kk]),
                i32::from(xs[3][kk]),
            ];
            if (xv[0] | xv[1] | xv[2] | xv[3]) == 0 {
                // Same post-ReLU zero skip as scalar: integer adds of
                // zero are exact no-ops.
                continue;
            }
            // SAFETY: `kk * n + j0 + v * 8 + 8 <= (kk + 1) * n <= k * n`.
            let (wlo, whi) = unsafe { load8_i8_as_i32(w.as_ptr().add(kk * n + j0 + v * 8)) };
            for r in 0..QTILE_ROWS {
                // SAFETY: pure register ops, no memory access.
                unsafe {
                    lo[r] = vmlaq_n_s32(lo[r], wlo, xv[r]);
                    hi[r] = vmlaq_n_s32(hi[r], whi, xv[r]);
                }
            }
        }
        for (r, row) in acc.iter_mut().enumerate() {
            // SAFETY: `v * 8 + 8 <= TC`, in bounds of the `[i32; TC]` row.
            unsafe {
                vst1q_s32(row.as_mut_ptr().add(v * 8), lo[r]);
                vst1q_s32(row.as_mut_ptr().add(v * 8 + VL), hi[r]);
            }
        }
    }
}

/// Sum the 4 i32 lanes of `v` (exact: integer addition is associative).
fn hsum_i32(v: int32x4_t) -> i32 {
    let mut lanes = [0i32; VL];
    // SAFETY: `lanes` is exactly one 128-bit vector wide.
    unsafe { vst1q_s32(lanes.as_mut_ptr(), v) };
    lanes.iter().sum()
}

/// i8 elements consumed per vector step of the qdot kernels.
const QSTEP: usize = 8;

/// NEON instance of [`super::scalar::qdot`]: `vmull_s8` widening
/// multiply (i8×i8→i16, exact) folded into the i32 accumulator with the
/// pairwise add-accumulate `vpadalq_s16`, 8 elements per step with a
/// scalar tail. Bit-identical to scalar (exact integer accumulation).
pub(crate) fn qdot(a: &[i8], b: &[i8]) -> i32 {
    let k = a.len();
    debug_assert!(b.len() >= k);
    let chunks = k / QSTEP;
    // SAFETY: pure register op, no memory access.
    let mut acc = unsafe { vdupq_n_s32(0) };
    for c in 0..chunks {
        // SAFETY: `c * QSTEP + QSTEP <= k`, in bounds of both operands;
        // `vld1_s8` reads exactly 8 bytes.
        unsafe {
            let av = vld1_s8(a.as_ptr().add(c * QSTEP));
            let bv = vld1_s8(b.as_ptr().add(c * QSTEP));
            acc = vpadalq_s16(acc, vmull_s8(av, bv));
        }
    }
    let mut s = hsum_i32(acc);
    for t in chunks * QSTEP..k {
        s += i32::from(a[t]) * i32::from(b[t]);
    }
    s
}

/// NEON instance of [`super::scalar::qdot4`]: four rows against one
/// query, the query chunk loaded once per step. Bit-identical to scalar
/// (exact integer accumulation).
pub(crate) fn qdot4(q: &[i8], r0: &[i8], r1: &[i8], r2: &[i8], r3: &[i8]) -> [i32; 4] {
    let k = q.len();
    debug_assert!(r0.len() >= k && r1.len() >= k && r2.len() >= k && r3.len() >= k);
    let chunks = k / QSTEP;
    // SAFETY: pure register op, no memory access.
    let mut acc = [unsafe { vdupq_n_s32(0) }; 4];
    for c in 0..chunks {
        let at = c * QSTEP;
        // SAFETY: `at + QSTEP <= k`, in bounds of the query and (by the
        // length contract) of every row; `vld1_s8` reads exactly 8 bytes.
        unsafe {
            let qv = vld1_s8(q.as_ptr().add(at));
            let rv = [
                vld1_s8(r0.as_ptr().add(at)),
                vld1_s8(r1.as_ptr().add(at)),
                vld1_s8(r2.as_ptr().add(at)),
                vld1_s8(r3.as_ptr().add(at)),
            ];
            for (a, &r) in acc.iter_mut().zip(rv.iter()) {
                *a = vpadalq_s16(*a, vmull_s8(qv, r));
            }
        }
    }
    let mut out = [0i32; 4];
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = hsum_i32(a);
    }
    for t in chunks * QSTEP..k {
        let qv = i32::from(q[t]);
        out[0] += qv * i32::from(r0[t]);
        out[1] += qv * i32::from(r1[t]);
        out[2] += qv * i32::from(r2[t]);
        out[3] += qv * i32::from(r3[t]);
    }
    out
}

/// NEON instance of [`super::scalar::qrow`]: one int8 row over a
/// `jw`-wide strip, 8-output chunks plus a scalar tail for ragged
/// widths. Bit-identical to scalar (exact integers).
pub(crate) fn qrow<const TC: usize>(
    x_row: &[i8],
    w: &[i8],
    n: usize,
    j0: usize,
    jw: usize,
    acc: &mut [i32; TC],
) {
    debug_assert!(jw <= TC && j0 + jw <= n && w.len() >= x_row.len() * n);
    *acc = [0; TC];
    let vw = jw / 8;
    for v in 0..vw {
        // SAFETY: pure register ops, no memory access.
        let mut lo = unsafe { vdupq_n_s32(0) };
        let mut hi = unsafe { vdupq_n_s32(0) };
        for (kk, &xq) in x_row.iter().enumerate() {
            let xv = i32::from(xq);
            if xv == 0 {
                continue;
            }
            // SAFETY: `kk * n + j0 + v * 8 + 8 <= (kk + 1) * n <= w.len()`.
            let (wlo, whi) = unsafe { load8_i8_as_i32(w.as_ptr().add(kk * n + j0 + v * 8)) };
            // SAFETY: pure register ops, no memory access.
            unsafe {
                lo = vmlaq_n_s32(lo, wlo, xv);
                hi = vmlaq_n_s32(hi, whi, xv);
            }
        }
        // SAFETY: `v * 8 + 8 <= jw <= TC`, in bounds of `acc`.
        unsafe {
            vst1q_s32(acc.as_mut_ptr().add(v * 8), lo);
            vst1q_s32(acc.as_mut_ptr().add(v * 8 + VL), hi);
        }
    }
    // Ragged tail of the strip (jw % 8 columns), scalar.
    for (kk, &xq) in x_row.iter().enumerate() {
        let xv = i32::from(xq);
        if xv == 0 {
            continue;
        }
        let w_row = &w[kk * n + j0 + vw * 8..kk * n + j0 + jw];
        for (t, &wq) in w_row.iter().enumerate() {
            acc[vw * 8 + t] += xv * i32::from(wq);
        }
    }
}
