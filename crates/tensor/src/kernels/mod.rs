//! Micro-kernel layer: shared tiled-loop structure, one instance set per
//! [`Backend`].
//!
//! This module owns the *how* of every GEMM: the stage-level packing and
//! the panel-level loops live here once, and the innermost register-tile
//! arithmetic is dispatched to the scalar / AVX2 / NEON instance named
//! by the plan's [`Backend`]. The callers in [`crate::matrix`] and
//! [`crate::quant`] keep the *global* level — shape checks, kernel
//! choice from the total row count, and the row-panel split across the
//! compute pool — so the three [`TilingScheme`](crate::tiling::TilingScheme)
//! levels map onto three layers of code.
//!
//! Stage buffers are thread-locals ping-ponged between consecutive
//! k-panels (double buffering: the pack of panel `p` writes the buffer
//! panel `p - 2` vacated, never the one panel `p - 1`'s tiles may still
//! have in flight in the store pipeline). Pool workers are long-lived
//! threads, so after the first GEMM the steady state allocates nothing.
//!
//! Dispatch safety: the AVX2 arms execute `#[target_feature]` functions,
//! which is only defined when the host really has AVX2+FMA. Every plan
//! that crosses a trust boundary goes through
//! [`KernelPlan::sanitized`](crate::plan::KernelPlan::sanitized), which
//! replaces unavailable backends with [`Backend::Scalar`], and the
//! dispatchers below re-check availability in debug builds.

use std::cell::RefCell;

use crate::matrix::TILE_ROWS;
use crate::quant::QTILE_ROWS;
use crate::tiling::Backend;

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;

/// Fused multiply-add `a * b + c`, the one accumulation primitive every
/// matmul kernel in this crate goes through.
///
/// Rust never contracts `a * b + c` into a hardware FMA on its own (it
/// would change the rounding), which leaves half the machine's FLOP/s on
/// the table. When the build targets an FMA-capable CPU (the workspace
/// `.cargo/config.toml` passes `-C target-cpu=native`) this compiles to a
/// single fused instruction; otherwise it falls back to plain mul+add
/// rather than a libm `fmaf` call, which would be orders of magnitude
/// slower. Routing *all* kernels through the same primitive keeps the
/// batched, per-sample, and naive-oracle paths bit-identical to each
/// other within any one build.
#[inline(always)]
pub(crate) fn fma(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

thread_local! {
    /// Double-buffered f32 stage: two packing buffers alternated across
    /// consecutive k-panels of the tiled matmul.
    static STAGE_F32: RefCell<[Vec<f32>; 2]> = const { RefCell::new([Vec::new(), Vec::new()]) };
}

/// Debug-build guard behind every SIMD dispatch arm: a sanitized plan
/// can never carry an unavailable backend, so hitting this means a
/// caller skipped [`KernelPlan::sanitized`](crate::plan::KernelPlan::sanitized).
#[inline]
fn debug_check_available(backend: Backend) {
    debug_assert!(
        backend.is_available(),
        "backend {backend} dispatched on a host without it; plan not sanitized?"
    );
}

/// Tile-level dispatch of the k-panel broadcast-FMA kernel.
#[inline]
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
fn tile_fma_dispatch<const TC: usize>(
    backend: Backend,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    k0: usize,
    k1: usize,
    stage: &[f32],
    acc: &mut [[f32; TC]; TILE_ROWS],
) {
    match backend {
        Backend::Scalar => scalar::tile_fma::<TC>(a0, a1, a2, a3, k0, k1, stage, acc),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: Avx2 only reaches dispatch through a sanitized
            // plan, which guarantees AVX2+FMA are present at runtime.
            unsafe { avx2::tile_fma::<TC>(a0, a1, a2, a3, k0, k1, stage, acc) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::tile_fma::<TC>(a0, a1, a2, a3, k0, k1, stage, acc),
        // Backends for other architectures are unreachable on this one
        // (sanitized plans never carry them) but must still compile.
        #[allow(unreachable_patterns)]
        _ => scalar::tile_fma::<TC>(a0, a1, a2, a3, k0, k1, stage, acc),
    }
}

/// Dispatch of the streaming `out += x * b` row update. The zero-skip
/// stays at the call sites.
#[inline]
pub(crate) fn axpy_dispatch(backend: Backend, x: f32, b: &[f32], out: &mut [f32]) {
    match backend {
        Backend::Scalar => scalar::axpy(x, b, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2+FMA at runtime.
            unsafe { avx2::axpy(x, b, out) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::axpy(x, b, out),
        #[allow(unreachable_patterns)]
        _ => scalar::axpy(x, b, out),
    }
}

/// Dispatch of the lane-parallel dot product.
#[inline]
fn dot_dispatch(backend: Backend, a: &[f32], b: &[f32]) -> f32 {
    match backend {
        Backend::Scalar => scalar::dot_lanes(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2+FMA at runtime.
            unsafe { avx2::dot_lanes(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot_lanes(a, b),
        #[allow(unreachable_patterns)]
        _ => scalar::dot_lanes(a, b),
    }
}

/// Dispatch of the 2×4 dot-product register tile.
#[inline]
fn tile_2x4_dispatch(
    backend: Backend,
    a0: &[f32],
    a1: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [[f32; 4]; 2] {
    match backend {
        Backend::Scalar => scalar::tile_2x4(a0, a1, b0, b1, b2, b3),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2+FMA at runtime.
            unsafe { avx2::tile_2x4(a0, a1, b0, b1, b2, b3) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::tile_2x4(a0, a1, b0, b1, b2, b3),
        #[allow(unreachable_patterns)]
        _ => scalar::tile_2x4(a0, a1, b0, b1, b2, b3),
    }
}

/// Dispatch of the 4-row int8 tile. Bit-identical across backends
/// (exact integer accumulation), so this needs no accuracy gate.
#[inline]
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
pub(crate) fn qtile_dispatch<const TC: usize>(
    backend: Backend,
    x_q: &[i8],
    k: usize,
    w: &[i8],
    n: usize,
    i0: usize,
    j0: usize,
    acc: &mut [[i32; TC]; QTILE_ROWS],
) {
    match backend {
        Backend::Scalar => scalar::qtile::<TC>(x_q, k, w, n, i0, j0, acc),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2 at runtime.
            unsafe { avx2::qtile::<TC>(x_q, k, w, n, i0, j0, acc) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::qtile::<TC>(x_q, k, w, n, i0, j0, acc),
        #[allow(unreachable_patterns)]
        _ => scalar::qtile::<TC>(x_q, k, w, n, i0, j0, acc),
    }
}

/// Dispatch of the single-row int8 strip kernel. Bit-identical across
/// backends (exact integer accumulation).
#[inline]
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
pub(crate) fn qrow_dispatch<const TC: usize>(
    backend: Backend,
    x_row: &[i8],
    w: &[i8],
    n: usize,
    j0: usize,
    jw: usize,
    acc: &mut [i32; TC],
) {
    match backend {
        Backend::Scalar => scalar::qrow::<TC>(x_row, w, n, j0, jw, acc),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2 at runtime.
            unsafe { avx2::qrow::<TC>(x_row, w, n, j0, jw, acc) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::qrow::<TC>(x_row, w, n, j0, jw, acc),
        #[allow(unreachable_patterns)]
        _ => scalar::qrow::<TC>(x_row, w, n, j0, jw, acc),
    }
}

/// Dispatch of the packed-row i8×i8→i32 dot product. Bit-identical
/// across backends (exact integer accumulation).
#[inline]
pub(crate) fn qdot_dispatch(backend: Backend, a: &[i8], b: &[i8]) -> i32 {
    match backend {
        Backend::Scalar => scalar::qdot(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2 at runtime.
            unsafe { avx2::qdot(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::qdot(a, b),
        #[allow(unreachable_patterns)]
        _ => scalar::qdot(a, b),
    }
}

/// Dispatch of the 4-rows-vs-one-query i8 dot-product tile.
/// Bit-identical across backends (exact integer accumulation).
#[inline]
pub(crate) fn qdot4_dispatch(
    backend: Backend,
    q: &[i8],
    r0: &[i8],
    r1: &[i8],
    r2: &[i8],
    r3: &[i8],
) -> [i32; 4] {
    match backend {
        Backend::Scalar => scalar::qdot4(q, r0, r1, r2, r3),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_check_available(backend);
            // SAFETY: sanitized plans guarantee AVX2 at runtime.
            unsafe { avx2::qdot4(q, r0, r1, r2, r3) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::qdot4(q, r0, r1, r2, r3),
        #[allow(unreachable_patterns)]
        _ => scalar::qdot4(q, r0, r1, r2, r3),
    }
}

/// Tiled-matmul panel: output rows `[r0, r1)` of `lhs · rhs`, written
/// into `panel` (panel-local indexing; must arrive zeroed or holding the
/// running accumulation).
///
/// The loop realises the f32 [`TilingScheme`](crate::tiling::TilingScheme):
/// per `TC`-wide column strip, each `panel_k`-deep slice of `rhs` is
/// packed into the thread's stage buffer (alternating between the two
/// buffers), the 4-row register tiles of the panel consume the packed
/// strip through the backend's `tile_fma`, remainder rows take the
/// zero-skipping single-row path over the same stage, and the ragged
/// column tail (`n % TC`) runs the streaming axpy update directly on
/// `rhs`. Packing changes addresses, not values or accumulation order,
/// so the scalar backend stays bit-identical to the pre-stage kernel.
#[allow(clippy::too_many_arguments)] // panel geometry is inherently wide
pub(crate) fn matmul_tiled_panel<const TC: usize>(
    backend: Backend,
    lhs: &[f32],
    k_total: usize,
    rhs: &[f32],
    n: usize,
    r0: usize,
    r1: usize,
    panel: &mut [f32],
    panel_k: usize,
) {
    let panel_k = panel_k.max(1);
    let base = r0 * n;
    let row = |i: usize| &lhs[i * k_total..(i + 1) * k_total];
    STAGE_F32.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let mut j = 0;
        while j + TC <= n {
            let mut k0 = 0;
            let mut parity = 0;
            while k0 < k_total {
                let k1 = (k0 + panel_k).min(k_total);
                let stage = &mut bufs[parity];
                stage.clear();
                stage.resize((k1 - k0) * TC, 0.0);
                for (idx, k) in (k0..k1).enumerate() {
                    stage[idx * TC..(idx + 1) * TC]
                        .copy_from_slice(&rhs[k * n + j..k * n + j + TC]);
                }
                let stage = &bufs[parity];
                let mut i = r0;
                while i + TILE_ROWS <= r1 {
                    let mut acc = [[0.0f32; TC]; TILE_ROWS];
                    for (r, acc_row) in acc.iter_mut().enumerate() {
                        let at = (i + r) * n + j - base;
                        acc_row.copy_from_slice(&panel[at..at + TC]);
                    }
                    tile_fma_dispatch::<TC>(
                        backend,
                        row(i),
                        row(i + 1),
                        row(i + 2),
                        row(i + 3),
                        k0,
                        k1,
                        stage,
                        &mut acc,
                    );
                    for (r, acc_row) in acc.iter().enumerate() {
                        let at = (i + r) * n + j - base;
                        panel[at..at + TC].copy_from_slice(acc_row);
                    }
                    i += TILE_ROWS;
                }
                // Row remainder: one row at a time, zero-skip restored.
                while i < r1 {
                    let mut acc = [0.0f32; TC];
                    let at = i * n + j - base;
                    acc.copy_from_slice(&panel[at..at + TC]);
                    scalar::row_tail_fma::<TC>(row(i), k0, k1, stage, &mut acc);
                    panel[at..at + TC].copy_from_slice(&acc);
                    i += 1;
                }
                k0 = k1;
                parity ^= 1;
            }
            j += TC;
        }
        // Column tail (n % TC): streaming zero-skip axpy over the tail.
        if j < n {
            for i in r0..r1 {
                for (k, &x) in row(i).iter().enumerate() {
                    if x == 0.0 {
                        continue;
                    }
                    let b_tail = &rhs[k * n + j..(k + 1) * n];
                    let (o0, o1) = (i * n + j - base, (i + 1) * n - base);
                    axpy_dispatch(backend, x, b_tail, &mut panel[o0..o1]);
                }
            }
        }
    });
}

/// Axpy-matmul panel: output rows `[r0, r1)` via the zero-skipping
/// streaming kernel — the small-batch and per-sample (`rows == 1`) path,
/// where post-ReLU sparsity beats register tiling.
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
pub(crate) fn matmul_axpy_panel(
    backend: Backend,
    lhs: &[f32],
    k_total: usize,
    rhs: &[f32],
    n: usize,
    r0: usize,
    r1: usize,
    panel: &mut [f32],
) {
    for i in r0..r1 {
        let a_row = &lhs[i * k_total..(i + 1) * k_total];
        let out_row = &mut panel[(i - r0) * n..(i - r0 + 1) * n];
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            axpy_dispatch(backend, a, &rhs[k * n..(k + 1) * n], out_row);
        }
    }
}

/// `lhs · rhsᵀ` panel: output rows `[r0, r1)` as 2×4 register tiles of
/// dot products with single-row/column tails.
#[allow(clippy::too_many_arguments)] // panel geometry is inherently wide
pub(crate) fn matmul_transpose_panel(
    backend: Backend,
    lhs: &[f32],
    k_total: usize,
    rhs: &[f32],
    n: usize,
    r0: usize,
    r1: usize,
    panel: &mut [f32],
) {
    let base = r0 * n;
    let a_row = |i: usize| &lhs[i * k_total..(i + 1) * k_total];
    let b_row = |j: usize| &rhs[j * k_total..(j + 1) * k_total];
    let mut i = r0;
    while i + 2 <= r1 {
        let a0 = a_row(i);
        let a1 = a_row(i + 1);
        let mut j = 0;
        while j + 4 <= n {
            let t = tile_2x4_dispatch(
                backend,
                a0,
                a1,
                b_row(j),
                b_row(j + 1),
                b_row(j + 2),
                b_row(j + 3),
            );
            panel[i * n + j - base..i * n + j + 4 - base].copy_from_slice(&t[0]);
            panel[(i + 1) * n + j - base..(i + 1) * n + j + 4 - base].copy_from_slice(&t[1]);
            j += 4;
        }
        while j < n {
            let b = b_row(j);
            panel[i * n + j - base] = dot_dispatch(backend, a0, b);
            panel[(i + 1) * n + j - base] = dot_dispatch(backend, a1, b);
            j += 1;
        }
        i += 2;
    }
    if i < r1 {
        let a0 = a_row(i);
        for j in 0..n {
            panel[i * n + j - base] = dot_dispatch(backend, a0, b_row(j));
        }
    }
}

/// `lhsᵀ · rhs` panel: output rows `[c0, c1)` — i.e. columns `c0..c1`
/// of `lhs` — via the r-outer, zero-skipping gradient scatter.
#[allow(clippy::too_many_arguments)] // panel geometry is inherently wide
pub(crate) fn transpose_matmul_panel(
    backend: Backend,
    lhs: &[f32],
    lhs_cols: usize,
    rows: usize,
    rhs: &[f32],
    n: usize,
    c0: usize,
    c1: usize,
    panel: &mut [f32],
) {
    for r in 0..rows {
        let a_row = &lhs[r * lhs_cols + c0..r * lhs_cols + c1];
        let b_row = &rhs[r * n..(r + 1) * n];
        for (i, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            axpy_dispatch(backend, a, b_row, &mut panel[i * n..(i + 1) * n]);
        }
    }
}
