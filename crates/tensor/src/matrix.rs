//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the single tensor type of the MAGNETO stack. Batches of
//! feature vectors are matrices with one sample per row; layer weights are
//! `(in, out)` matrices so a forward pass is `x.matmul(w)`.

use crate::error::TensorError;
use crate::kernels::{self, fma};
use crate::pool::{Exec, SendPtr};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the natural seed for `_into` outputs
    /// and [`crate::workspace::Workspace`] scratch buffers.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidDimensions`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimensions {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a single-row matrix from a slice.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Creates a matrix by stacking equal-length rows.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidDimensions`] if the rows have differing
    /// lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::InvalidDimensions {
                    rows: rows.len(),
                    cols,
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics in debug builds if out of bounds (release builds panic via
    /// slice indexing).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Checked element access.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] when `(r, c)` is outside
    /// the matrix.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f32> {
        if r >= self.rows || c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: (r, c),
                shape: (self.rows, self.cols),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both `rhs` and the
    /// output row contiguously — the classic cache-friendly ordering that
    /// the Rust compiler auto-vectorises well.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs` written into `out`, reusing `out`'s
    /// allocation when it is already large enough.
    ///
    /// Dispatches on batch size. Small inputs (fewer than
    /// [`TILED_MIN_ROWS`] rows, including the per-sample `rows == 1`
    /// case) run an axpy kernel that skips zero `self` entries — post-ReLU
    /// activations are ~50% zeros, so the skip removes whole row
    /// updates. Batched inputs run a broadcast-FMA register-tiled
    /// kernel, which trades the sparsity skip for
    /// keeping a 4×32 output tile in vector registers across the whole
    /// `k` loop. Both paths accumulate `k` contributions in ascending
    /// order, so results match [`Matrix::matmul_naive`] exactly (up to
    /// the sign of zero: the tiled path adds exact `±0.0` terms where
    /// the reference skips zero `a` entries).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        self.matmul_into_exec(rhs, out, &Exec::inline())
    }

    /// Plan-driven [`Matrix::matmul_into`]: dispatch thresholds, tile
    /// width and k-panel depth come from `exec`'s [`KernelPlan`](crate::plan::KernelPlan), and
    /// the output is split into row panels across `exec`'s compute pool.
    ///
    /// Panels are aligned to the 4-row tile height, so exactly the same
    /// rows take the tiled path vs. the zero-skip remainder as in a
    /// sequential run, and each output element is accumulated by exactly
    /// one thread in ascending-`k` order — the result is bit-identical
    /// at every thread count for a fixed plan. With [`Exec::inline`]
    /// this *is* the PR-1 sequential kernel.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul_into_exec(&self, rhs: &Matrix, out: &mut Matrix, exec: &Exec) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.rows, rhs.cols);
        let plan = exec.plan();
        let n = rhs.cols;
        // Kernel choice depends on the *total* batch size, never on a
        // panel's size — another thread-count invariance requirement.
        let tiled = self.rows >= plan.tiled_min_rows;
        let out_ptr = SendPtr::new(out.data.as_mut_ptr());
        exec.run_row_panels(self.rows, if tiled { TILE_ROWS } else { 1 }, &|r0, r1| {
            // SAFETY: `run_row_panels` hands out disjoint `[r0, r1)` row
            // ranges covering `0..rows`, so the panels never alias and
            // the pointer stays valid for the duration of the dispatch.
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), (r1 - r0) * n)
            };
            if tiled {
                if plan.tile_cols <= 16 {
                    kernels::matmul_tiled_panel::<16>(
                        plan.backend, &self.data, self.cols, &rhs.data, n, r0, r1, panel,
                        plan.panel_k,
                    );
                } else {
                    kernels::matmul_tiled_panel::<32>(
                        plan.backend, &self.data, self.cols, &rhs.data, n, r0, r1, panel,
                        plan.panel_k,
                    );
                }
            } else {
                kernels::matmul_axpy_panel(
                    plan.backend, &self.data, self.cols, &rhs.data, n, r0, r1, panel,
                );
            }
        });
        Ok(())
    }

    /// Fused `act(self * rhs + bias)` written into `out` — the whole
    /// dense-layer forward in one pass over the output. The bias add and
    /// activation run per row panel while it is still cache-hot, after
    /// that row's `k` accumulation has fully finished, so the float
    /// operation sequence per element (`acc`, `acc + bias`, `act(·)`) is
    /// exactly the one the separate matmul → bias → map passes produce.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows` and `bias.len() == rhs.cols`.
    pub fn matmul_bias_act_into_exec<F>(
        &self,
        rhs: &Matrix,
        bias: &[f32],
        act: F,
        out: &mut Matrix,
        exec: &Exec,
    ) -> Result<()>
    where
        F: Fn(f32) -> f32 + Sync,
    {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if bias.len() != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias_act",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        out.resize(self.rows, rhs.cols);
        let plan = exec.plan();
        let n = rhs.cols;
        let tiled = self.rows >= plan.tiled_min_rows;
        let out_ptr = SendPtr::new(out.data.as_mut_ptr());
        exec.run_row_panels(self.rows, if tiled { TILE_ROWS } else { 1 }, &|r0, r1| {
            // SAFETY: disjoint row panels; see `matmul_into_exec`.
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), (r1 - r0) * n)
            };
            if tiled {
                if plan.tile_cols <= 16 {
                    kernels::matmul_tiled_panel::<16>(
                        plan.backend, &self.data, self.cols, &rhs.data, n, r0, r1, panel,
                        plan.panel_k,
                    );
                } else {
                    kernels::matmul_tiled_panel::<32>(
                        plan.backend, &self.data, self.cols, &rhs.data, n, r0, r1, panel,
                        plan.panel_k,
                    );
                }
            } else {
                kernels::matmul_axpy_panel(
                    plan.backend, &self.data, self.cols, &rhs.data, n, r0, r1, panel,
                );
            }
            if n > 0 {
                for row in panel.chunks_exact_mut(n) {
                    for (o, &b) in row.iter_mut().zip(bias.iter()) {
                        *o = act(*o + b);
                    }
                }
            }
        });
        Ok(())
    }

    /// Reference i-k-j matmul with no blocking: the oracle the blocked
    /// kernel is property-tested against.
    ///
    /// Always compiled (not `#[cfg(test)]`) so the integration property
    /// tests in `tests/` can reach it; hidden from docs because production
    /// code should call [`Matrix::matmul_into`].
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    #[doc(hidden)]
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = fma(a, b, *o);
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs^T` without materialising the transpose.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transpose_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs^T` written into `out`, reusing `out`'s
    /// allocation. Both operands are walked row-major, so every inner
    /// loop is a contiguous dot product; rows are processed as 2×4
    /// register tiles with eight-lane accumulators, which keeps the whole
    /// tile in vector registers and loads each operand row once per four
    /// (resp. two) outputs. This is the batched-forward fast path: with
    /// the weights pre-transposed, `x · Wᵀᵀ` runs here instead of the
    /// store-bound axpy kernel.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_transpose_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        self.matmul_transpose_into_exec(rhs, out, &Exec::inline())
    }

    /// Parallel [`Matrix::matmul_transpose_into`]: output rows are split
    /// into panels aligned to the kernel's 2-row pairing across `exec`'s
    /// pool, so the same rows form register-tile pairs as in a
    /// sequential run and the result is bit-identical at any thread
    /// count.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_transpose_into_exec(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        exec: &Exec,
    ) -> Result<()> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.rows, rhs.rows);
        let n = rhs.rows;
        let out_ptr = SendPtr::new(out.data.as_mut_ptr());
        exec.run_row_panels(self.rows, 2, &|r0, r1| {
            // SAFETY: disjoint row panels; see `matmul_into_exec`.
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), (r1 - r0) * n)
            };
            kernels::matmul_transpose_panel(
                exec.plan().backend,
                &self.data,
                self.cols,
                &rhs.data,
                n,
                r0,
                r1,
                panel,
            );
        });
        Ok(())
    }

    /// Matrix product `self^T * rhs` written into `out`, reusing `out`'s
    /// allocation and never materialising the transpose.
    ///
    /// This is the gradient kernel: `dw = input^T * delta`. The loop runs
    /// over shared rows `r`, scattering `self[r][i] * rhs[r][..]` into
    /// output row `i` — every slice access is contiguous.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.rows == rhs.rows`.
    pub fn transpose_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        self.transpose_matmul_into_exec(rhs, out, &Exec::inline())
    }

    /// Parallel [`Matrix::transpose_matmul_into`]: the *output* rows
    /// (columns of `self`) are split into panels across `exec`'s pool.
    /// Every thread walks the shared sample rows `r` in the same
    /// ascending order, scattering only into its own panel, so each
    /// output element keeps the sequential accumulation order and the
    /// result is bit-identical at any thread count.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.rows == rhs.rows`.
    pub fn transpose_matmul_into_exec(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        exec: &Exec,
    ) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.cols, rhs.cols);
        let n = rhs.cols;
        let out_ptr = SendPtr::new(out.data.as_mut_ptr());
        exec.run_row_panels(self.cols, 1, &|c0, c1| {
            // SAFETY: disjoint output-row panels; see `matmul_into_exec`.
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(c0 * n), (c1 - c0) * n)
            };
            kernels::transpose_matmul_panel(
                exec.plan().backend,
                &self.data,
                self.cols,
                self.rows,
                &rhs.data,
                n,
                c0,
                c1,
                panel,
            );
        });
        Ok(())
    }

    /// Reshape in place to `rows x cols`, zero-filling every element and
    /// reusing the existing allocation when it is large enough.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Make `self` an element-for-element copy of `src`, reusing `self`'s
    /// allocation when it is large enough.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose written into `out`, reusing `out`'s allocation — the
    /// staging step that lets batched forwards run on the tiled
    /// [`Matrix::matmul_transpose_into`] kernel.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise `self += rhs * scale` (the AXPY of optimiser
    /// updates).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_scaled_inplace(&mut self, rhs: &Matrix, scale: f32) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled_inplace",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Multiply every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Add `row` (length == `cols`) to every row; the bias-broadcast of a
    /// dense layer.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `row.len() != self.cols`.
    pub fn add_row_broadcast(&self, row: &[f32]) -> Result<Matrix> {
        if row.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, row.len()),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(row.iter()) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Sum over rows, returning a length-`cols` vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Mean over rows, returning a length-`cols` vector (class prototypes).
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyInput`] when the matrix has no rows.
    pub fn mean_rows(&self) -> Result<Vec<f32>> {
        if self.rows == 0 {
            return Err(TensorError::EmptyInput("mean_rows"));
        }
        let mut out = self.sum_rows();
        let inv = 1.0 / self.rows as f32;
        for v in &mut out {
            *v *= inv;
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Select a subset of rows into a new matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] if any index is out of
    /// range.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: (i, 0),
                    shape: self.shape(),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Vertically stack two matrices with the same column count.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols && !self.is_empty() && !other.is_empty() {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if self.is_empty() {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// L2-normalise every row in place (rows with ~zero norm are left
    /// untouched). Used to put embeddings on the unit hypersphere before
    /// contrastive/NCM operations.
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                let inv = 1.0 / norm;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }

    /// `true` if every element is finite. Training loops use this as a
    /// cheap divergence guard.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Default minimum row count at which [`Matrix::matmul_into`] routes to
/// the register-tiled kernel. The tile forgoes the zero-skip that
/// post-ReLU activation sparsity makes profitable, so it needs enough
/// rows for register reuse to amortise the extra arithmetic; below this
/// the zero-skipping axpy kernel wins and stays on the exact per-sample
/// code path. Since PR 3 this is only the *default* — the live
/// threshold is `KernelPlan::tiled_min_rows`, measured per host by
/// [`KernelPlan::autotune`](crate::plan::KernelPlan::autotune).
pub const TILED_MIN_ROWS: usize = 16;

/// Row height of the register tile in [`Matrix::matmul_into_exec`]'s
/// batched kernel. Row panels handed to pool pieces are aligned to this
/// so tile membership is identical to a sequential run. The micro-kernel
/// bodies themselves live in [`crate::kernels`], one instance per
/// [`Backend`](crate::tiling::Backend).
pub(crate) const TILE_ROWS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn filled_value() {
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimensions { len: 3, .. }));
    }

    #[test]
    fn from_rows_builds_and_rejects_ragged() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.shape(), (2, 2));
        assert!(Matrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]).is_err());
        assert_eq!(Matrix::from_rows(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn matmul_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0; 12]);
        let via_t = a.matmul(&b.transpose()).unwrap();
        let direct = a.matmul_transposed(&b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap(), m(1, 3, &[5.0, 7.0, 9.0]));
        assert_eq!(b.sub(&a).unwrap(), m(1, 3, &[3.0, 3.0, 3.0]));
        assert_eq!(a.hadamard(&b).unwrap(), m(1, 3, &[4.0, 10.0, 18.0]));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let g = m(1, 2, &[2.0, 4.0]);
        a.add_scaled_inplace(&g, -0.5).unwrap();
        assert_eq!(a, m(1, 2, &[0.0, -1.0]));
        assert!(a.add_scaled_inplace(&Matrix::zeros(3, 3), 1.0).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = m(1, 2, &[1.0, -2.0]);
        assert_eq!(a.scale(2.0), m(1, 2, &[2.0, -4.0]));
        assert_eq!(a.map(f32::abs), m(1, 2, &[1.0, 2.0]));
        let mut b = a.clone();
        b.scale_inplace(3.0);
        assert_eq!(b, m(1, 2, &[3.0, -6.0]));
        let mut c = a;
        c.map_inplace(|v| v + 1.0);
        assert_eq!(c, m(1, 2, &[2.0, -1.0]));
    }

    #[test]
    fn row_broadcast_and_sums() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(b, m(2, 2, &[11.0, 22.0, 13.0, 24.0]));
        assert!(a.add_row_broadcast(&[1.0]).is_err());
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
        assert_eq!(a.mean_rows().unwrap(), vec![2.0, 3.0]);
        assert_eq!(a.sum(), 10.0);
        assert!(Matrix::zeros(0, 2).mean_rows().is_err());
    }

    #[test]
    fn norms() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m(1, 2, &[-7.0, 2.0]).max_abs(), 7.0);
    }

    #[test]
    fn select_rows_subset() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(s, m(2, 2, &[5.0, 6.0, 1.0, 2.0]));
        assert!(a.select_rows(&[3]).is_err());
    }

    #[test]
    fn vstack_concatenates() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        // Stacking with an empty matrix is the identity.
        assert_eq!(Matrix::zeros(0, 0).vstack(&a).unwrap(), a);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        a.l2_normalize_rows();
        let n0: f32 = a.row(0).iter().map(|v| v * v).sum();
        assert!((n0 - 1.0).abs() < 1e-6);
        // Zero row untouched (no NaN).
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn try_get_bounds() {
        let a = m(1, 1, &[42.0]);
        assert_eq!(a.try_get(0, 0).unwrap(), 42.0);
        assert!(a.try_get(1, 0).is_err());
        assert!(a.try_get(0, 1).is_err());
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
        a.set(0, 1, f32::INFINITY);
        assert!(!a.all_finite());
    }

    #[test]
    fn iter_rows_and_col() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f32]> = a.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
