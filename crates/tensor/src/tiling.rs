//! Tiling scheme: the *what-is-tiled* half of the kernel layer.
//!
//! Every GEMM in this crate decomposes the same way, at three levels
//! (the decomposition is modeled on kubecl's tile/stage/global matmul
//! components, specialised to CPU):
//!
//! * **tile** — the micro-kernel's register tile: a fixed number of
//!   output rows × columns whose accumulators live in vector registers
//!   for an entire k-panel;
//! * **stage** — the K-panel staging: a `panel_k`-deep strip of the rhs
//!   is packed into a contiguous, double-buffered staging buffer that
//!   every row tile of the panel reads, so the micro-kernel sees unit
//!   stride regardless of the rhs leading dimension;
//! * **global** — the output-row-panel partition that
//!   [`crate::pool::Exec::run_row_panels`] spreads across the compute
//!   pool, aligned to the tile height so tile membership is identical
//!   to a sequential run (the bit-identity requirement of DESIGN.md §11).
//!
//! A [`TilingScheme`] describes that decomposition as a value; a
//! [`Backend`] names *which micro-kernel instance executes the tile*
//! (portable scalar, AVX2+FMA, NEON). Keeping the two separate is the
//! seam of the refactor: scheduling parameters come from the autotuned
//! [`KernelPlan`](crate::plan::KernelPlan), ISA choice is detected at
//! runtime and persisted alongside them, and the loop structure in
//! [`crate::kernels`] is shared by every backend — so the scalar path
//! keeps its bit-identity guarantees while SIMD backends slot in behind
//! the same loops.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::plan::KernelPlan;
use crate::Result;

/// Which micro-kernel instance executes a tile.
///
/// `Scalar` is always available and is the reference every other
/// backend is measured against: the scalar kernels are bit-identical to
/// the pre-SIMD code and property-tested against the naive oracle. SIMD
/// backends are *accuracy-gated instead of bit-gated* (see DESIGN.md
/// §14): float SIMD may round differently from the scalar `mul_add`
/// chain on some builds, so the acceptance bar is prediction agreement
/// ≥ 0.99 plus elementwise tolerance, not byte equality. The int8
/// backends accumulate in exact integer arithmetic and therefore *are*
/// bit-identical across backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable scalar micro-kernels (lane-parallel loops the compiler
    /// auto-vectorises). Always available; the bit-identity reference.
    #[default]
    Scalar,
    /// AVX2 + FMA intrinsics on `x86_64`, runtime-detected.
    Avx2,
    /// NEON intrinsics on `aarch64` (baseline feature there).
    Neon,
}

impl Backend {
    /// Canonical lowercase name (JSON value, banner text).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parse a CLI-style name.
    ///
    /// # Errors
    /// [`TensorError::Decode`] on anything other than
    /// `scalar` / `avx2` / `neon`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "scalar" => Ok(Backend::Scalar),
            "avx2" => Ok(Backend::Avx2),
            "neon" => Ok(Backend::Neon),
            other => Err(TensorError::Decode(format!(
                "unknown backend `{other}` (expected `scalar`, `avx2` or `neon`)"
            ))),
        }
    }

    /// `true` when this backend can run on the current host. Checked at
    /// runtime (not compile time) so one binary serves heterogeneous
    /// fleets: an AVX2 plan cached by one device degrades to scalar on
    /// another instead of faulting.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            // NEON is a baseline feature of aarch64; presence of the
            // architecture is presence of the ISA.
            Backend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The best SIMD backend the host supports, if any. `None` means
    /// the scalar fallback is the only option (e.g. x86_64 without
    /// AVX2, or a non-x86/ARM architecture).
    pub fn detect_simd() -> Option<Backend> {
        [Backend::Avx2, Backend::Neon]
            .into_iter()
            .find(|b| b.is_available())
    }

    /// Best available backend: the detected SIMD instance, or scalar.
    pub fn detect() -> Backend {
        Backend::detect_simd().unwrap_or(Backend::Scalar)
    }

    /// Every backend the host can run, scalar first — the enumeration
    /// order the autotuner sweeps.
    pub fn candidates() -> Vec<Backend> {
        let mut out = vec![Backend::Scalar];
        out.extend(Backend::detect_simd());
        out
    }

    /// One-line host ISA summary for startup banners and smoke-test
    /// logs, e.g. `x86_64 (avx2+fma: yes)`.
    pub fn isa_summary() -> String {
        let arch = std::env::consts::ARCH;
        match Backend::detect_simd() {
            Some(b) => format!("{arch} (simd: {})", b.name()),
            None => format!("{arch} (simd: none)"),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Manual serde impls (the derive would use the Rust variant names):
// backends persist as their lowercase CLI names, so the cached-plan JSON
// reads `"backend": "avx2"` and rejects unknown strings with the same
// error as `Backend::parse`.
impl Serialize for Backend {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for Backend {
    fn from_value(v: &serde::Value) -> serde::Result<Self> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::expected("string", "Backend"))?;
        Backend::parse(s).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

/// The register-tile level: output rows × columns whose accumulators a
/// micro-kernel keeps in registers across a whole k-panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLevel {
    /// Tile height in output rows (4 for every kernel in this crate).
    pub rows: usize,
    /// Tile width in output columns (16 or 32, from the plan).
    pub cols: usize,
}

/// The staging level: how deep a K-panel of the rhs is packed into the
/// contiguous staging buffers before the row tiles consume it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageLevel {
    /// K-panel depth; the rhs strip re-read per row block stays L1/L2
    /// resident at this depth.
    pub panel_k: usize,
    /// Number of staging buffers ping-ponged across consecutive
    /// k-panels (2 = double-buffered, kubecl-style: the pack of panel
    /// `p+1` lands in the buffer panel `p-1` vacated, so the stores of
    /// the pack never collide with the loads still streaming out of the
    /// panel the tiles are consuming).
    pub buffers: usize,
}

/// The global level: how output rows are partitioned across the
/// compute pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalLevel {
    /// Row-panel alignment — a multiple of [`TileLevel::rows`], so tile
    /// membership is invariant under the thread count.
    pub align: usize,
    /// Minimum output rows before a GEMM is split across pool threads.
    pub par_min_rows: usize,
}

/// The complete three-level decomposition for one GEMM family.
///
/// Built from a [`KernelPlan`] (which is where the values are autotuned
/// and persisted); consumed by [`crate::kernels`] together with a
/// [`Backend`] picking the micro-kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingScheme {
    /// Micro-kernel register tile shape.
    pub tile: TileLevel,
    /// K-panel staging depth and buffer count.
    pub stage: StageLevel,
    /// Pool partition of the output rows.
    pub global: GlobalLevel,
}

impl TilingScheme {
    /// The scheme for the f32 forward/fused GEMMs under `plan`.
    pub fn f32_gemm(plan: &KernelPlan) -> Self {
        TilingScheme {
            tile: TileLevel {
                rows: crate::matrix::TILE_ROWS,
                cols: plan.tile_cols,
            },
            stage: StageLevel {
                panel_k: plan.panel_k.max(1),
                buffers: 2,
            },
            global: GlobalLevel {
                align: crate::matrix::TILE_ROWS,
                par_min_rows: plan.par_min_rows,
            },
        }
    }

    /// The scheme for the i8×i8→i32 GEMM under `plan`. The int8 path
    /// runs at full depth (`panel_k = ∞` effectively) with **no packing
    /// stage** (`buffers = 0`): the i8 weight strip is already 4× more
    /// compact than f32 so it stays cache-resident as-is, and the
    /// [`crate::quant`] accumulator bound guarantees a single-pass i32
    /// accumulation is safe — the micro-kernels read the weights in
    /// place.
    pub fn i8_gemm(plan: &KernelPlan) -> Self {
        TilingScheme {
            tile: TileLevel {
                rows: crate::quant::QTILE_ROWS,
                cols: plan.i8_tile_cols,
            },
            stage: StageLevel {
                panel_k: usize::MAX,
                buffers: 0,
            },
            global: GlobalLevel {
                align: crate::quant::QTILE_ROWS,
                par_min_rows: plan.par_min_rows,
            },
        }
    }

    /// The scheme for the i8 distance family (the [`crate::qdist`]
    /// coarse scans of the NCM index): 4-row × full-width dot tiles
    /// sharing the query loads, no packing stage (rows are stored
    /// contiguously already), rows never split across the pool — one
    /// coarse scan is far below any parallel threshold.
    pub fn i8_distance(_plan: &KernelPlan) -> Self {
        TilingScheme {
            tile: TileLevel {
                rows: crate::quant::QTILE_ROWS,
                cols: usize::MAX,
            },
            stage: StageLevel {
                panel_k: usize::MAX,
                buffers: 0,
            },
            global: GlobalLevel {
                align: crate::quant::QTILE_ROWS,
                par_min_rows: usize::MAX,
            },
        }
    }

    /// One-line summary for banners: `tile=4x32 panel_k=256 align=4`.
    pub fn describe(&self) -> String {
        format!(
            "tile={}x{} panel_k={} align={}",
            self.tile.rows,
            if self.tile.cols == usize::MAX {
                "full".to_string()
            } else {
                self.tile.cols.to_string()
            },
            if self.stage.panel_k == usize::MAX {
                "full".to_string()
            } else {
                self.stage.panel_k.to_string()
            },
            self.global.align
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(Backend::Scalar.is_available());
        assert!(Backend::candidates().contains(&Backend::Scalar));
        // detect() never returns an unavailable backend.
        assert!(Backend::detect().is_available());
    }

    #[test]
    fn detect_simd_matches_availability() {
        match Backend::detect_simd() {
            Some(b) => {
                assert!(b.is_available());
                assert_ne!(b, Backend::Scalar);
            }
            None => {
                assert!(!Backend::Avx2.is_available());
                assert!(!Backend::Neon.is_available());
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            assert_eq!(Backend::parse(b.name()).unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!(Backend::parse("sse9").is_err());
    }

    #[test]
    fn backend_serde_is_lowercase_string() {
        let json = serde_json::to_string(&Backend::Avx2).unwrap();
        assert_eq!(json, "\"avx2\"");
        let back: Backend = serde_json::from_str("\"scalar\"").unwrap();
        assert_eq!(back, Backend::Scalar);
        assert!(serde_json::from_str::<Backend>("\"mmx\"").is_err());
    }

    #[test]
    fn schemes_reflect_plan_fields() {
        let plan = KernelPlan::inline();
        let f = TilingScheme::f32_gemm(&plan);
        assert_eq!(f.tile.rows, 4);
        assert_eq!(f.tile.cols, plan.tile_cols);
        assert_eq!(f.stage.panel_k, plan.panel_k);
        assert_eq!(f.stage.buffers, 2);
        let q = TilingScheme::i8_gemm(&plan);
        assert_eq!(q.tile.cols, plan.i8_tile_cols);
        assert_eq!(q.stage.panel_k, usize::MAX);
        assert!(f.describe().contains("tile=4x"));
        assert!(q.describe().contains("panel_k=full"));
    }

    #[test]
    fn isa_summary_names_the_arch() {
        assert!(Backend::isa_summary().contains(std::env::consts::ARCH));
    }
}
