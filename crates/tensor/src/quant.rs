//! Int8 inference kernels: the precision seam of the execution stack.
//!
//! The paper's Cloud→Edge payload is quantised to stay under 5 MB, but
//! until this module existed the Edge dequantised everything back to f32
//! at deploy, so resident memory and the GEMM hot path saw no benefit.
//! [`QuantMatrix`] keeps weights resident as int8 with one f32 scale per
//! *output channel* (per column of the row-major `(in, out)` weight
//! matrix) and runs the fused matmul+bias+activation directly on the
//! int8 data:
//!
//! * activations are quantised dynamically per row (`scale =
//!   max_abs/127`, symmetric, zero-guarded) into a [`QuantScratch`]
//!   buffer *before* the kernel is dispatched across the compute pool,
//!   so worker threads only ever read the int8 buffers;
//! * the inner kernel accumulates `i8×i8→i32` — integer addition is
//!   exactly associative, so any partitioning of the output rows across
//!   pool threads produces bit-identical accumulators;
//! * a single f32 epilogue rescales per element:
//!   `out[r, c] = act(acc as f32 * x_scale[r] * w_scale[c] + bias[c])`,
//!   applied identically by the tiled and single-row kernels, which
//!   makes the whole path bit-identical across pool sizes *and* kernel
//!   choices (property-tested below, mirroring the f32 guarantees).
//!
//! Scheduling follows the f32 kernels: the [`crate::plan::KernelPlan`]
//! carries an int8 register-tile width (`i8_tile_cols`) and a tiled
//! dispatch threshold (`i8_tiled_min_rows`), the kernel choice is made
//! from the *total* row count (never per panel), and panels are aligned
//! to the 4-row tile height.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::kernels::{qrow_dispatch, qtile_dispatch};
use crate::matrix::Matrix;
use crate::pool::{Exec, SendPtr};
use crate::tiling::Backend;
use crate::Result;

/// Numeric precision a model executes at.
///
/// Lives in the tensor crate so every layer above (nn forwards, core
/// deploy policy, fleet batching keys) can share one vocabulary.
/// `Ord` because the fleet uses it inside a `BTreeMap` batching key.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Precision {
    /// Full f32 execution (the pre-quantisation default).
    #[default]
    F32,
    /// Int8 weights and activations, i32 accumulate, f32 epilogue.
    Int8,
}

impl Precision {
    /// Canonical lowercase name (CLI flag value, banner text).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Parse a CLI-style name.
    ///
    /// # Errors
    /// [`TensorError::Decode`] on anything other than `f32` / `int8`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" | "i8" => Ok(Precision::Int8),
            other => Err(TensorError::Decode(format!(
                "unknown precision `{other}` (expected `f32` or `int8`)"
            ))),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Row height of the int8 register tile (shared with the f32 kernels'
/// panel alignment convention).
pub(crate) const QTILE_ROWS: usize = 4;

/// Largest inner dimension the i32 accumulator provably cannot overflow
/// for: `k * 127 * 127 <= i32::MAX` holds comfortably below this.
pub(crate) const MAX_QUANT_K: usize = 100_000;

/// An int8 weight matrix with one f32 scale per output channel.
///
/// Layout matches the f32 [`Matrix`] it is quantised from: row-major
/// `(in_dim, out_dim)`, so `scales[c]` rescales output column `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantise an f32 weight matrix symmetrically, one scale per
    /// column (output channel). Columns that are entirely zero get scale
    /// 1.0 so dequantisation is exact for them.
    ///
    /// # Errors
    /// [`TensorError::EmptyInput`] for a zero-sized matrix;
    /// [`TensorError::Decode`] when the inner dimension is too large for
    /// the i32 accumulator guarantee.
    pub fn quantize(m: &Matrix) -> Result<Self> {
        let (rows, cols) = m.shape();
        if rows == 0 || cols == 0 {
            return Err(TensorError::EmptyInput("quantize"));
        }
        if rows > MAX_QUANT_K {
            return Err(TensorError::Decode(format!(
                "quantized inner dim {rows} exceeds accumulator-safe bound {MAX_QUANT_K}"
            )));
        }
        let mut max_abs = vec![0.0f32; cols];
        for r in 0..rows {
            for (c, &v) in m.row(r).iter().enumerate() {
                max_abs[c] = max_abs[c].max(v.abs());
            }
        }
        let scales: Vec<f32> = max_abs
            .iter()
            .map(|&ma| if ma > 0.0 { ma / 127.0 } else { 1.0 })
            .collect();
        let mut data = vec![0i8; rows * cols];
        for r in 0..rows {
            let src = m.row(r);
            let dst = &mut data[r * cols..(r + 1) * cols];
            for ((d, &v), &s) in dst.iter_mut().zip(src.iter()).zip(scales.iter()) {
                *d = (v / s).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Ok(QuantMatrix {
            rows,
            cols,
            data,
            scales,
        })
    }

    /// Reconstruct the f32 matrix (lossy round trip through int8).
    ///
    /// # Errors
    /// Never for a well-formed `QuantMatrix`; fallible because
    /// [`Matrix::from_vec`] is.
    pub fn dequantize(&self) -> Result<Matrix> {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &q) in row.iter().enumerate() {
                data.push(f32::from(q) * self.scales[c]);
            }
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Input (inner) dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Output dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Raw int8 weights, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Rebuild from raw parts (deserialisation).
    ///
    /// # Errors
    /// [`TensorError::InvalidDimensions`] when buffer lengths do not
    /// match the dims; [`TensorError::Decode`] on an oversized inner dim.
    pub fn from_parts(rows: usize, cols: usize, data: Vec<i8>, scales: Vec<f32>) -> Result<Self> {
        if rows == 0 || cols == 0 || data.len() != rows * cols || scales.len() != cols {
            return Err(TensorError::InvalidDimensions {
                rows,
                cols,
                len: data.len(),
            });
        }
        if rows > MAX_QUANT_K {
            return Err(TensorError::Decode(format!(
                "quantized inner dim {rows} exceeds accumulator-safe bound {MAX_QUANT_K}"
            )));
        }
        Ok(QuantMatrix {
            rows,
            cols,
            data,
            scales,
        })
    }

    /// Resident bytes of the quantised weights (int8 data + scales).
    pub fn stored_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// Fused `out = act(x · W + bias)` executed on the int8 data.
    ///
    /// `x` is f32 and quantised per row into `scratch` before dispatch;
    /// `out` receives f32. Bit-identical across pool sizes for a fixed
    /// plan (integer accumulation + per-element epilogue).
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] when `x.cols() != self.rows()` or
    /// the bias length is not `self.cols()`.
    pub fn matmul_bias_act_into_exec<F>(
        &self,
        x: &Matrix,
        bias: &[f32],
        act: F,
        out: &mut Matrix,
        scratch: &mut QuantScratch,
        exec: &Exec,
    ) -> Result<()>
    where
        F: Fn(f32) -> f32 + Sync,
    {
        let (m, k) = x.shape();
        let n = self.cols;
        if k != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "qmatmul",
                lhs: (m, k),
                rhs: (self.rows, self.cols),
            });
        }
        if bias.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "qmatmul bias",
                lhs: (1, bias.len()),
                rhs: (1, n),
            });
        }
        scratch.quantize_rows(x);
        out.resize(m, n);
        let plan = exec.plan();
        // Kernel choice from the *total* row count so every panel of a
        // parallel run uses the same kernel as the sequential run.
        let tiled = m >= plan.i8_tiled_min_rows;
        let x_q = &scratch.x_q[..];
        let x_scales = &scratch.x_scales[..];
        let out_ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
        let act = &act;
        let backend = plan.i8_backend;
        exec.run_row_panels(m, if tiled { QTILE_ROWS } else { 1 }, &|r0, r1| {
            // SAFETY: panels partition the row range, so each closure
            // invocation writes a disjoint slice of `out`.
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), (r1 - r0) * n)
            };
            if plan.i8_tile_cols <= 16 {
                self.qgemm_panel::<16, _>(x_q, x_scales, k, bias, act, r0, r1, panel, tiled, backend);
            } else {
                self.qgemm_panel::<32, _>(x_q, x_scales, k, bias, act, r0, r1, panel, tiled, backend);
            }
        });
        Ok(())
    }

    /// Compute output rows `r0..r1` into `panel`, one `TC`-column strip
    /// at a time. Both the 4-row tiled path and the single-row path
    /// produce identical i32 accumulators and share one epilogue, so the
    /// split between them never changes results — and because integer
    /// accumulation is exactly associative, neither does the `backend`
    /// (the SIMD int8 micro-kernels in [`crate::kernels`] are
    /// bit-identical to scalar, unlike their f32 siblings).
    #[allow(clippy::too_many_arguments)] // internal kernel plumbing
    fn qgemm_panel<const TC: usize, F: Fn(f32) -> f32>(
        &self,
        x_q: &[i8],
        x_scales: &[f32],
        k: usize,
        bias: &[f32],
        act: &F,
        r0: usize,
        r1: usize,
        panel: &mut [f32],
        tiled: bool,
        backend: Backend,
    ) {
        let n = self.cols;
        let w = &self.data[..];
        let mut j0 = 0;
        while j0 < n {
            let jw = TC.min(n - j0);
            let w_scales = &self.scales[j0..j0 + jw];
            let b = &bias[j0..j0 + jw];
            let mut i = r0;
            if tiled && jw == TC {
                let mut acc = [[0i32; TC]; QTILE_ROWS];
                while i + QTILE_ROWS <= r1 {
                    qtile_dispatch::<TC>(backend, x_q, k, w, n, i, j0, &mut acc);
                    for (t, row_acc) in acc.iter().enumerate() {
                        let base = (i + t - r0) * n + j0;
                        epilogue(row_acc, x_scales[i + t], w_scales, b, &mut panel[base..base + TC], act);
                    }
                    i += QTILE_ROWS;
                }
            }
            let mut racc = [0i32; TC];
            while i < r1 {
                qrow_dispatch::<TC>(backend, &x_q[i * k..(i + 1) * k], w, n, j0, jw, &mut racc);
                let base = (i - r0) * n + j0;
                epilogue(&racc[..jw], x_scales[i], w_scales, b, &mut panel[base..base + jw], act);
                i += 1;
            }
            j0 += TC;
        }
    }
}

/// The shared f32 epilogue: rescale, add bias, activate.
#[inline]
fn epilogue<F: Fn(f32) -> f32>(
    acc: &[i32],
    x_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    out_row: &mut [f32],
    act: &F,
) {
    for (t, &a) in acc.iter().enumerate() {
        out_row[t] = act(a as f32 * x_scale * w_scales[t] + bias[t]);
    }
}

/// Reusable buffers for the dynamic activation quantisation.
///
/// Owned by the caller (rides in [`crate::workspace::Workspace`]) so the
/// steady state allocates nothing. The buffers are filled *before* the
/// kernel is dispatched and only read afterwards, which is what lets the
/// parallel closure capture them as plain shared references.
#[derive(Debug, Default)]
pub struct QuantScratch {
    x_q: Vec<i8>,
    x_scales: Vec<f32>,
}

impl QuantScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        QuantScratch::default()
    }

    /// Quantise every row of `x` symmetrically (`scale = max_abs / 127`,
    /// all-zero rows get scale 1.0).
    fn quantize_rows(&mut self, x: &Matrix) {
        let (m, k) = x.shape();
        self.x_q.clear();
        self.x_q.resize(m * k, 0);
        self.x_scales.clear();
        self.x_scales.resize(m, 1.0);
        for r in 0..m {
            let row = x.row(r);
            let max_abs = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            let dst = &mut self.x_q[r * k..(r + 1) * k];
            for (q, &v) in dst.iter_mut().zip(row.iter()) {
                *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
            self.x_scales[r] = scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KernelPlan;
    use crate::rng::SeededRng;
    use proptest::prelude::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let data = (0..rows * cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    /// Straight-line reference computing the exact same math as the
    /// kernels: quantise rows, i32 dot products, shared epilogue.
    fn reference(x: &Matrix, w: &QuantMatrix, bias: &[f32], act: impl Fn(f32) -> f32) -> Matrix {
        let mut scratch = QuantScratch::new();
        scratch.quantize_rows(x);
        let (m, k) = x.shape();
        let n = w.cols();
        let mut out = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += i32::from(scratch.x_q[r * k + kk]) * i32::from(w.data()[kk * n + c]);
                }
                let v = act(acc as f32 * scratch.x_scales[r] * w.scales()[c] + bias[c]);
                out.set(r, c, v);
            }
        }
        out
    }

    #[test]
    fn quantize_dequantize_is_close_per_channel() {
        let m = random_matrix(24, 17, 1);
        let q = QuantMatrix::quantize(&m).unwrap();
        let back = q.dequantize().unwrap();
        for r in 0..24 {
            for (c, (&a, &b)) in m.row(r).iter().zip(back.row(r).iter()).enumerate() {
                let bound = q.scales()[c] / 2.0 + 1e-6;
                assert!((a - b).abs() <= bound, "({r},{c}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_column_round_trips_exactly() {
        let mut m = random_matrix(8, 4, 2);
        for r in 0..8 {
            m.set(r, 2, 0.0);
        }
        let q = QuantMatrix::quantize(&m).unwrap();
        assert_eq!(q.scales()[2], 1.0);
        let back = q.dequantize().unwrap();
        for r in 0..8 {
            assert_eq!(back.get(r, 2), 0.0);
        }
    }

    #[test]
    fn rejects_empty_and_mismatched_parts() {
        assert!(QuantMatrix::quantize(&Matrix::zeros(0, 4)).is_err());
        assert!(QuantMatrix::from_parts(2, 2, vec![0; 3], vec![1.0; 2]).is_err());
        assert!(QuantMatrix::from_parts(2, 2, vec![0; 4], vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_matches_reference_both_kernels() {
        let x = random_matrix(23, 40, 3);
        let w = QuantMatrix::quantize(&random_matrix(40, 37, 4)).unwrap();
        let bias: Vec<f32> = (0..37).map(|i| i as f32 * 0.01 - 0.2).collect();
        let act = |v: f32| v.max(0.0);
        let expect = reference(&x, &w, &bias, act);
        for (tile_cols, tiled_min) in [(16usize, 4usize), (32, 4), (16, 1000), (32, 1000)] {
            let plan = KernelPlan {
                i8_tile_cols: tile_cols,
                i8_tiled_min_rows: tiled_min,
                ..KernelPlan::inline()
            };
            let exec = Exec::from_plan(plan);
            let mut out = Matrix::default();
            let mut scratch = QuantScratch::new();
            w.matmul_bias_act_into_exec(&x, &bias, act, &mut out, &mut scratch, &exec)
                .unwrap();
            assert_eq!(out, expect, "tile_cols={tile_cols} tiled_min={tiled_min}");
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let x = random_matrix(4, 5, 5);
        let w = QuantMatrix::quantize(&random_matrix(6, 3, 6)).unwrap();
        let mut out = Matrix::default();
        let mut scratch = QuantScratch::new();
        let exec = Exec::inline();
        assert!(w
            .matmul_bias_act_into_exec(&x, &[0.0; 3], |v| v, &mut out, &mut scratch, &exec)
            .is_err());
        let w_ok = QuantMatrix::quantize(&random_matrix(5, 3, 7)).unwrap();
        assert!(w_ok
            .matmul_bias_act_into_exec(&x, &[0.0; 2], |v| v, &mut out, &mut scratch, &exec)
            .is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let x = Matrix::zeros(0, 5);
        let w = QuantMatrix::quantize(&random_matrix(5, 3, 8)).unwrap();
        let mut out = Matrix::default();
        let mut scratch = QuantScratch::new();
        w.matmul_bias_act_into_exec(&x, &[0.0; 3], |v| v, &mut out, &mut scratch, &exec_inline())
            .unwrap();
        assert_eq!(out.shape(), (0, 3));
    }

    fn exec_inline() -> Exec {
        Exec::inline()
    }

    #[test]
    fn precision_parse_and_display() {
        assert_eq!(Precision::parse("f32").unwrap(), Precision::F32);
        assert_eq!(Precision::parse("int8").unwrap(), Precision::Int8);
        assert_eq!(Precision::parse("i8").unwrap(), Precision::Int8);
        assert!(Precision::parse("f16").is_err());
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The acceptance property: for any shape and any plan, the i8
        /// GEMM is bit-identical across pool sizes 0/1/2/8.
        #[test]
        fn qgemm_bit_identical_across_pool_sizes(
            m in 1usize..40,
            k in 1usize..48,
            n in 1usize..40,
            seed in 0u64..1000,
            tile16 in any::<bool>(),
            tiled_min in 1usize..32,
        ) {
            let x = random_matrix(m, k, seed);
            let w = QuantMatrix::quantize(&random_matrix(k, n, seed ^ 0xABCD)).unwrap();
            let bias: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 0.1).collect();
            let act = |v: f32| if v > 0.0 { v } else { 0.01 * v };
            let plan = KernelPlan {
                i8_tile_cols: if tile16 { 16 } else { 32 },
                i8_tiled_min_rows: tiled_min,
                // Force parallel dispatch even for tiny batches.
                par_min_rows: 8,
                ..KernelPlan::inline()
            }.sanitized();

            // Pool size 0: the plain inline context.
            let mut base = Matrix::default();
            let mut scratch = QuantScratch::new();
            w.matmul_bias_act_into_exec(
                &x, &bias, act, &mut base, &mut scratch,
                &Exec::from_plan(plan.with_threads(1)),
            ).unwrap();

            for threads in [1usize, 2, 8] {
                let exec = Exec::from_plan(plan.with_threads(threads));
                let mut out = Matrix::default();
                w.matmul_bias_act_into_exec(&x, &bias, act, &mut out, &mut scratch, &exec)
                    .unwrap();
                prop_assert_eq!(&out, &base, "threads={}", threads);
            }
        }
    }
}
