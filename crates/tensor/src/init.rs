//! Weight initialisers for dense layers.
//!
//! The paper's backbone is a ReLU MLP, for which He (Kaiming) initialisation
//! is the standard choice; Xavier/Glorot is provided for linear/tanh heads
//! and uniform for tests.

use crate::matrix::Matrix;
use crate::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// Weight initialisation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Initializer {
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))` — for ReLU layers.
    #[default]
    HeNormal,
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Uniform in `[-scale, scale]`.
    Uniform {
        /// Half-width of the uniform range, in thousandths (integer so the
        /// enum stays `Eq`/hashable); `scale_milli = 100` means `±0.1`.
        scale_milli: u32,
    },
    /// All zeros (biases, tests).
    Zeros,
}

impl Initializer {
    /// Materialise a `(fan_in, fan_out)` weight matrix.
    pub fn init(&self, fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
        let mut m = Matrix::zeros(fan_in, fan_out);
        match self {
            Initializer::Zeros => {}
            Initializer::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                for v in m.as_mut_slice() {
                    *v = rng.normal_with(0.0, std);
                }
            }
            Initializer::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                for v in m.as_mut_slice() {
                    *v = rng.uniform(-a, a);
                }
            }
            Initializer::Uniform { scale_milli } => {
                let s = *scale_milli as f32 / 1000.0;
                for v in m.as_mut_slice() {
                    *v = rng.uniform(-s, s);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let mut rng = SeededRng::new(1);
        let m = Initializer::Zeros.init(4, 4, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn he_normal_std_close_to_theory() {
        let mut rng = SeededRng::new(2);
        let fan_in = 256;
        let m = Initializer::HeNormal.init(fan_in, 256, &mut rng);
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let expected = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.1,
            "var {var}, expected {expected}"
        );
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = SeededRng::new(3);
        let m = Initializer::XavierUniform.init(100, 50, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
        // Not degenerate: spread over at least half the range.
        assert!(m.max_abs() > a * 0.5);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SeededRng::new(4);
        let m = Initializer::Uniform { scale_milli: 100 }.init(32, 32, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        let m1 = Initializer::HeNormal.init(8, 8, &mut a);
        let m2 = Initializer::HeNormal.init(8, 8, &mut b);
        assert_eq!(m1, m2);
    }
}
