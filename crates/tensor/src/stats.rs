//! Scalar statistics over `f32` slices.
//!
//! These are the primitives behind the paper's 80 hand-crafted statistical
//! features (§3.2 item 1): moments, order statistics, signal-energy and
//! crossing-rate measures, correlation and histogram entropy. All functions
//! are total: empty inputs yield `0.0` (documented per function) rather
//! than NaN, so a malformed window can never poison a feature vector.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    variance_with(xs, mean(xs))
}

/// [`variance`] given the slice's precomputed mean — callers evaluating
/// several moments of one series pay for the mean pass once.
pub fn variance_with(xs: &[f32], mean: f32) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum; `0.0` for an empty slice.
pub fn min(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().cloned().fold(f32::INFINITY, f32::min)
    }
}

/// Maximum; `0.0` for an empty slice.
pub fn max(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }
}

/// Range `max - min`; `0.0` for an empty slice.
pub fn range(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        max(xs) - min(xs)
    }
}

/// Linear-interpolated percentile, `p` in `[0, 100]`; `0.0` when empty.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_of_sorted(&sorted, p)
}

/// [`percentile`] over an already ascending-sorted slice — callers that
/// need several order statistics of the same series (median + IQR, say)
/// sort once and probe this; `0.0` when empty.
pub fn percentile_of_sorted(sorted: &[f32], p: f32) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f32]) -> f32 {
    percentile(xs, 50.0)
}

/// Interquartile range (P75 − P25).
pub fn iqr(xs: &[f32]) -> f32 {
    percentile(xs, 75.0) - percentile(xs, 25.0)
}

/// Median absolute deviation.
pub fn mad(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let devs: Vec<f32> = xs.iter().map(|&x| (x - med).abs()).collect();
    median(&devs)
}

/// Root mean square.
pub fn rms(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Signal energy (mean of squares) — conventional HAR "energy" feature.
pub fn energy(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x * x).sum::<f32>() / xs.len() as f32
}

/// Sample skewness (Fisher); `0.0` for constant or short inputs.
pub fn skewness(xs: &[f32]) -> f32 {
    skewness_with(xs, mean(xs), std_dev(xs))
}

/// [`skewness`] given the slice's precomputed mean and standard deviation.
pub fn skewness_with(xs: &[f32], mean: f32, std: f32) -> f32 {
    if xs.len() < 3 || std < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f32;
    xs.iter().map(|&x| ((x - mean) / std).powi(3)).sum::<f32>() / n
}

/// Excess kurtosis; `0.0` for constant or short inputs (a Gaussian yields ~0).
pub fn kurtosis(xs: &[f32]) -> f32 {
    kurtosis_with(xs, mean(xs), std_dev(xs))
}

/// [`kurtosis`] given the slice's precomputed mean and standard deviation.
pub fn kurtosis_with(xs: &[f32], mean: f32, std: f32) -> f32 {
    if xs.len() < 4 || std < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f32;
    xs.iter().map(|&x| ((x - mean) / std).powi(4)).sum::<f32>() / n - 3.0
}

/// Rate of sign changes in `[0, 1]` (zero-crossing rate).
pub fn zero_crossing_rate(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let crossings = xs
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count();
    crossings as f32 / (xs.len() - 1) as f32
}

/// Rate of crossings of the signal's own mean, in `[0, 1]`. More robust
/// than [`zero_crossing_rate`] for signals with a DC offset (e.g. an
/// accelerometer axis carrying gravity).
pub fn mean_crossing_rate(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let crossings = xs
        .windows(2)
        .filter(|w| (w[0] >= m) != (w[1] >= m))
        .count();
    crossings as f32 / (xs.len() - 1) as f32
}

/// Normalised autocorrelation at `lag` in `[-1, 1]`; `0.0` when undefined.
pub fn autocorrelation(xs: &[f32], lag: usize) -> f32 {
    if lag == 0 {
        return 1.0;
    }
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f32 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    if denom < 1e-12 {
        return 0.0;
    }
    let num: f32 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - m) * (w[lag] - m))
        .sum();
    num / denom
}

/// Pearson correlation between two equal-length slices; `0.0` when either
/// input is constant or lengths differ.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0f32;
    let mut dx = 0.0f32;
    let mut dy = 0.0f32;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx < 1e-12 || dy < 1e-12 {
        return 0.0;
    }
    (num / (dx.sqrt() * dy.sqrt())).clamp(-1.0, 1.0)
}

/// Shannon entropy (nats) of a fixed-bin histogram of the values. A
/// constant signal has entropy 0; a uniform spread maximises it.
pub fn histogram_entropy(xs: &[f32], bins: usize) -> f32 {
    if xs.is_empty() || bins == 0 {
        return 0.0;
    }
    let lo = min(xs);
    let hi = max(xs);
    if (hi - lo).abs() < 1e-12 {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        let mut b = ((x - lo) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    let n = xs.len() as f32;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f32 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mean absolute first difference — a cheap "jerkiness" measure.
pub fn mean_abs_diff(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>() / (xs.len() - 1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-5;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < EPS);
        assert!((variance(&xs) - 4.0).abs() < EPS);
        assert!((std_dev(&xs) - 2.0).abs() < EPS);
    }

    #[test]
    fn empties_are_zero_not_nan() {
        let e: [f32; 0] = [];
        for v in [
            mean(&e),
            variance(&e),
            std_dev(&e),
            min(&e),
            max(&e),
            range(&e),
            percentile(&e, 50.0),
            median(&e),
            iqr(&e),
            mad(&e),
            rms(&e),
            energy(&e),
            skewness(&e),
            kurtosis(&e),
            zero_crossing_rate(&e),
            mean_crossing_rate(&e),
            autocorrelation(&e, 1),
            pearson(&e, &e),
            histogram_entropy(&e, 8),
            mean_abs_diff(&e),
        ] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn order_statistics() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 5.0);
        assert_eq!(range(&xs), 4.0);
        assert!((median(&xs) - 3.0).abs() < EPS);
        assert!((percentile(&xs, 0.0) - 1.0).abs() < EPS);
        assert!((percentile(&xs, 100.0) - 5.0).abs() < EPS);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < EPS);
        assert!((iqr(&xs) - 2.0).abs() < EPS);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 50.0) - 5.0).abs() < EPS);
        assert!((percentile(&xs, 75.0) - 7.5).abs() < EPS);
        // Out-of-range p is clamped.
        assert!((percentile(&xs, 150.0) - 10.0).abs() < EPS);
    }

    #[test]
    fn mad_of_known() {
        let xs = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        // median = 2, deviations = [1,1,0,0,2,4,7], mad = 1
        assert!((mad(&xs) - 1.0).abs() < EPS);
    }

    #[test]
    fn rms_and_energy() {
        let xs = [3.0, -4.0];
        assert!((energy(&xs) - 12.5).abs() < EPS);
        assert!((rms(&xs) - 12.5f32.sqrt()).abs() < EPS);
    }

    #[test]
    fn skewness_sign() {
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        let left = [-10.0, -2.0, -1.0, -1.0, -1.0];
        assert!(skewness(&right) > 0.5);
        assert!(skewness(&left) < -0.5);
        assert_eq!(skewness(&[2.0, 2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn kurtosis_gaussian_near_zero() {
        let mut rng = crate::rng::SeededRng::new(21);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.normal()).collect();
        assert!(kurtosis(&xs).abs() < 0.2, "kurtosis {}", kurtosis(&xs));
        assert_eq!(kurtosis(&[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn crossing_rates() {
        let alt = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert!((zero_crossing_rate(&alt) - 1.0).abs() < EPS);
        let shifted = [11.0, 9.0, 11.0, 9.0, 11.0];
        // Never crosses zero, but crosses its mean every step.
        assert_eq!(zero_crossing_rate(&shifted), 0.0);
        assert!((mean_crossing_rate(&shifted) - 1.0).abs() < EPS);
    }

    #[test]
    fn autocorrelation_periodic_signal() {
        let period = 10usize;
        let xs: Vec<f32> = (0..200)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / period as f32).sin())
            .collect();
        assert!(autocorrelation(&xs, period) > 0.9);
        assert!(autocorrelation(&xs, period / 2) < -0.9);
        assert_eq!(autocorrelation(&xs, 0), 1.0);
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0, 1.0], 1), 0.0);
    }

    #[test]
    fn pearson_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < EPS);
        assert!((pearson(&xs, &zs) + 1.0).abs() < EPS);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(pearson(&xs, &ys[..2]), 0.0); // length mismatch -> 0
    }

    #[test]
    fn entropy_ordering() {
        let constant = [5.0; 64];
        let mut rng = crate::rng::SeededRng::new(33);
        let spread: Vec<f32> = (0..64).map(|_| rng.uniform(0.0, 1.0)).collect();
        assert_eq!(histogram_entropy(&constant, 8), 0.0);
        let h = histogram_entropy(&spread, 8);
        assert!(h > 1.0 && h <= (8.0f32).ln() + EPS, "h = {h}");
        assert_eq!(histogram_entropy(&spread, 0), 0.0);
    }

    #[test]
    fn mean_abs_diff_known() {
        assert!((mean_abs_diff(&[0.0, 1.0, -1.0]) - 1.5).abs() < EPS);
        assert_eq!(mean_abs_diff(&[1.0]), 0.0);
    }
}
