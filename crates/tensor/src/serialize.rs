//! Compact binary encoding for Cloud → Edge transfer.
//!
//! The paper's §4.2 footprint claim ("the entire data size … does not
//! exceed 5 MB") is measured against real serialised bytes, so the bundle
//! format matters. This module implements a tiny, versioned, little-endian
//! framing built on the `bytes` crate:
//!
//! ```text
//! matrix  := u32 rows | u32 cols | rows*cols * f32le
//! f32 vec := u32 len  | len * f32le
//! string  := u32 len  | len * utf8 bytes
//! ```
//!
//! Every decoder validates lengths against the remaining buffer before
//! allocating, so a truncated or hostile payload fails with
//! [`TensorError::Decode`] instead of aborting the edge process.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Hard cap on any single decoded dimension, to stop a corrupt length
/// prefix from triggering a multi-gigabyte allocation on a constrained
/// edge device.
const MAX_DIM: u32 = 16_000_000;

/// Append a matrix to `buf` in the framing described at module level.
pub fn encode_matrix(m: &Matrix, buf: &mut BytesMut) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    buf.reserve(m.len() * 4);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

/// Decode a matrix previously written by [`encode_matrix`].
///
/// # Errors
/// [`TensorError::Decode`] on truncation or implausible dimensions.
pub fn decode_matrix(buf: &mut Bytes) -> Result<Matrix> {
    if buf.remaining() < 8 {
        return Err(TensorError::Decode("matrix header truncated".into()));
    }
    let rows = buf.get_u32_le();
    let cols = buf.get_u32_le();
    if rows > MAX_DIM || cols > MAX_DIM {
        return Err(TensorError::Decode(format!(
            "implausible matrix dims {rows}x{cols}"
        )));
    }
    let n = rows as usize * cols as usize;
    if buf.remaining() < n * 4 {
        return Err(TensorError::Decode(format!(
            "matrix body truncated: need {} bytes, have {}",
            n * 4,
            buf.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Matrix::from_vec(rows as usize, cols as usize, data)
}

/// Append an `f32` vector.
pub fn encode_f32_vec(v: &[f32], buf: &mut BytesMut) {
    buf.put_u32_le(v.len() as u32);
    buf.reserve(v.len() * 4);
    for &x in v {
        buf.put_f32_le(x);
    }
}

/// Decode an `f32` vector.
///
/// # Errors
/// [`TensorError::Decode`] on truncation or implausible length.
pub fn decode_f32_vec(buf: &mut Bytes) -> Result<Vec<f32>> {
    if buf.remaining() < 4 {
        return Err(TensorError::Decode("vec header truncated".into()));
    }
    let n = buf.get_u32_le();
    if n > MAX_DIM {
        return Err(TensorError::Decode(format!("implausible vec len {n}")));
    }
    let n = n as usize;
    if buf.remaining() < n * 4 {
        return Err(TensorError::Decode("vec body truncated".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

/// Append a UTF-8 string.
pub fn encode_string(s: &str, buf: &mut BytesMut) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decode a UTF-8 string.
///
/// # Errors
/// [`TensorError::Decode`] on truncation or invalid UTF-8.
pub fn decode_string(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(TensorError::Decode("string header truncated".into()));
    }
    let n = buf.get_u32_le();
    if n > MAX_DIM {
        return Err(TensorError::Decode(format!("implausible string len {n}")));
    }
    let n = n as usize;
    if buf.remaining() < n {
        return Err(TensorError::Decode("string body truncated".into()));
    }
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec())
        .map_err(|e| TensorError::Decode(format!("invalid utf8: {e}")))
}

/// Serialised size in bytes of a matrix under this framing.
pub fn matrix_encoded_size(m: &Matrix) -> usize {
    8 + m.len() * 4
}

/// Serialised size in bytes of an `f32` vector under this framing.
pub fn f32_vec_encoded_size(v: &[f32]) -> usize {
    4 + v.len() * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, f32::MIN, f32::MAX]).unwrap();
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        assert_eq!(buf.len(), matrix_encoded_size(&m));
        let mut bytes = buf.freeze();
        let back = decode_matrix(&mut bytes).unwrap();
        assert_eq!(m, back);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![0.5f32, -1.5, 2.5];
        let mut buf = BytesMut::new();
        encode_f32_vec(&v, &mut buf);
        assert_eq!(buf.len(), f32_vec_encoded_size(&v));
        let back = decode_f32_vec(&mut buf.freeze()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_roundtrip() {
        let s = "gesture_hi ✋";
        let mut buf = BytesMut::new();
        encode_string(s, &mut buf);
        let back = decode_string(&mut buf.freeze()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn sequential_fields_roundtrip() {
        let m = Matrix::identity(3);
        let v = vec![9.0f32; 4];
        let mut buf = BytesMut::new();
        encode_string("walk", &mut buf);
        encode_matrix(&m, &mut buf);
        encode_f32_vec(&v, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_string(&mut bytes).unwrap(), "walk");
        assert_eq!(decode_matrix(&mut bytes).unwrap(), m);
        assert_eq!(decode_f32_vec(&mut bytes).unwrap(), v);
    }

    #[test]
    fn truncated_matrix_header_fails() {
        let mut bytes = Bytes::from_static(&[1, 0, 0]);
        assert!(matches!(
            decode_matrix(&mut bytes),
            Err(TensorError::Decode(_))
        ));
    }

    #[test]
    fn truncated_matrix_body_fails() {
        let m = Matrix::zeros(4, 4);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(0..full.len() - 1);
        assert!(decode_matrix(&mut cut).is_err());
    }

    #[test]
    fn implausible_dims_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        let err = decode_matrix(&mut buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("implausible"));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(decode_string(&mut buf.freeze()).is_err());
    }

    #[test]
    fn empty_values_roundtrip() {
        let mut buf = BytesMut::new();
        encode_matrix(&Matrix::zeros(0, 0), &mut buf);
        encode_f32_vec(&[], &mut buf);
        encode_string("", &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_matrix(&mut bytes).unwrap().shape(), (0, 0));
        assert!(decode_f32_vec(&mut bytes).unwrap().is_empty());
        assert_eq!(decode_string(&mut bytes).unwrap(), "");
    }
}
