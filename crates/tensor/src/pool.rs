//! Deterministic multi-core compute pool.
//!
//! A [`ComputePool`] is a std-only pool of worker threads that executes
//! one job at a time, split into a **fixed partition**: a job dispatched
//! as `parts` pieces runs piece `0` on the calling thread and piece
//! `w + 1` on worker `w`. There is no work-stealing and no dynamic
//! chunking — given the same input shape and the same [`KernelPlan`],
//! the assignment of output rows to pieces is a pure function, so every
//! output element is computed by exactly one thread with exactly the
//! same instruction sequence as the sequential path. That is what makes
//! the parallel GEMMs in [`crate::matrix`] *bit-identical* to their
//! one-thread runs (the same guarantee `magneto-fleet` enforces for
//! serving), and it is argued in full in `DESIGN.md` §11.
//!
//! Scheduling model:
//!
//! * one job in flight at a time, serialized by a dispatch mutex;
//! * a caller that finds the pool busy (another thread mid-job, or a
//!   nested call from inside a kernel) runs the whole partition inline
//!   on its own thread — same partition, same bits, no deadlock and no
//!   oversubscription. This is how `magneto-fleet` workers share one
//!   process-wide pool instead of competing with it;
//! * worker panics are caught and re-raised on the calling thread after
//!   the job completes, so a poisoned kernel cannot wedge the pool.
//!
//! An [`Exec`] bundles a [`KernelPlan`] with (optionally) a shared pool
//! and is the handle the rest of the workspace passes around — it rides
//! inside [`crate::workspace::Workspace`], so every batched hot path
//! (training steps, batch embedding, streaming inference) picks up the
//! plan without signature churn. [`Exec::global`] returns a lazily
//! created process-wide instance that [`install_global`] can replace
//! with an autotuned one at startup.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;

use crate::plan::KernelPlan;
use crate::tiling::Backend;

/// A job body: receives the piece index it should execute.
///
/// Spelled out (not a `type` alias) everywhere a borrowed job crosses
/// an API boundary, because an alias would pin the trait-object
/// lifetime to `'static` and reject stack-local closures.
type StaticTask = &'static (dyn Fn(usize) + Sync);

/// Shared pool state behind the mutex.
struct State {
    /// Current job with its lifetime erased. Only ever dereferenced by a
    /// worker whose piece index is in range, and cleared before
    /// [`ComputePool::run`] returns — see the safety argument there.
    job: Option<StaticTask>,
    /// Piece count of the current job.
    parts: usize,
    /// Bumped once per dispatched job; workers use it to tell a new job
    /// from a spurious wakeup.
    epoch: u64,
    /// Worker pieces not yet finished for the current job.
    remaining: usize,
    /// A worker panicked while executing its piece.
    panicked: bool,
    /// Pool is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The dispatching caller waits here for `remaining == 0`.
    done: Condvar,
}

/// Fixed-partition worker pool; see the module docs for the model.
pub struct ComputePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes dispatch. `try_lock` failure means "busy" and the
    /// caller runs inline — this is the no-deadlock / no-oversubscribe
    /// fallback, not an error path.
    dispatch: Mutex<()>,
}

impl ComputePool {
    /// Spawn a pool with `workers` background threads (the caller makes
    /// piece count `workers + 1` available to [`ComputePool::run`]).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                parts: 0,
                epoch: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("magneto-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        ComputePool {
            shared,
            workers,
            dispatch: Mutex::new(()),
        }
    }

    /// Number of background worker threads (total parallelism is one
    /// more: the caller executes piece 0).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Execute `task(p)` for every piece `p in 0..parts`, spreading
    /// pieces across the caller (piece 0) and the workers (worker `w`
    /// runs piece `w + 1`). Returns once all pieces have finished.
    ///
    /// `parts` is clamped to `workers + 1`. If the pool is busy the
    /// whole partition runs inline on the caller — same pieces in
    /// ascending order, so the result is identical either way.
    ///
    /// # Panics
    /// Re-raises a panic from any piece after the job has fully drained
    /// (the pool itself stays usable).
    pub fn run(&self, parts: usize, task: &(dyn Fn(usize) + Sync)) {
        let parts = parts.clamp(1, self.workers.len() + 1);
        if parts == 1 {
            task(0);
            return;
        }
        let Ok(_guard) = self.dispatch.try_lock() else {
            // Busy (concurrent caller or a nested call from inside a
            // running piece): execute the identical partition inline.
            for p in 0..parts {
                task(p);
            }
            return;
        };
        // SAFETY: erasing the lifetime is sound because this function
        // does not return until `remaining == 0` (every worker piece has
        // finished) and `job` has been cleared, so no worker can hold or
        // call the reference after `task` goes out of scope. Workers
        // only dereference `job` when their piece index is `< parts`.
        let erased: StaticTask = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), StaticTask>(task)
        };
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.job = Some(erased);
            st.parts = parts;
            st.remaining = parts - 1;
            st.panicked = false;
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        // The caller contributes piece 0. A panic here must still wait
        // for the workers to drain before unwinding, or `erased` would
        // dangle while they run.
        let caller = panic::catch_unwind(AssertUnwindSafe(|| task(0)));
        let worker_panicked = {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            while st.remaining > 0 {
                st = self.shared.done.wait(st).expect("pool state poisoned");
            }
            st.job = None;
            let p = st.panicked;
            st.panicked = false;
            p
        };
        if let Err(payload) = caller {
            panic::resume_unwind(payload);
        }
        assert!(
            !worker_panicked,
            "compute pool worker panicked while executing its piece"
        );
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComputePool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut seen = 0u64;
    loop {
        let (job, parts) = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break (st.job, st.parts);
                }
                st = shared.work.wait(st).expect("pool state poisoned");
            }
        };
        // Fixed partition: worker `w` owns piece `w + 1` or sits the job
        // out. A worker that slept through earlier epochs is safe to
        // skip them: `run` cannot return (and cannot dispatch the next
        // job) until every *owned* piece of the current job has
        // decremented `remaining`.
        let piece = w + 1;
        if piece >= parts {
            continue;
        }
        let Some(task) = job else { continue };
        let result = panic::catch_unwind(AssertUnwindSafe(|| task(piece)));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Raw `f32` pointer that may cross threads. Used to hand each pool
/// piece its disjoint output panel; the kernels re-materialise it as a
/// `&mut [f32]` covering only rows the piece owns, so no two threads
/// ever alias a byte.
pub struct SendPtr(*mut f32);

impl SendPtr {
    /// Wrap a pointer for cross-thread panel slicing.
    pub fn new(ptr: *mut f32) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped pointer.
    pub fn get(&self) -> *mut f32 {
        self.0
    }
}

// SAFETY: `SendPtr` is only a conveyance; every dereference happens
// through disjoint `from_raw_parts_mut` panels computed by
// `panel_range`, which partitions the row space.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Row range `[r0, r1)` owned by piece `part` of `parts` when `rows`
/// rows are split into panels aligned to `align`.
///
/// Alignment is what preserves bit-identity: panels are multiples of
/// the kernel's tile height (4 for the register-tiled matmul, 2 for the
/// transposed row-pair kernel), so exactly the same rows take the tile
/// path vs. the remainder path as in a sequential run. Pieces may be
/// empty (`r0 == r1`) when there are fewer aligned blocks than pieces.
pub fn panel_range(rows: usize, align: usize, parts: usize, part: usize) -> (usize, usize) {
    let align = align.max(1);
    let parts = parts.max(1);
    let blocks = rows.div_ceil(align);
    let base = blocks / parts;
    let extra = blocks % parts;
    let start = part * base + part.min(extra);
    let count = base + usize::from(part < extra);
    let r0 = (start * align).min(rows);
    let r1 = ((start + count) * align).min(rows);
    (r0, r1)
}

/// Execution context: a [`KernelPlan`] plus (for `threads > 1`) a shared
/// [`ComputePool`]. Cheap to clone — the pool is behind an `Arc` and the
/// plan is `Copy`.
#[derive(Clone)]
pub struct Exec {
    plan: KernelPlan,
    pool: Option<Arc<ComputePool>>,
}

impl Exec {
    /// Fully sequential execution with PR-1's kernel constants: the
    /// reference configuration all parallel paths must match bit-for-bit.
    pub fn inline() -> Self {
        Exec {
            plan: KernelPlan::inline(),
            pool: None,
        }
    }

    /// Build an execution context for `plan` (sanitized first), spawning
    /// a pool of `plan.threads - 1` workers when the plan is parallel.
    pub fn from_plan(plan: KernelPlan) -> Self {
        let plan = plan.sanitized();
        let pool = (plan.threads > 1).then(|| Arc::new(ComputePool::new(plan.threads - 1)));
        Exec { plan, pool }
    }

    /// Default tile constants with an explicit thread count — the knob
    /// benchmarks and the pool-size property tests turn.
    pub fn with_threads(threads: usize) -> Self {
        Exec::from_plan(KernelPlan::inline().with_threads(threads))
    }

    /// A clone of this context running `plan` on the **same** pool
    /// (plan sanitized; thread count capped at the pool's capacity).
    pub fn with_plan(&self, plan: KernelPlan) -> Self {
        let mut plan = plan.sanitized();
        let cap = self.pool.as_ref().map_or(1, |p| p.workers() + 1);
        plan.threads = plan.threads.min(cap);
        Exec {
            plan,
            pool: if plan.threads > 1 {
                self.pool.clone()
            } else {
                None
            },
        }
    }

    /// The active plan.
    pub fn plan(&self) -> KernelPlan {
        self.plan
    }

    /// The micro-kernel backend the f32 kernels dispatch to. Always an
    /// available one: every constructor sanitizes its plan, which
    /// degrades backends the host cannot run to [`Backend::Scalar`].
    pub fn backend(&self) -> Backend {
        self.plan.backend
    }

    /// The micro-kernel backend the int8 GEMM dispatches to, tuned
    /// independently of [`Exec::backend`]; same availability guarantee.
    pub fn i8_backend(&self) -> Backend {
        self.plan.i8_backend
    }

    /// Effective parallelism: plan threads, capped by the pool actually
    /// attached (1 when running inline).
    pub fn threads(&self) -> usize {
        match &self.pool {
            Some(pool) => self.plan.threads.min(pool.workers() + 1),
            None => 1,
        }
    }

    /// The process-wide execution context. Lazily initialised from
    /// [`KernelPlan::host_default`]; replace it via [`install_global`]
    /// after autotuning or loading a cached plan.
    pub fn global() -> Exec {
        global_cell().read().expect("global exec poisoned").clone()
    }

    /// Split `rows` output rows into per-thread panels aligned to
    /// `align` and run `body(r0, r1)` for each, in parallel when the
    /// plan says so and inline otherwise. `body` must only write rows in
    /// its own `[r0, r1)` panel.
    ///
    /// Small jobs (`rows < plan.par_min_rows`) always run inline: the
    /// fixed partition makes the result identical, so the threshold is
    /// pure scheduling.
    pub fn run_row_panels(&self, rows: usize, align: usize, body: &(dyn Fn(usize, usize) + Sync)) {
        if rows == 0 {
            return;
        }
        let parts = self
            .threads()
            .min(rows.div_ceil(align.max(1)));
        if parts <= 1 || rows < self.plan.par_min_rows {
            body(0, rows);
            return;
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies pool");
        pool.run(parts, &|piece| {
            let (r0, r1) = panel_range(rows, align, parts, piece);
            if r0 < r1 {
                body(r0, r1);
            }
        });
    }
}

impl fmt::Debug for Exec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Exec")
            .field("plan", &self.plan)
            .field("threads", &self.threads())
            .finish()
    }
}

impl Default for Exec {
    /// The global context — so `Workspace::default()` (and everything
    /// built on it) transparently picks up the installed plan.
    fn default() -> Self {
        Exec::global()
    }
}

static GLOBAL: OnceLock<RwLock<Exec>> = OnceLock::new();

fn global_cell() -> &'static RwLock<Exec> {
    GLOBAL.get_or_init(|| RwLock::new(Exec::from_plan(KernelPlan::host_default())))
}

/// Replace the process-wide execution context (e.g. with an autotuned
/// plan at startup). Existing `Workspace`s keep the context they were
/// built with; new ones pick this up.
pub fn install_global(exec: Exec) {
    *global_cell().write().expect("global exec poisoned") = exec;
}

/// The plan of the process-wide context (for banners and telemetry).
pub fn global_plan() -> KernelPlan {
    Exec::global().plan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn panel_range_partitions_exactly() {
        for &rows in &[0usize, 1, 3, 4, 10, 17, 64, 129] {
            for &align in &[1usize, 2, 4] {
                for parts in 1..=9 {
                    let mut covered = 0;
                    let mut next = 0;
                    for p in 0..parts {
                        let (r0, r1) = panel_range(rows, align, parts, p);
                        assert!(r0 <= r1, "rows={rows} align={align} parts={parts}");
                        assert_eq!(r0, next, "panels must be contiguous");
                        // Every panel but the last is align-sized.
                        if r1 < rows {
                            assert_eq!(r1 % align, 0);
                        }
                        covered += r1 - r0;
                        next = r1;
                    }
                    assert_eq!(covered, rows);
                    assert_eq!(next, rows.max(next));
                }
            }
        }
    }

    #[test]
    fn pool_runs_every_piece_once() {
        let pool = ComputePool::new(3);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(4, &|p| {
            hits[p].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
        // Clamped: asking for more pieces than workers+1 still covers
        // the requested pieces 0..clamp.
        let wide = AtomicUsize::new(0);
        pool.run(16, &|_| {
            wide.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(wide.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ComputePool::new(2);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run(3, &|p| {
                total.fetch_add(p + 1, Ordering::SeqCst);
            });
            assert_eq!(total.load(Ordering::SeqCst), 6, "round {round}");
        }
    }

    #[test]
    fn nested_run_falls_back_inline() {
        let pool = ComputePool::new(2);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.run(3, &|_| {
            outer.fetch_add(1, Ordering::SeqCst);
            // Re-entrant dispatch from inside a piece: must not deadlock.
            pool.run(3, &|_| {
                inner.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 3);
        assert_eq!(inner.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ComputePool::new(1);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|p| {
                if p == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still works after the panic drained.
        let ok = AtomicUsize::new(0);
        pool.run(2, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn exec_threads_reflect_plan_and_pool() {
        assert_eq!(Exec::inline().threads(), 1);
        let e = Exec::with_threads(3);
        assert_eq!(e.threads(), 3);
        // Re-plan on the same pool: capped at pool capacity.
        let wide = e.with_plan(KernelPlan::inline().with_threads(8));
        assert_eq!(wide.threads(), 3);
        let narrow = e.with_plan(KernelPlan::inline());
        assert_eq!(narrow.threads(), 1);
    }

    #[test]
    fn run_row_panels_covers_rows_inline_and_pooled() {
        for exec in [Exec::inline(), Exec::with_threads(4)] {
            let rows = 37;
            let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
            exec.run_row_panels(rows, 4, &|r0, r1| {
                for h in &hits[r0..r1] {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "row {i}");
            }
        }
    }

    #[test]
    fn global_exec_is_installable() {
        // Plan-only change (threads=1) so concurrent tests sharing the
        // global are unaffected — results are plan-deterministic anyway.
        let before = Exec::global().plan();
        install_global(Exec::from_plan(before));
        assert_eq!(global_plan(), before.sanitized());
    }
}
