//! Error type for tensor operations.
//!
//! All shape mismatches surface as [`TensorError`] rather than panics so
//! that the higher layers (model deserialisation on the Edge device in
//! particular) can reject corrupt bundles gracefully.

use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A constructor was given a buffer whose length does not match the
    /// requested dimensions.
    InvalidDimensions {
        /// Requested rows.
        rows: usize,
        /// Requested cols.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index as `(row, col)`.
        index: (usize, usize),
        /// Matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// Binary decoding failed (truncated or corrupt payload).
    Decode(String),
    /// An operation requires a non-empty input (e.g. statistics of `[]`).
    EmptyInput(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimensions { rows, cols, len } => write!(
                f,
                "invalid dimensions: {rows}x{cols} requires {} elements, got {len}",
                rows * cols
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::Decode(msg) => write!(f, "decode error: {msg}"),
            TensorError::EmptyInput(op) => write!(f, "`{op}` requires a non-empty input"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in `matmul`: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_invalid_dimensions() {
        let e = TensorError::InvalidDimensions {
            rows: 2,
            cols: 2,
            len: 3,
        };
        assert!(e.to_string().contains("requires 4 elements, got 3"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds {
            index: (5, 0),
            shape: (2, 2),
        };
        assert!(e.to_string().contains("(5, 0)"));
    }

    #[test]
    fn display_decode_and_empty() {
        assert!(TensorError::Decode("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(TensorError::EmptyInput("mean").to_string().contains("mean"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::EmptyInput("x"));
    }
}
