//! Property-based tests for the tensor substrate.
//!
//! These pin down the algebraic laws the NN training code silently relies
//! on: matmul distributivity/associativity with transpose, metric axioms
//! for the NCM distance kernels, and lossless binary round-trips.

use bytes::BytesMut;
use magneto_tensor::matrix::Matrix;
use magneto_tensor::serialize::{decode_matrix, encode_matrix};
use magneto_tensor::stats;
use magneto_tensor::vector;
use magneto_tensor::{Backend, Exec, KernelPlan, Workspace};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    // Keep magnitudes modest so float error bounds stay simple.
    (-100i32..=100).prop_map(|v| v as f32 / 4.0)
}

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(small_f32(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

fn paired_matrices(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = prop::collection::vec(small_f32(), m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d).unwrap());
        let b = prop::collection::vec(small_f32(), k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d).unwrap());
        (a, b)
    })
}

/// Like [`paired_matrices`] but with enough lhs rows to cross the
/// register-tiled dispatch threshold of `matmul_into`, and rhs widths
/// spanning both full 32-column tiles and ragged tails.
fn tall_paired_matrices() -> impl Strategy<Value = (Matrix, Matrix)> {
    (16..=48usize, 1..=24usize, 1..=48usize).prop_flat_map(|(m, k, n)| {
        let a = prop::collection::vec(small_f32(), m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d).unwrap());
        let b = prop::collection::vec(small_f32(), k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d).unwrap());
        (a, b)
    })
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_law((a, b) in paired_matrices(8)) {
        // (A B)^T == B^T A^T
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    #[test]
    fn matmul_transposed_consistent((a, b) in paired_matrices(8)) {
        // a.matmul_transposed(c) where c = b^T equals a.matmul(b)
        let c = b.transpose();
        let direct = a.matmul_transposed(&c).unwrap();
        let explicit = a.matmul(&b).unwrap();
        prop_assert!(approx_eq(&direct, &explicit, 1e-4));
    }

    #[test]
    fn blocked_matmul_matches_naive_oracle((a, b) in paired_matrices(12)) {
        // The production kernel (axpy path at these sizes) against the
        // reference triple loop it replaced.
        let naive = a.matmul_naive(&b).unwrap();
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert!(approx_eq(&out, &naive, 1e-4));
    }

    #[test]
    fn tiled_matmul_matches_naive_oracle((a, b) in tall_paired_matrices()) {
        // Same law, but with enough rows that matmul_into dispatches to
        // the register-tiled kernel (including its row/column tails).
        let naive = a.matmul_naive(&b).unwrap();
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert!(approx_eq(&out, &naive, 1e-4));
    }

    #[test]
    fn tiled_batch_rows_equal_per_row_axpy((a, b) in tall_paired_matrices()) {
        // The batched (tiled) and per-sample (axpy) paths accumulate k in
        // the same order through the same fma primitive, so a batch
        // result must equal the row-at-a-time results bit for bit.
        let full = a.matmul(&b).unwrap();
        for i in 0..a.rows() {
            let row = Matrix::from_vec(1, a.cols(), a.row(i).to_vec()).unwrap();
            let single = row.matmul(&b).unwrap();
            prop_assert_eq!(full.row(i), single.row(0), "row {}", i);
        }
    }

    #[test]
    fn matmul_transpose_into_matches_naive_oracle((a, b) in paired_matrices(8)) {
        // A·(Bᵀ)ᵀ == A·B: feed the transposed rhs through the
        // B-transposed kernel and compare against the oracle.
        let c = b.transpose();
        let mut out = Matrix::zeros(0, 0);
        a.matmul_transpose_into(&c, &mut out).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        prop_assert!(approx_eq(&out, &naive, 1e-4));
    }

    #[test]
    fn transpose_matmul_into_matches_naive_oracle((a, b) in paired_matrices(8)) {
        // Aᵀ·D via the scatter kernel equals the oracle on the
        // materialised transpose.
        let d = a.matmul_naive(&b).unwrap();
        let mut out = Matrix::zeros(0, 0);
        a.transpose_matmul_into(&d, &mut out).unwrap();
        let naive = a.transpose().matmul_naive(&d).unwrap();
        prop_assert!(approx_eq(&out, &naive, 1e-4));
    }

    #[test]
    fn matmul_into_overwrites_stale_output((a, b) in paired_matrices(8)) {
        // A reused output buffer with a stale shape and stale contents
        // must end up identical to a fresh allocation.
        let mut out = Matrix::from_vec(2, 3, vec![9.0; 6]).unwrap();
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert_eq!(out, a.matmul(&b).unwrap());
    }

    #[test]
    fn workspace_take_is_always_zeroed(m in matrix_strategy(8)) {
        // Whatever was given back, the next take of any shape is zeroed.
        let mut ws = Workspace::new();
        let (r, c) = m.shape();
        ws.give(m);
        let t = ws.take(r + 1, c);
        prop_assert_eq!(t.shape(), (r + 1, c));
        prop_assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_neutral(m in matrix_strategy(10)) {
        let i = Matrix::identity(m.cols());
        prop_assert!(approx_eq(&m.matmul(&i).unwrap(), &m, 1e-6));
    }

    #[test]
    fn add_commutes(m in matrix_strategy(10)) {
        let doubled = m.add(&m).unwrap();
        prop_assert!(approx_eq(&doubled, &m.scale(2.0), 1e-6));
    }

    #[test]
    fn sub_self_is_zero(m in matrix_strategy(10)) {
        let z = m.sub(&m).unwrap();
        prop_assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vstack_preserves_rows(m in matrix_strategy(8)) {
        let stacked = m.vstack(&m).unwrap();
        prop_assert_eq!(stacked.rows(), m.rows() * 2);
        prop_assert_eq!(stacked.row(m.rows()), m.row(0));
    }

    #[test]
    fn binary_roundtrip_lossless(m in matrix_strategy(12)) {
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let back = decode_matrix(&mut buf.freeze()).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn euclidean_symmetry(a in prop::collection::vec(small_f32(), 1..32)) {
        let b: Vec<f32> = a.iter().map(|v| v + 1.0).collect();
        let d1 = vector::euclidean(&a, &b);
        let d2 = vector::euclidean(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-5);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn triangle_inequality(
        a in prop::collection::vec(small_f32(), 4),
        b in prop::collection::vec(small_f32(), 4),
        c in prop::collection::vec(small_f32(), 4),
    ) {
        let ab = vector::euclidean(&a, &b);
        let bc = vector::euclidean(&b, &c);
        let ac = vector::euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-4);
    }

    #[test]
    fn cosine_similarity_bounded(
        a in prop::collection::vec(small_f32(), 1..16),
        b in prop::collection::vec(small_f32(), 1..16),
    ) {
        let n = a.len().min(b.len());
        let s = vector::cosine_similarity(&a[..n], &b[..n]);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn softmax_is_distribution(v in prop::collection::vec(small_f32(), 1..16)) {
        let p = vector::softmax(&v);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn stats_bounds(v in prop::collection::vec(small_f32(), 2..64)) {
        let lo = stats::min(&v);
        let hi = stats::max(&v);
        prop_assert!(lo <= stats::mean(&v) + 1e-4);
        prop_assert!(stats::mean(&v) <= hi + 1e-4);
        prop_assert!(lo <= stats::median(&v) && stats::median(&v) <= hi);
        prop_assert!(stats::variance(&v) >= 0.0);
        prop_assert!(stats::iqr(&v) >= -1e-5);
        let zcr = stats::zero_crossing_rate(&v);
        prop_assert!((0.0..=1.0).contains(&zcr));
    }

    #[test]
    fn pearson_bounded(v in prop::collection::vec(small_f32(), 2..32)) {
        let w: Vec<f32> = v.iter().rev().cloned().collect();
        let r = stats::pearson(&v, &w);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn l2_normalized_rows_unit_or_zero(m in matrix_strategy(8)) {
        let mut m = m;
        m.l2_normalize_rows();
        for r in 0..m.rows() {
            let n: f32 = m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(n < 1e-6 || (n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn select_rows_picks_expected(m in matrix_strategy(8)) {
        let idx: Vec<usize> = (0..m.rows()).rev().collect();
        let s = m.select_rows(&idx).unwrap();
        for (out_r, &src_r) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(out_r), m.row(src_r));
        }
    }
}

/// Execution contexts for the determinism properties below, one per pool
/// size, built once (pool threads are reused across proptest cases). The
/// `par_min_rows` floor is lowered so even small generated matrices take
/// the parallel dispatch path.
fn pooled_execs() -> &'static [Exec] {
    static EXECS: std::sync::OnceLock<Vec<Exec>> = std::sync::OnceLock::new();
    EXECS.get_or_init(|| {
        [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let mut plan = KernelPlan::inline().with_threads(t);
                plan.par_min_rows = 8;
                Exec::from_plan(plan)
            })
            .collect()
    })
}

proptest! {
    /// The tentpole determinism claim: every exec GEMM kernel produces
    /// bit-identical output at any pool size, because row panels are
    /// aligned to kernel tile heights and per-element accumulation order
    /// never changes.
    #[test]
    fn matmul_exec_bit_identical_at_any_pool_size((a, b) in tall_paired_matrices()) {
        let mut reference = Matrix::zeros(0, 0);
        a.matmul_into_exec(&b, &mut reference, &Exec::inline()).unwrap();
        for exec in pooled_execs() {
            let mut out = Matrix::zeros(0, 0);
            a.matmul_into_exec(&b, &mut out, exec).unwrap();
            prop_assert_eq!(&out, &reference, "threads={}", exec.threads());
        }
    }

    #[test]
    fn matmul_transpose_exec_bit_identical((a, b) in tall_paired_matrices()) {
        let c = b.transpose();
        let mut reference = Matrix::zeros(0, 0);
        a.matmul_transpose_into_exec(&c, &mut reference, &Exec::inline()).unwrap();
        for exec in pooled_execs() {
            let mut out = Matrix::zeros(0, 0);
            a.matmul_transpose_into_exec(&c, &mut out, exec).unwrap();
            prop_assert_eq!(&out, &reference, "threads={}", exec.threads());
        }
    }

    #[test]
    fn transpose_matmul_exec_bit_identical((a, b) in tall_paired_matrices()) {
        let d = a.matmul_naive(&b).unwrap();
        let mut reference = Matrix::zeros(0, 0);
        a.transpose_matmul_into_exec(&d, &mut reference, &Exec::inline()).unwrap();
        for exec in pooled_execs() {
            let mut out = Matrix::zeros(0, 0);
            a.transpose_matmul_into_exec(&d, &mut out, exec).unwrap();
            prop_assert_eq!(&out, &reference, "threads={}", exec.threads());
        }
    }

    /// The fused bias+activation epilogue must match the separate
    /// matmul → add-bias → activate passes bit for bit (bias is added
    /// once after full k-accumulation, exactly like the unfused path),
    /// at every pool size.
    #[test]
    fn fused_bias_act_exec_bit_identical((a, b) in tall_paired_matrices()) {
        let bias: Vec<f32> = (0..b.cols()).map(|c| c as f32 / 8.0 - 1.0).collect();
        let relu = |v: f32| if v > 0.0 { v } else { 0.0 };
        let mut reference = Matrix::zeros(0, 0);
        a.matmul_into_exec(&b, &mut reference, &Exec::inline()).unwrap();
        for r in 0..reference.rows() {
            for (o, &bv) in reference.row_mut(r).iter_mut().zip(bias.iter()) {
                *o = relu(*o + bv);
            }
        }
        for exec in std::iter::once(&Exec::inline()).chain(pooled_execs()) {
            let mut out = Matrix::zeros(0, 0);
            a.matmul_bias_act_into_exec(&b, &bias, relu, &mut out, exec).unwrap();
            prop_assert_eq!(&out, &reference, "threads={}", exec.threads());
        }
    }

    /// Any sanitized kernel plan survives a JSON round-trip unchanged.
    #[test]
    fn kernel_plan_json_roundtrip(
        threads in 0usize..40,
        tile_cols in 0usize..80,
        tiled_min_rows in 0usize..10_000,
        panel_k in 0usize..20_000,
        par_min_rows in 0usize..2_000_000,
        i8_tile_cols in 0usize..80,
        i8_tiled_min_rows in 0usize..10_000,
        backend_idx in 0usize..3,
        i8_backend_idx in 0usize..3,
    ) {
        // Sweep all three backends independently per kernel family;
        // `sanitized()` degrades the ones the host can't run to scalar,
        // and the round-trip must preserve whichever survives.
        const BACKENDS: [Backend; 3] = [Backend::Scalar, Backend::Avx2, Backend::Neon];
        let plan = KernelPlan {
            version: magneto_tensor::plan::PLAN_VERSION,
            threads,
            tile_cols,
            tiled_min_rows,
            panel_k,
            par_min_rows,
            i8_tile_cols,
            i8_tiled_min_rows,
            backend: BACKENDS[backend_idx],
            i8_backend: BACKENDS[i8_backend_idx],
        }
        .sanitized();
        let back = KernelPlan::from_json(&plan.to_json()).unwrap();
        prop_assert_eq!(back, plan);
    }

    /// A corrupt (or absent) plan cache never breaks startup: loading
    /// falls back to the host default plan.
    #[test]
    fn corrupt_plan_cache_falls_back_to_default(garbage in prop::collection::vec(any::<u8>(), 0..64)) {
        let path = std::env::temp_dir().join(format!(
            "magneto_plan_prop_{}.json",
            std::process::id()
        ));
        std::fs::write(&path, &garbage).unwrap();
        let loaded = KernelPlan::load_or_default(&path);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded, KernelPlan::host_default());
        let missing = path.with_extension("missing.json");
        prop_assert_eq!(KernelPlan::load_or_default(&missing), KernelPlan::host_default());
    }
}
