//! Tail- and edge-geometry tests for the tiled kernel layer.
//!
//! The TilingScheme refactor split every GEMM into tile / stage / global
//! levels with per-backend micro-kernels; the seams of that split are
//! the *geometry edges* — empty inner dimensions, single rows/columns,
//! prime sizes that leave ragged tile and panel tails. These tests pin
//! them down on the scalar reference and, when the host has a SIMD
//! backend, on the SIMD instance too:
//!
//! * scalar tiled output is **bit-identical** to the streaming axpy
//!   kernel and to the naive i-k-j oracle (same `fma` chain, same
//!   ascending-`k` order — packing must not change a single bit);
//! * float SIMD output agrees with scalar within elementwise tolerance
//!   (the accuracy-gated policy of DESIGN.md §14);
//! * int8 SIMD output is **bit-identical** to int8 scalar (exact
//!   integer accumulation has no rounding to disagree about).

use magneto_tensor::matrix::Matrix;
use magneto_tensor::{Backend, Exec, KernelPlan, QuantMatrix, QuantScratch, SeededRng};

/// Geometries chosen to hit every remainder path: K=0 (empty
/// accumulation), K=1 (single panel step), 1×N (row kernel), M×1
/// (column tail of width 1), primes (ragged tile, panel and lane
/// tails), and multiples of the tile sizes (no tails at all).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 0, 1),
    (4, 0, 7),
    (1, 7, 1),
    (5, 1, 3),
    (1, 13, 32),
    (17, 1, 1),
    (4, 16, 16),
    (8, 8, 32),
    (7, 13, 29),
    (13, 31, 37),
    (37, 17, 33),
    (3, 5, 64),
    (19, 23, 1),
    (23, 41, 47),
];

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let data = (0..rows * cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// A plan that forces the register-tiled kernel for every batch size.
fn tiled_plan(tile_cols: usize, panel_k: usize, backend: Backend) -> KernelPlan {
    KernelPlan {
        tile_cols,
        tiled_min_rows: 1,
        panel_k,
        i8_tile_cols: tile_cols,
        i8_tiled_min_rows: 1,
        backend,
        i8_backend: backend,
        ..KernelPlan::inline()
    }
}

/// A plan that forces the streaming axpy kernel for every batch size.
fn axpy_plan(backend: Backend) -> KernelPlan {
    KernelPlan {
        tiled_min_rows: usize::MAX,
        i8_tiled_min_rows: usize::MAX,
        backend,
        i8_backend: backend,
        ..KernelPlan::inline()
    }
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[test]
fn scalar_tiled_is_bit_identical_to_axpy_and_naive_on_edge_geometries() {
    for &(m, k, n) in SHAPES {
        let a = mat(m, k, 0xA0 + (m * 31 + k * 7 + n) as u64);
        let b = mat(k, n, 0xB0 + (m + k * 13 + n * 3) as u64);
        let naive = a.matmul_naive(&b).unwrap();
        let mut axpy_out = Matrix::default();
        a.matmul_into_exec(&b, &mut axpy_out, &Exec::from_plan(axpy_plan(Backend::Scalar)))
            .unwrap();
        assert_eq!(axpy_out, naive, "axpy vs naive, shape ({m},{k},{n})");
        for tile_cols in [16usize, 32] {
            for panel_k in [1usize, 5, 256, usize::MAX] {
                let plan = tiled_plan(tile_cols, panel_k, Backend::Scalar);
                let mut out = Matrix::default();
                a.matmul_into_exec(&b, &mut out, &Exec::from_plan(plan)).unwrap();
                assert_eq!(
                    out, naive,
                    "tiled vs naive, shape ({m},{k},{n}) tile_cols={tile_cols} panel_k={panel_k}"
                );
            }
        }
    }
}

#[test]
fn scalar_backward_gemms_cover_edge_geometries() {
    // d/dA = G · Bᵀ and d/dB = Aᵀ · G walk the transpose kernels; check
    // them against explicit transposes through the forward oracle.
    for &(m, k, n) in SHAPES {
        if k == 0 {
            continue; // transpose oracle shapes degenerate identically
        }
        let g = mat(m, n, 0xC0 + (m * 17 + n) as u64);
        let a = mat(m, k, 0xD0 + (k * 11 + n) as u64);
        let b = mat(k, n, 0xE0 + (m + k + n) as u64);
        let exec = Exec::from_plan(tiled_plan(32, 256, Backend::Scalar));

        let mut da = Matrix::default();
        g.matmul_transpose_into_exec(&b, &mut da, &exec).unwrap();
        let da_oracle = g.matmul_naive(&b.transpose()).unwrap();
        assert!(
            max_abs_diff(&da, &da_oracle) <= 1e-4,
            "G·Bᵀ, shape ({m},{k},{n})"
        );

        let mut db = Matrix::default();
        a.transpose_matmul_into_exec(&g, &mut db, &exec).unwrap();
        let db_oracle = a.transpose().matmul_naive(&g).unwrap();
        assert!(
            max_abs_diff(&db, &db_oracle) <= 1e-4,
            "Aᵀ·G, shape ({m},{k},{n})"
        );
    }
}

#[test]
fn simd_f32_agrees_with_scalar_on_edge_geometries() {
    let Some(simd) = Backend::detect_simd() else {
        eprintln!("skipping: no SIMD backend on this host");
        return;
    };
    for &(m, k, n) in SHAPES {
        let a = mat(m, k, 0x1A0 + (m * 31 + k * 7 + n) as u64);
        let b = mat(k, n, 0x1B0 + (m + k * 13 + n * 3) as u64);
        for tile_cols in [16usize, 32] {
            for panel_k in [1usize, 5, 256] {
                let mut scalar_out = Matrix::default();
                let mut simd_out = Matrix::default();
                a.matmul_into_exec(
                    &b,
                    &mut scalar_out,
                    &Exec::from_plan(tiled_plan(tile_cols, panel_k, Backend::Scalar)),
                )
                .unwrap();
                a.matmul_into_exec(
                    &b,
                    &mut simd_out,
                    &Exec::from_plan(tiled_plan(tile_cols, panel_k, simd)),
                )
                .unwrap();
                // Accuracy-gated, not bit-gated: the SIMD kernels mirror
                // the scalar FMA chain, but the policy bar is tolerance.
                let diff = max_abs_diff(&scalar_out, &simd_out);
                assert!(
                    diff <= 1e-4 * (k.max(1) as f32),
                    "f32 {simd} vs scalar diff {diff}, shape ({m},{k},{n}) \
                     tile_cols={tile_cols} panel_k={panel_k}"
                );
            }
        }
        // Streaming axpy and both backward kernels, once per shape.
        let mut scalar_out = Matrix::default();
        let mut simd_out = Matrix::default();
        a.matmul_into_exec(&b, &mut scalar_out, &Exec::from_plan(axpy_plan(Backend::Scalar)))
            .unwrap();
        a.matmul_into_exec(&b, &mut simd_out, &Exec::from_plan(axpy_plan(simd)))
            .unwrap();
        assert!(max_abs_diff(&scalar_out, &simd_out) <= 1e-4 * (k.max(1) as f32));
        if k > 0 {
            let g = mat(m, n, 0x1C0 + (m + n) as u64);
            let scalar_exec = Exec::from_plan(tiled_plan(32, 256, Backend::Scalar));
            let simd_exec = Exec::from_plan(tiled_plan(32, 256, simd));
            let (mut s, mut v) = (Matrix::default(), Matrix::default());
            g.matmul_transpose_into_exec(&b, &mut s, &scalar_exec).unwrap();
            g.matmul_transpose_into_exec(&b, &mut v, &simd_exec).unwrap();
            assert!(max_abs_diff(&s, &v) <= 1e-4 * (n.max(1) as f32), "G·Bᵀ ({m},{k},{n})");
            a.transpose_matmul_into_exec(&g, &mut s, &scalar_exec).unwrap();
            a.transpose_matmul_into_exec(&g, &mut v, &simd_exec).unwrap();
            assert!(max_abs_diff(&s, &v) <= 1e-4 * (m.max(1) as f32), "Aᵀ·G ({m},{k},{n})");
        }
    }
}

#[test]
fn simd_i8_is_bit_identical_to_scalar_on_edge_geometries() {
    let Some(simd) = Backend::detect_simd() else {
        eprintln!("skipping: no SIMD backend on this host");
        return;
    };
    let act = |v: f32| if v > 0.0 { v } else { 0.01 * v };
    for &(m, k, n) in SHAPES {
        if k == 0 || n == 0 {
            continue; // QuantMatrix requires a non-empty weight matrix
        }
        let w = QuantMatrix::quantize(&mat(k, n, 0x2A0 + (k * 29 + n) as u64)).unwrap();
        let x = mat(m, k, 0x2B0 + (m * 23 + k) as u64);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32).sin() * 0.1).collect();
        for tile_cols in [16usize, 32] {
            for tiled in [true, false] {
                let mk_plan = |backend| {
                    let mut p = tiled_plan(tile_cols, 256, backend);
                    p.i8_tiled_min_rows = if tiled { 1 } else { usize::MAX };
                    p
                };
                let mut scalar_out = Matrix::default();
                let mut simd_out = Matrix::default();
                let mut scratch = QuantScratch::new();
                w.matmul_bias_act_into_exec(
                    &x,
                    &bias,
                    act,
                    &mut scalar_out,
                    &mut scratch,
                    &Exec::from_plan(mk_plan(Backend::Scalar)),
                )
                .unwrap();
                w.matmul_bias_act_into_exec(
                    &x,
                    &bias,
                    act,
                    &mut simd_out,
                    &mut scratch,
                    &Exec::from_plan(mk_plan(simd)),
                )
                .unwrap();
                // Integer accumulation is exact: any difference is a bug,
                // not rounding.
                assert_eq!(
                    scalar_out, simd_out,
                    "i8 {simd} vs scalar, shape ({m},{k},{n}) \
                     tile_cols={tile_cols} tiled={tiled}"
                );
            }
        }
    }
}

#[test]
fn forced_simd_plan_sanitizes_to_available_backend() {
    // A plan carrying a backend this host can't run must degrade to
    // scalar rather than fault — the heterogeneous-fleet guarantee.
    for backend in [Backend::Avx2, Backend::Neon] {
        let plan = tiled_plan(32, 256, backend).sanitized();
        assert!(plan.backend.is_available());
        assert!(plan.i8_backend.is_available());
        if !backend.is_available() {
            assert_eq!(plan.backend, Backend::Scalar);
            assert_eq!(plan.i8_backend, Backend::Scalar);
        }
        // And the Exec constructor applies the same clamp.
        assert!(Exec::from_plan(tiled_plan(32, 256, backend)).backend().is_available());
    }
}
